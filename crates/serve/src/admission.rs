//! Admission control and fair scheduling for one shard.
//!
//! Two pieces live here:
//!
//! * [`AdmissionConfig`] — the bounded-queue policy a shard applies at
//!   submission time: BestEffort frames are **shed** once the shard's
//!   queue reaches capacity, Interactive frames **degrade** to the
//!   cached-coarse resolution tier first and are shed only past a
//!   (higher) hard bound. Shed frames resolve their handle immediately
//!   with [`ServeError::Shed`](crate::ServeError::Shed) instead of
//!   queueing unboundedly.
//! * [`FairQueue`] — the shard scheduler's pending structure: one FIFO
//!   lane per (deadline class, tenant), dequeued in class-priority
//!   order with a per-class round-robin cursor over tenants, so one
//!   hot session cannot starve its shard-mates while per-session
//!   submission order (which the coherence cache relies on) is never
//!   reordered. `tests/shard_scheduling.rs` property-tests the policy.

use crate::session::DeadlineClass;
use crate::supervisor::BreakerAdmit;
use std::collections::{HashMap, VecDeque};

/// Per-shard bounded-queue policy.
///
/// `queue_capacity` is the pressure point: at or past it, BestEffort
/// submissions are shed and Interactive submissions are degraded to
/// [`degrade`](crate::ResolutionTier)d resolution. `interactive_capacity`
/// is the hard bound past which even Interactive frames are shed (it
/// must be ≥ `queue_capacity`). Capacities count queued frames only —
/// a frame leaves the count when the shard scheduler admits it into a
/// render batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queue depth at which shedding (BestEffort) and degrading
    /// (Interactive) begin.
    pub queue_capacity: usize,
    /// Queue depth at which Interactive frames are shed too.
    pub interactive_capacity: usize,
}

impl AdmissionConfig {
    /// A policy shedding BestEffort past `queue_capacity` and
    /// Interactive past twice that.
    pub fn with_capacity(queue_capacity: usize) -> Self {
        let queue_capacity = queue_capacity.max(1);
        Self {
            queue_capacity,
            interactive_capacity: queue_capacity * 2,
        }
    }

    /// Overrides the Interactive hard bound (clamped to at least
    /// `queue_capacity`).
    pub fn with_interactive_capacity(mut self, capacity: usize) -> Self {
        self.interactive_capacity = capacity.max(self.queue_capacity);
        self
    }
}

impl Default for AdmissionConfig {
    /// Generous defaults (256 queued frames per shard, 512 for
    /// Interactive) — deep enough that light workloads never shed,
    /// bounded enough that an unserved backlog cannot grow without
    /// limit.
    fn default() -> Self {
        Self::with_capacity(256)
    }
}

/// What the admission policy decided for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Queue as requested.
    Admit,
    /// Queue, but at the degraded (cached-coarse) resolution tier.
    Degrade,
    /// Refuse; resolve the handle with a shed error.
    Shed,
    /// Refuse; the scene's circuit breaker is open — resolve the
    /// handle with [`ServeError::CircuitOpen`](crate::ServeError::CircuitOpen).
    Break,
}

/// Applies the shed-or-degrade policy to one submission given the
/// shard's current queued depth (*before* this frame).
pub fn admission_decision(
    cfg: &AdmissionConfig,
    class: DeadlineClass,
    depth: usize,
) -> AdmissionDecision {
    if depth < cfg.queue_capacity {
        return AdmissionDecision::Admit;
    }
    match class {
        DeadlineClass::BestEffort => AdmissionDecision::Shed,
        DeadlineClass::Interactive => {
            if depth < cfg.interactive_capacity {
                AdmissionDecision::Degrade
            } else {
                AdmissionDecision::Shed
            }
        }
    }
}

/// [`admission_decision`] with the scene's circuit-breaker verdict
/// layered on top: an open breaker sheds **before** queue pressure is
/// even consulted (a sick scene must not consume queue depth), while a
/// `Probe` or plain `Admit` verdict defers to the queue policy
/// unchanged — a probe frame can still be degraded or shed by
/// capacity, in which case the caller must return the probe slot via
/// [`CircuitBreaker::abort_probe`](crate::supervisor::CircuitBreaker::abort_probe).
pub fn admission_decision_supervised(
    cfg: &AdmissionConfig,
    class: DeadlineClass,
    depth: usize,
    breaker: BreakerAdmit,
) -> AdmissionDecision {
    if breaker == BreakerAdmit::Shed {
        return AdmissionDecision::Break;
    }
    admission_decision(cfg, class, depth)
}

/// Admission counters of one shard (or, summed, of the whole server).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Frames admitted into the shard queue (including degraded ones).
    pub admitted: u64,
    /// Interactive frames admitted at the degraded resolution tier.
    pub degraded: u64,
    /// BestEffort frames shed at the capacity watermark.
    pub shed_best_effort: u64,
    /// Interactive frames shed at the hard bound.
    pub shed_interactive: u64,
    /// Frames shed because the scene's circuit breaker was open.
    pub shed_circuit: u64,
}

impl AdmissionStats {
    /// Sum of two counter sets (aggregation across shards).
    pub fn merge(self, other: Self) -> Self {
        Self {
            admitted: self.admitted + other.admitted,
            degraded: self.degraded + other.degraded,
            shed_best_effort: self.shed_best_effort + other.shed_best_effort,
            shed_interactive: self.shed_interactive + other.shed_interactive,
            shed_circuit: self.shed_circuit + other.shed_circuit,
        }
    }

    /// Derives the counter set from a telemetry snapshot, folding
    /// every label set matching `subset` (a server passes its instance
    /// label; a shard adds its shard label). This is the **only**
    /// name→field mapping in the workspace — aggregate views at any
    /// granularity are one fold of the same registry counters, so a
    /// new counter cannot silently miss a merge site.
    pub fn from_snapshot(snap: &gen_nerf_telemetry::Snapshot, subset: &[(&str, &str)]) -> Self {
        let shed = |reason: &str| {
            let mut s: Vec<(&str, &str)> = subset.to_vec();
            s.push(("reason", reason));
            snap.counter_with("serve_frames_shed_total", &s)
        };
        Self {
            admitted: snap.counter_with("serve_frames_admitted_total", subset),
            degraded: snap.counter_with("serve_frames_degraded_total", subset),
            shed_best_effort: shed("best_effort"),
            shed_interactive: shed("interactive"),
            shed_circuit: shed("circuit"),
        }
    }

    /// All shed frames: either class plus circuit-breaker sheds.
    pub fn shed_total(&self) -> u64 {
        self.shed_best_effort + self.shed_interactive + self.shed_circuit
    }
}

const N_CLASSES: usize = 2;

fn class_index(class: DeadlineClass) -> usize {
    match class {
        DeadlineClass::Interactive => 0,
        DeadlineClass::BestEffort => 1,
    }
}

/// One deadline class's lanes: per-tenant FIFOs dequeued round-robin.
struct ClassLanes<T> {
    /// Tenants in first-seen order — the stable round-robin ring.
    tenants: Vec<u64>,
    /// Tenant id → FIFO of that tenant's pending items.
    lanes: HashMap<u64, VecDeque<T>>,
    /// Round-robin position in `tenants`: the next pop scans from
    /// here, so a tenant just served goes to the back of the ring.
    cursor: usize,
    /// Items across all lanes of this class.
    len: usize,
}

impl<T> Default for ClassLanes<T> {
    fn default() -> Self {
        Self {
            tenants: Vec::new(),
            lanes: HashMap::new(),
            cursor: 0,
            len: 0,
        }
    }
}

impl<T> ClassLanes<T> {
    fn push(&mut self, tenant: u64, item: T) {
        let lane = self.lanes.entry(tenant).or_insert_with(|| {
            self.tenants.push(tenant);
            VecDeque::new()
        });
        lane.push_back(item);
        self.len += 1;
    }

    /// Restores `item` at the *front* of its tenant's lane — the
    /// inverse of popping it. Used when a popped head could not be
    /// executed (its shard died under it) and must run next, ahead of
    /// the tenant's later submissions.
    fn push_front(&mut self, tenant: u64, item: T) {
        let lane = self.lanes.entry(tenant).or_insert_with(|| {
            self.tenants.push(tenant);
            VecDeque::new()
        });
        lane.push_front(item);
        self.len += 1;
    }

    /// Empties every lane into `out` as `(class, tenant, item)`
    /// triples: tenants in ring order starting at the cursor, each
    /// lane in FIFO order. Re-pushing the triples in emitted order
    /// onto a fresh queue reproduces every lane byte-for-byte and a
    /// tenant ring rotated to where the old cursor pointed.
    fn drain_rotated(&mut self, class: DeadlineClass, out: &mut Vec<(DeadlineClass, u64, T)>) {
        let n = self.tenants.len();
        for offset in 0..n {
            let idx = (self.cursor + offset) % n;
            let tenant = self.tenants[idx];
            let lane = self.lanes.get_mut(&tenant).expect("tenant has a lane");
            for item in lane.drain(..) {
                out.push((class, tenant, item));
            }
        }
        self.tenants.clear();
        self.lanes.clear();
        self.cursor = 0;
        self.len = 0;
    }

    /// Pops the head item of the first tenant — scanning round-robin
    /// from the cursor — whose head satisfies `take`. Only lane heads
    /// are eligible: per-tenant submission order is never reordered.
    fn pop_next(&mut self, take: &mut dyn FnMut(&T) -> bool) -> Option<T> {
        let n = self.tenants.len();
        for offset in 0..n {
            let idx = (self.cursor + offset) % n;
            let tenant = self.tenants[idx];
            let lane = self.lanes.get_mut(&tenant).expect("tenant has a lane");
            if let Some(head) = lane.front() {
                if take(head) {
                    let item = lane.pop_front().expect("front exists");
                    self.len -= 1;
                    // The served tenant moves behind everyone else.
                    self.cursor = (idx + 1) % n;
                    return Some(item);
                }
            }
        }
        None
    }
}

/// The shard scheduler's pending-frame structure: class-priority
/// dequeue (Interactive ahead of BestEffort), round-robin across
/// tenants within a class, FIFO within a (class, tenant) lane.
///
/// Exposed publicly so the scheduling policy can be property-tested
/// (and reused) without standing up a render server around it.
pub struct FairQueue<T> {
    classes: [ClassLanes<T>; N_CLASSES],
}

impl<T> Default for FairQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FairQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            classes: [ClassLanes::default(), ClassLanes::default()],
        }
    }

    /// Pending items across every class and tenant.
    pub fn len(&self) -> usize {
        self.classes.iter().map(|c| c.len).sum()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` on the `(class, tenant)` lane.
    pub fn push(&mut self, class: DeadlineClass, tenant: u64, item: T) {
        self.classes[class_index(class)].push(tenant, item);
    }

    /// Dequeues the next item in policy order: the highest-priority
    /// class with an eligible item wins; within it, tenants are served
    /// round-robin; within a tenant, FIFO. `take` filters eligibility
    /// (a batch builder passes its compatibility predicate) — only
    /// lane *heads* are offered to it, so an ineligible head parks its
    /// whole tenant for this call rather than reordering the tenant's
    /// frames.
    pub fn pop_next(&mut self, mut take: impl FnMut(&T) -> bool) -> Option<T> {
        self.classes
            .iter_mut()
            .find_map(|lanes| lanes.pop_next(&mut take))
    }

    /// Dequeues the next item unconditionally (policy order).
    pub fn pop(&mut self) -> Option<T> {
        self.pop_next(|_| true)
    }

    /// Restores `item` at the **front** of its `(class, tenant)` lane —
    /// the inverse of popping it. A shard restart uses this to put a
    /// popped-but-unexecuted head back ahead of the tenant's later
    /// submissions, preserving per-session FIFO (which the coherence
    /// cache's reuse chain depends on).
    pub fn push_front(&mut self, class: DeadlineClass, tenant: u64, item: T) {
        self.classes[class_index(class)].push_front(tenant, item);
    }

    /// Empties the queue, returning `(class, tenant, item)` triples in
    /// a requeue-safe order: Interactive before BestEffort, tenants in
    /// ring order starting from each class's round-robin cursor, each
    /// lane front-to-back. [`push`](FairQueue::push)ing the triples
    /// back in the returned order — onto this queue or a fresh one —
    /// reproduces every lane exactly and rotates the tenant ring to
    /// where the cursor pointed, so a drained-and-rebuilt queue
    /// schedules equivalently (the scheduling proptests pin this).
    pub fn drain(&mut self) -> Vec<(DeadlineClass, u64, T)> {
        let mut out = Vec::with_capacity(self.len());
        self.classes[class_index(DeadlineClass::Interactive)]
            .drain_rotated(DeadlineClass::Interactive, &mut out);
        self.classes[class_index(DeadlineClass::BestEffort)]
            .drain_rotated(DeadlineClass::BestEffort, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_thresholds() {
        let cfg = AdmissionConfig::with_capacity(4);
        assert_eq!(cfg.interactive_capacity, 8);
        for class in [DeadlineClass::Interactive, DeadlineClass::BestEffort] {
            assert_eq!(admission_decision(&cfg, class, 3), AdmissionDecision::Admit);
        }
        assert_eq!(
            admission_decision(&cfg, DeadlineClass::BestEffort, 4),
            AdmissionDecision::Shed
        );
        assert_eq!(
            admission_decision(&cfg, DeadlineClass::Interactive, 4),
            AdmissionDecision::Degrade
        );
        assert_eq!(
            admission_decision(&cfg, DeadlineClass::Interactive, 8),
            AdmissionDecision::Shed
        );
    }

    #[test]
    fn open_breaker_sheds_before_queue_policy() {
        let cfg = AdmissionConfig::with_capacity(4);
        // Breaker shed wins at any depth, even an empty queue.
        assert_eq!(
            admission_decision_supervised(&cfg, DeadlineClass::Interactive, 0, BreakerAdmit::Shed),
            AdmissionDecision::Break
        );
        // Admit and Probe defer to the queue policy unchanged.
        for verdict in [BreakerAdmit::Admit, BreakerAdmit::Probe] {
            assert_eq!(
                admission_decision_supervised(&cfg, DeadlineClass::Interactive, 0, verdict),
                AdmissionDecision::Admit
            );
            assert_eq!(
                admission_decision_supervised(&cfg, DeadlineClass::BestEffort, 4, verdict),
                AdmissionDecision::Shed
            );
        }
    }

    #[test]
    fn interactive_capacity_clamps_to_queue_capacity() {
        let cfg = AdmissionConfig::with_capacity(10).with_interactive_capacity(3);
        assert_eq!(cfg.interactive_capacity, 10);
    }

    #[test]
    fn class_priority_then_round_robin() {
        let mut q = FairQueue::new();
        q.push(DeadlineClass::BestEffort, 1, "be-1a");
        q.push(DeadlineClass::Interactive, 2, "int-2a");
        q.push(DeadlineClass::Interactive, 3, "int-3a");
        q.push(DeadlineClass::Interactive, 2, "int-2b");
        assert_eq!(q.len(), 4);
        // All Interactive drains before BestEffort; tenants 2 and 3
        // alternate.
        assert_eq!(q.pop(), Some("int-2a"));
        assert_eq!(q.pop(), Some("int-3a"));
        assert_eq!(q.pop(), Some("int-2b"));
        assert_eq!(q.pop(), Some("be-1a"));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn filtered_head_parks_its_tenant() {
        let mut q = FairQueue::new();
        q.push(DeadlineClass::Interactive, 1, 10);
        q.push(DeadlineClass::Interactive, 1, 11);
        q.push(DeadlineClass::Interactive, 2, 20);
        // Tenant 1's head is ineligible: tenant 2 is served, tenant
        // 1's lane stays in order (11 never jumps ahead of 10).
        assert_eq!(q.pop_next(|&v| v != 10), Some(20));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    fn push_front_restores_popped_head() {
        let mut q = FairQueue::new();
        q.push(DeadlineClass::Interactive, 1, 10);
        q.push(DeadlineClass::Interactive, 1, 11);
        let head = q.pop().unwrap();
        assert_eq!(head, 10);
        // Restoring the head puts it back ahead of the tenant's later
        // submissions, not behind them.
        q.push_front(DeadlineClass::Interactive, 1, head);
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        // push_front on an unseen tenant behaves like push.
        q.push_front(DeadlineClass::BestEffort, 9, 90);
        assert_eq!(q.pop(), Some(90));
    }

    #[test]
    fn drain_preserves_lane_order_and_rebuilds() {
        let mut q = FairQueue::new();
        q.push(DeadlineClass::Interactive, 1, "i1a");
        q.push(DeadlineClass::Interactive, 2, "i2a");
        q.push(DeadlineClass::Interactive, 1, "i1b");
        q.push(DeadlineClass::BestEffort, 3, "b3a");
        q.pop(); // advance the cursor past tenant 1
        let snapshot = q.drain();
        assert!(q.is_empty());
        // Per-lane FIFO is intact in the emitted order.
        let lane1: Vec<_> = snapshot
            .iter()
            .filter(|(_, t, _)| *t == 1)
            .map(|(_, _, v)| *v)
            .collect();
        assert_eq!(lane1, vec!["i1b"]);
        // Rebuild and verify class priority + lane order survive.
        for (class, tenant, item) in snapshot {
            q.push(class, tenant, item);
        }
        assert_eq!(q.pop(), Some("i2a"));
        assert_eq!(q.pop(), Some("i1b"));
        assert_eq!(q.pop(), Some("b3a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn hot_tenant_cannot_starve_others() {
        let mut q = FairQueue::new();
        for i in 0..16 {
            q.push(DeadlineClass::Interactive, 7, ("hot", i));
        }
        q.push(DeadlineClass::Interactive, 8, ("cold", 0));
        // The cold tenant's lone frame is served second, not 17th.
        assert_eq!(q.pop(), Some(("hot", 0)));
        assert_eq!(q.pop(), Some(("cold", 0)));
        assert_eq!(q.pop(), Some(("hot", 1)));
    }
}
