//! Shard lifecycle: heartbeats, health classification, restart policy.
//!
//! A shard's worker thread is a single point of failure — a loop that
//! dies (panic outside the frame-level `catch_unwind`) or wedges (a
//! stuck render that ignores cancellation) strands every session
//! mapped to it. This module holds the policy side of the self-healing
//! layer:
//!
//! * [`Heartbeat`] — the lock-free progress beacon every shard loop
//!   publishes (an epoch counter plus a last-progress timestamp on the
//!   telemetry [`Clock`](gen_nerf_telemetry::Clock)). The loop beats
//!   on every wakeup, pop, and batch completion, so a healthy shard's
//!   beat is never older than its condvar park interval.
//! * [`ShardHealth`] — the verdict ladder the supervisor's health
//!   sweep walks: `Healthy` → `Wedged` (beat older than the budget
//!   while work is pending, or a persistently poisoned pool) → `Dead`
//!   (worker `JoinHandle` finished while the queue is still open).
//! * [`HealthConfig`] — budgets and thresholds: the heartbeat budget
//!   (`GEN_NERF_HEARTBEAT_MS`), the sweep cadence, the exponential
//!   restart backoff, the give-up threshold past which a shard is
//!   declared down, and the poison-streak escalation points.
//! * [`DrainReport`]/[`DrainOutcome`] — what
//!   [`RenderServer::drain`](crate::RenderServer::drain) returns.
//!
//! The mechanism side — condemning, tearing down, and respawning a
//! shard — lives with the shard itself (`shard.rs`); the sweep that
//! drives it is registered on the supervisor's watchdog thread by
//! `RenderServer`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Environment variable overriding the heartbeat budget, in
/// milliseconds: how stale a shard's heartbeat may grow — while frames
/// are queued — before the health sweep declares it wedged.
pub const HEARTBEAT_ENV: &str = "GEN_NERF_HEARTBEAT_MS";

/// Default heartbeat budget. Deliberately above the worst legitimate
/// gap between beats: a batch stalls at most one deadline budget
/// before the watchdog cancels it (the chaos harness stalls up to
/// ~1.5 s), and the loop beats as soon as the batch returns.
const DEFAULT_HEARTBEAT_BUDGET: Duration = Duration::from_millis(2000);

/// The health sweep's verdict for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Beating within budget (or idle with an empty queue).
    Healthy,
    /// No heartbeat past the budget while frames are queued, or the
    /// pool poison streak crossed the condemn threshold. The worker
    /// thread is still running but not making progress.
    Wedged,
    /// The worker thread finished while the queue was still open — the
    /// loop panicked or exited without being asked to.
    Dead,
}

/// Why a shard was condemned — the `b` payload of a
/// [`Condemn`](gen_nerf_telemetry::EventKind::Condemn) trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondemnReason {
    /// Heartbeat older than the budget with work pending.
    Wedged,
    /// Worker `JoinHandle` finished unexpectedly.
    Dead,
    /// Pool poison streak crossed
    /// [`pool_condemn_after`](HealthConfig::pool_condemn_after).
    Poisoned,
}

impl CondemnReason {
    /// Stable wire code for trace events.
    pub fn code(self) -> u64 {
        match self {
            CondemnReason::Wedged => 0,
            CondemnReason::Dead => 1,
            CondemnReason::Poisoned => 2,
        }
    }

    /// Metric label for the condemned counter.
    pub fn label(self) -> &'static str {
        match self {
            CondemnReason::Wedged => "wedged",
            CondemnReason::Dead => "dead",
            CondemnReason::Poisoned => "poisoned",
        }
    }
}

/// Budgets and thresholds for the shard health sweep.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// How stale a shard's heartbeat may grow, while frames are
    /// queued, before the sweep condemns it as wedged. Default 2 s,
    /// overridable via [`HEARTBEAT_ENV`].
    pub heartbeat_budget: Duration,
    /// Cadence of the health sweep on the watchdog thread.
    pub sweep_interval: Duration,
    /// Base of the exponential restart backoff: restart `n` (1-based)
    /// waits `restart_backoff * 2^(n-1)`, capped at
    /// [`restart_backoff_cap`](HealthConfig::restart_backoff_cap).
    pub restart_backoff: Duration,
    /// Ceiling of the exponential backoff.
    pub restart_backoff_cap: Duration,
    /// Consecutive restarts (without a successfully rendered frame in
    /// between) after which the shard is declared down: queued frames
    /// fail, and later submissions resolve with
    /// [`ServeError::ShardDown`](crate::ServeError::ShardDown).
    pub max_restarts: u32,
    /// Consecutive poisoned (panicked) render attempts after which the
    /// shard loop respawns its own pool workers in place — the cheap
    /// reclaim that handles a sick pool without a full shard restart.
    pub pool_respawn_after: u32,
    /// Consecutive poisoned attempts after which the sweep condemns
    /// the whole shard (pool respawn did not help). Must be well above
    /// `pool_respawn_after`; the streak only clears on a clean render.
    pub pool_condemn_after: u32,
}

impl HealthConfig {
    /// Overrides the heartbeat budget.
    pub fn with_heartbeat_budget(mut self, budget: Duration) -> Self {
        self.heartbeat_budget = budget.max(Duration::from_millis(1));
        self
    }

    /// Overrides the sweep cadence.
    pub fn with_sweep_interval(mut self, interval: Duration) -> Self {
        self.sweep_interval = interval.max(Duration::from_millis(1));
        self
    }

    /// Overrides the restart backoff base and cap.
    pub fn with_restart_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.restart_backoff = base;
        self.restart_backoff_cap = cap.max(base);
        self
    }

    /// Overrides the give-up threshold.
    pub fn with_max_restarts(mut self, max: u32) -> Self {
        self.max_restarts = max;
        self
    }

    /// Overrides the poison escalation thresholds (condemn clamped to
    /// at least the respawn point).
    pub fn with_poison_thresholds(mut self, respawn_after: u32, condemn_after: u32) -> Self {
        self.pool_respawn_after = respawn_after.max(1);
        self.pool_condemn_after = condemn_after.max(self.pool_respawn_after);
        self
    }

    /// Backoff before restart number `consecutive` (1-based):
    /// exponential in the restart count, saturating at the cap.
    pub fn backoff_for(&self, consecutive: u32) -> Duration {
        let shift = consecutive.saturating_sub(1).min(16);
        let factor = 1u32 << shift;
        self.restart_backoff
            .saturating_mul(factor)
            .min(self.restart_backoff_cap)
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        let heartbeat_budget = std::env::var(HEARTBEAT_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms >= 1)
            .map(Duration::from_millis)
            .unwrap_or(DEFAULT_HEARTBEAT_BUDGET);
        Self {
            heartbeat_budget,
            sweep_interval: Duration::from_millis(50),
            restart_backoff: Duration::from_millis(50),
            restart_backoff_cap: Duration::from_secs(2),
            max_restarts: 5,
            pool_respawn_after: 4,
            pool_condemn_after: 24,
        }
    }
}

/// A shard's lock-free progress beacon: a monotonically increasing
/// epoch plus the timestamp of the last beat, both published with
/// relaxed atomics (the sweep tolerates a beat-width race — it only
/// ever misreads staleness by one beat).
///
/// Timestamps are stored as nanoseconds since a fixed `origin` instant
/// taken from the telemetry clock at construction, so a virtual clock
/// drives heartbeat age deterministically in tests.
#[derive(Debug)]
pub(crate) struct Heartbeat {
    /// Count of beats since construction (or the last incarnation).
    epoch: AtomicU64,
    /// Nanoseconds from `origin` to the latest beat.
    last_beat_ns: AtomicU64,
    origin: Instant,
}

impl Heartbeat {
    pub(crate) fn new(origin: Instant) -> Self {
        Self {
            epoch: AtomicU64::new(0),
            last_beat_ns: AtomicU64::new(0),
            origin,
        }
    }

    /// Publishes progress: bumps the epoch and stamps `now`.
    pub(crate) fn beat(&self, now: Instant) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        let ns = now.saturating_duration_since(self.origin).as_nanos() as u64;
        self.last_beat_ns.store(ns, Ordering::Relaxed);
    }

    /// Time since the last beat, as seen at `now`.
    pub(crate) fn age(&self, now: Instant) -> Duration {
        let now_ns = now.saturating_duration_since(self.origin).as_nanos() as u64;
        Duration::from_nanos(now_ns.saturating_sub(self.last_beat_ns.load(Ordering::Relaxed)))
    }

    /// Beats since construction.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

/// One shard's lifecycle counters, as reported by
/// [`RenderServer::shard_health`](crate::RenderServer::shard_health).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealthStats {
    /// Shard index within the server.
    pub shard: usize,
    /// Worker incarnation: 0 for the original spawn, bumped once per
    /// condemnation.
    pub incarnation: u64,
    /// Total restarts performed over the shard's lifetime.
    pub restarts: u64,
    /// Restarts since the last successfully rendered frame — the
    /// give-up counter.
    pub consecutive_restarts: u32,
    /// Whether the shard has been declared down (give-up threshold
    /// crossed); a down shard rejects submissions with
    /// [`ServeError::ShardDown`](crate::ServeError::ShardDown).
    pub down: bool,
    /// Heartbeat epochs published by the current worker.
    pub heartbeat_epoch: u64,
    /// The sweep's current verdict.
    pub health: ShardHealth,
}

/// Per-shard outcome of a [`RenderServer::drain`](crate::RenderServer::drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Shard index.
    pub shard: usize,
    /// Whether the shard finished all queued and in-flight work within
    /// the deadline.
    pub drained: bool,
    /// Frames force-failed (with
    /// [`ServeError::Draining`](crate::ServeError::Draining)) when the
    /// deadline expired — zero for a clean drain.
    pub forced: u64,
    /// How long this shard's drain took (or consumed before the
    /// deadline cut it off).
    pub waited: Duration,
}

/// What [`RenderServer::drain`](crate::RenderServer::drain) returns:
/// one [`DrainOutcome`] per shard, in shard order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Per-shard outcomes.
    pub outcomes: Vec<DrainOutcome>,
}

impl DrainReport {
    /// Whether every shard drained cleanly (no forced failures, no
    /// leftover in-flight work).
    pub fn complete(&self) -> bool {
        self.outcomes.iter().all(|o| o.drained && o.forced == 0)
    }

    /// Total frames force-failed at the deadline across all shards.
    pub fn forced_total(&self) -> u64 {
        self.outcomes.iter().map(|o| o.forced).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = HealthConfig::default()
            .with_restart_backoff(Duration::from_millis(50), Duration::from_millis(400));
        assert_eq!(cfg.backoff_for(1), Duration::from_millis(50));
        assert_eq!(cfg.backoff_for(2), Duration::from_millis(100));
        assert_eq!(cfg.backoff_for(3), Duration::from_millis(200));
        assert_eq!(cfg.backoff_for(4), Duration::from_millis(400));
        assert_eq!(cfg.backoff_for(5), Duration::from_millis(400));
        assert_eq!(cfg.backoff_for(60), Duration::from_millis(400));
    }

    #[test]
    fn poison_thresholds_clamp() {
        let cfg = HealthConfig::default().with_poison_thresholds(8, 2);
        assert_eq!(cfg.pool_respawn_after, 8);
        assert_eq!(cfg.pool_condemn_after, 8);
    }

    #[test]
    fn heartbeat_age_tracks_beats() {
        let origin = Instant::now();
        let hb = Heartbeat::new(origin);
        assert_eq!(hb.epoch(), 0);
        let later = origin + Duration::from_millis(500);
        assert_eq!(hb.age(later), Duration::from_millis(500));
        hb.beat(origin + Duration::from_millis(400));
        assert_eq!(hb.epoch(), 1);
        assert_eq!(hb.age(later), Duration::from_millis(100));
        // A beat newer than "now" reads as zero age, not underflow.
        hb.beat(origin + Duration::from_millis(600));
        assert_eq!(hb.age(later), Duration::ZERO);
    }

    #[test]
    fn drain_report_complete() {
        let clean = DrainOutcome {
            shard: 0,
            drained: true,
            forced: 0,
            waited: Duration::from_millis(5),
        };
        let forced = DrainOutcome {
            shard: 1,
            drained: true,
            forced: 3,
            waited: Duration::from_millis(9),
        };
        assert!(DrainReport {
            outcomes: vec![clean]
        }
        .complete());
        let report = DrainReport {
            outcomes: vec![clean, forced],
        };
        assert!(!report.complete());
        assert_eq!(report.forced_total(), 3);
    }
}
