//! `gen-nerf-serve` — an asynchronous multi-session render server.
//!
//! The paper's motivating scenario (Sec. 1) is a user in an AR headset
//! demanding a novel view *per head pose, now*. A synchronous
//! [`gen_nerf::pipeline::Renderer::render`] call serves one such user
//! badly — every frame re-pays the per-scene setup (source-feature
//! encoding, model construction) and every small frame under-fills the
//! fused GEMM schedule — and serves many users worse, one at a time.
//! This crate is the serving layer that amortizes both:
//!
//! * **Sessions** ([`SceneState`]/[`SessionConfig`]): each session
//!   pins the per-scene state that is otherwise rebuilt per frame —
//!   the encoded source-feature pyramids ([`SceneState::prepare`] runs
//!   `prepare_sources` once), the pretrained model (shared `&self`
//!   across every in-flight frame), scene bounds/background, and an
//!   optional precomputed occupancy grid handle.
//! * **Scene shards** ([`ShardId`]): the server is partitioned per
//!   scene. Each registered scene routes (by `Arc` identity) to one
//!   shard — a scheduler thread owning that scene's request queue, its
//!   sessions' coherence caches' scheduling, and a private slice of the
//!   server's thread budget as its own persistent
//!   [`gen_nerf_parallel::Pool`]. Scheduling never serializes across
//!   scenes; up to [`ServerConfig::max_shards`] shards spawn lazily,
//!   further scenes share shards round-robin. There is no async
//!   runtime — the container builds with no external crates, so each
//!   shard is a shared condvar-signalled queue + a scheduler thread +
//!   a worker pool. The scheduler thread itself is supervised: a
//!   heartbeat/health sweep condemns a dead or wedged worker, requeues
//!   its frames, and respawns it under a restart budget
//!   ([`HealthConfig`]), and a process-wide [`GovernorConfig`] memory
//!   budget spans every session cache.
//! * **Admission control** ([`AdmissionConfig`]): every shard queue is
//!   bounded. At the capacity watermark, [`DeadlineClass::BestEffort`]
//!   submissions are **shed** (their [`FrameHandle`] resolves
//!   immediately with [`ServeError::Shed`]) while
//!   [`DeadlineClass::Interactive`] submissions **degrade** to the
//!   cached-coarse [`ResolutionTier::Quarter`] tier, shedding only past
//!   a higher hard bound — overload costs prefetch work and resolution
//!   before it costs interactive frames.
//! * **Fair admission batching** ([`FairQueue`]): the shard scheduler
//!   dequeues in class-priority order with per-tenant round-robin (one
//!   hot session cannot starve its shard-mates; per-session FIFO is
//!   never reordered) and coalesces frames of sessions that share a
//!   scene and strategy into **one** fused multi-frame render
//!   ([`Renderer::render_frames_cached`](gen_nerf::pipeline::Renderer::render_frames_cached)),
//!   so concurrent small requests fill the one-GEMM-per-chunk schedule a
//!   lone request cannot. The kernel batch-independence contract makes
//!   this free of approximation: co-scheduled frames are bit-for-bit
//!   what solo renders would produce.
//! * **A temporal-coherence cache** ([`CoherenceConfig`]): per session,
//!   the coarse-then-focus Step ① outcome
//!   ([`CoarseFrame`](gen_nerf::pipeline::CoarseFrame)) of the
//!   last anchor pose is kept; a new pose within the configured
//!   translation/rotation delta re-runs only the focus pass against
//!   the cached coarse probing. With coherence disabled (the default,
//!   [`CoherenceConfig::exact`]) the server is pinned bitwise-identical
//!   to direct rendering by `tests/serve_regression.rs`.
//!
//! # Quickstart
//!
//! ```no_run
//! use gen_nerf::config::{ModelConfig, SamplingStrategy};
//! use gen_nerf::model::GenNerfModel;
//! use gen_nerf_scene::{Dataset, DatasetKind};
//! use gen_nerf_serve::{
//!     CoherenceConfig, FrameRequest, RenderServer, SceneState, ServerConfig, SessionConfig,
//! };
//! use std::sync::Arc;
//!
//! let ds = Dataset::build(DatasetKind::DeepVoxels, "pedestal", 0.08, 6, 1, 64, 11);
//! let model = GenNerfModel::new(ModelConfig::fast());
//! let scene = Arc::new(SceneState::prepare(
//!     model,
//!     &ds.source_views,
//!     ds.scene.bounds,
//!     ds.scene.background,
//! ));
//!
//! let server = RenderServer::new(ServerConfig::default());
//! let session = server.create_session(
//!     Arc::clone(&scene),
//!     SessionConfig::new(
//!         ds.eval_views[0].camera.intrinsics,
//!         SamplingStrategy::coarse_then_focus(8, 16),
//!     )
//!     .with_coherence(CoherenceConfig::within(0.05, 0.02)),
//! );
//!
//! let handle = server.submit(session, FrameRequest::new(ds.eval_views[0].camera.pose));
//! let frame = handle.wait();
//! println!(
//!     "latency {:?}, cache {:?}",
//!     frame.serve.latency, frame.serve.cache
//! );
//! ```

mod admission;
mod governor;
mod health;
mod registry;
mod server;
mod session;
mod shard;
mod supervisor;

pub use admission::{
    admission_decision, admission_decision_supervised, AdmissionConfig, AdmissionDecision,
    AdmissionStats, FairQueue,
};
pub use governor::{GovernorConfig, GovernorStats, MEMORY_BUDGET_ENV};
pub use health::{
    CondemnReason, DrainOutcome, DrainReport, HealthConfig, ShardHealth, ShardHealthStats,
    HEARTBEAT_ENV,
};
pub use registry::ShardId;
pub use server::{
    CacheOutcome, Fault, FrameHandle, FrameRequest, FrameResult, RenderServer, ServeError,
    ServeStats, ServerConfig,
};
pub use session::{
    poses_coherent, CacheStats, CoherenceConfig, DeadlineClass, ResolutionTier, SceneState,
    SessionConfig, SessionId, DEFAULT_CACHE_BUDGET_BYTES,
};
pub use shard::ShardStats;
pub use supervisor::{
    BreakerAdmit, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy, SupervisorConfig,
    SupervisorStats,
};
