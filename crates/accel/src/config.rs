//! Accelerator configuration (paper Sec. 5.1).

use gen_nerf_dram::{DramConfig, FeatureLayout};
use serde::Serialize;

/// Full configuration of the Gen-NeRF accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AcceleratorConfig {
    /// Clock frequency, GHz.
    pub freq_ghz: f64,
    /// Number of systolic arrays in the PE pool.
    pub pe_arrays: usize,
    /// Systolic array dimension (arrays are `dim × dim` INT8 MACs).
    pub pe_array_dim: usize,
    /// Local buffer size, KB.
    pub local_buffer_kb: usize,
    /// Weight buffer size, KB.
    pub weight_buffer_kb: usize,
    /// Each half of the prefetch double buffer, KB.
    pub prefetch_buffer_kb: usize,
    /// Off-chip DRAM device.
    pub dram: DramConfig,
    /// Scene-feature storage layout.
    pub layout: FeatureLayout,
}

impl AcceleratorConfig {
    /// The paper's synthesized configuration: 1 GHz, 40 16×16 INT8
    /// systolic arrays, 256 KB local buffer, 8 KB weight buffer,
    /// 2×256 KB prefetch buffers, LPDDR4-2400, spatial-interleaved
    /// feature storage.
    pub fn paper() -> Self {
        Self {
            freq_ghz: 1.0,
            pe_arrays: 40,
            pe_array_dim: 16,
            local_buffer_kb: 256,
            weight_buffer_kb: 8,
            prefetch_buffer_kb: 256,
            dram: DramConfig::lpddr4_2400(),
            layout: FeatureLayout::SpatialInterleave,
        }
    }

    /// Peak multiply–accumulates per cycle.
    pub fn macs_per_cycle(&self) -> u64 {
        (self.pe_arrays * self.pe_array_dim * self.pe_array_dim) as u64
    }

    /// Peak INT8 throughput in TOPS (2 ops per MAC).
    pub fn peak_tops(&self) -> f64 {
        self.macs_per_cycle() as f64 * 2.0 * self.freq_ghz / 1000.0
    }

    /// Total on-chip SRAM in KB (local + weight + both prefetch halves).
    pub fn total_sram_kb(&self) -> usize {
        self.local_buffer_kb + self.weight_buffer_kb + 2 * self.prefetch_buffer_kb
    }

    /// Prefetch-buffer capacity in bytes (one half; the patch-size
    /// constraint of Sec. 4.3).
    pub fn prefetch_capacity_bytes(&self) -> u64 {
        self.prefetch_buffer_kb as u64 * 1024
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_5_1() {
        let cfg = AcceleratorConfig::paper();
        assert_eq!(cfg.pe_arrays, 40);
        assert_eq!(cfg.pe_array_dim, 16);
        assert_eq!(cfg.freq_ghz, 1.0);
        assert_eq!(cfg.local_buffer_kb, 256);
        assert_eq!(cfg.weight_buffer_kb, 8);
        assert_eq!(cfg.prefetch_buffer_kb, 256);
        assert_eq!(cfg.dram.bandwidth_gbps(), 17.8);
    }

    #[test]
    fn macs_per_cycle_is_10240() {
        assert_eq!(AcceleratorConfig::paper().macs_per_cycle(), 40 * 256);
    }

    #[test]
    fn peak_tops_about_20() {
        let tops = AcceleratorConfig::paper().peak_tops();
        assert!((tops - 20.48).abs() < 1e-9, "tops = {tops}");
    }

    #[test]
    fn total_sram_under_a_megabyte() {
        // Tab. 4 lists 0.8 MB SRAM.
        let kb = AcceleratorConfig::paper().total_sram_kb();
        assert_eq!(kb, 776);
        assert!((kb as f64 / 1024.0 - 0.8).abs() < 0.05);
    }
}
