//! Analytic 28 nm area/power model (paper Tab. 1).
//!
//! The paper synthesizes its RTL with Cadence Genus on a commercial
//! 28 nm library; we substitute a first-order component model whose
//! per-unit constants are fitted to Tab. 1 (see DESIGN.md §2):
//!
//! | Module | Area (mm²) | Power (mW) |
//! |--------|-----------:|-----------:|
//! | Workload scheduler | 0.24 | 156.2 |
//! | Preprocessing unit | 1.24 | 696.0 |
//! | Rendering engine (excl. PPU) | 14.98 | 8359.2 |
//! | Prefetch buffer | 1.34 | 473.6 |
//! | **Total** | **17.80** | **9685.0** |
//!
//! Constants: SRAM 0.0026 mm²/KB and 0.925 mW/KB (from the 512 KB
//! prefetch buffer row); INT8 MAC 1.385e-3 mm²/MAC and 0.79 mW/MAC
//! (from the rendering-engine row after subtracting its buffers); the
//! scheduler and preprocessing unit are fixed blocks that scale mildly
//! with PE count.

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// Fitted 28 nm unit constants.
const SRAM_MM2_PER_KB: f64 = 0.0026;
const SRAM_MW_PER_KB: f64 = 0.925;
const MAC_MM2: f64 = 1.385e-3;
const MAC_MW: f64 = 0.79;
/// Fixed-function block constants (fitted to Tab. 1 at 40 PEs).
const SCHEDULER_MM2: f64 = 0.24;
const SCHEDULER_MW: f64 = 156.2;
const PPU_MM2: f64 = 1.24;
const PPU_MW: f64 = 696.0;
/// Rendering-engine overhead beyond MACs and buffers (SFU, control,
/// local interconnect), as a fraction of the MAC array.
const ENGINE_OVERHEAD_FRAC: f64 = 0.008;

/// Area/power of one hardware module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleCost {
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// The Tab. 1 rows for a given configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaPowerReport {
    /// Workload scheduler.
    pub scheduler: ModuleCost,
    /// Preprocessing unit (PPU).
    pub preprocessing: ModuleCost,
    /// Rendering engine excluding the PPU (PE pool + local/weight
    /// buffers + SFU).
    pub rendering_engine: ModuleCost,
    /// Prefetch double buffer.
    pub prefetch_buffer: ModuleCost,
}

impl AreaPowerReport {
    /// Total area, mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.scheduler.area_mm2
            + self.preprocessing.area_mm2
            + self.rendering_engine.area_mm2
            + self.prefetch_buffer.area_mm2
    }

    /// Total power, mW.
    pub fn total_power_mw(&self) -> f64 {
        self.scheduler.power_mw
            + self.preprocessing.power_mw
            + self.rendering_engine.power_mw
            + self.prefetch_buffer.power_mw
    }
}

/// Evaluates the analytic area/power model for a configuration.
pub fn area_power(cfg: &AcceleratorConfig) -> AreaPowerReport {
    let macs = cfg.macs_per_cycle() as f64;
    let pe_scale = macs / (40.0 * 256.0);

    let prefetch_kb = (2 * cfg.prefetch_buffer_kb) as f64;
    let prefetch = ModuleCost {
        area_mm2: prefetch_kb * SRAM_MM2_PER_KB,
        power_mw: prefetch_kb * SRAM_MW_PER_KB,
    };

    let engine_sram_kb = (cfg.local_buffer_kb + cfg.weight_buffer_kb) as f64;
    let mac_area = macs * MAC_MM2;
    let rendering_engine = ModuleCost {
        area_mm2: mac_area * (1.0 + ENGINE_OVERHEAD_FRAC) + engine_sram_kb * SRAM_MM2_PER_KB,
        power_mw: macs * MAC_MW * (1.0 + ENGINE_OVERHEAD_FRAC) + engine_sram_kb * SRAM_MW_PER_KB,
    };

    let scheduler = ModuleCost {
        area_mm2: SCHEDULER_MM2 * pe_scale.sqrt(),
        power_mw: SCHEDULER_MW * pe_scale.sqrt(),
    };
    let preprocessing = ModuleCost {
        area_mm2: PPU_MM2 * pe_scale.sqrt(),
        power_mw: PPU_MW * pe_scale.sqrt(),
    };

    AreaPowerReport {
        scheduler,
        preprocessing,
        rendering_engine,
        prefetch_buffer: prefetch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AreaPowerReport {
        area_power(&AcceleratorConfig::paper())
    }

    fn close(got: f64, want: f64, tol: f64) -> bool {
        (got - want).abs() / want < tol
    }

    #[test]
    fn total_area_matches_tab1() {
        let r = report();
        assert!(
            close(r.total_area_mm2(), 17.80, 0.05),
            "total area = {:.2} mm² (paper 17.80)",
            r.total_area_mm2()
        );
    }

    #[test]
    fn total_power_matches_tab1() {
        let r = report();
        assert!(
            close(r.total_power_mw(), 9685.0, 0.05),
            "total power = {:.0} mW (paper 9685)",
            r.total_power_mw()
        );
    }

    #[test]
    fn prefetch_buffer_matches_tab1() {
        let r = report();
        assert!(close(r.prefetch_buffer.area_mm2, 1.34, 0.05));
        assert!(close(r.prefetch_buffer.power_mw, 473.6, 0.05));
    }

    #[test]
    fn rendering_engine_matches_tab1() {
        let r = report();
        assert!(
            close(r.rendering_engine.area_mm2, 14.98, 0.05),
            "engine area = {:.2}",
            r.rendering_engine.area_mm2
        );
        assert!(
            close(r.rendering_engine.power_mw, 8359.2, 0.05),
            "engine power = {:.0}",
            r.rendering_engine.power_mw
        );
    }

    #[test]
    fn scheduler_and_ppu_match_tab1() {
        let r = report();
        assert!(close(r.scheduler.area_mm2, 0.24, 0.02));
        assert!(close(r.scheduler.power_mw, 156.2, 0.02));
        assert!(close(r.preprocessing.area_mm2, 1.24, 0.02));
        assert!(close(r.preprocessing.power_mw, 696.0, 0.02));
    }

    #[test]
    fn area_scales_with_pe_count() {
        let mut cfg = AcceleratorConfig::paper();
        cfg.pe_arrays = 80;
        let big = area_power(&cfg);
        assert!(big.total_area_mm2() > report().total_area_mm2() * 1.5);
    }

    #[test]
    fn sram_scales_with_buffer_size() {
        let mut cfg = AcceleratorConfig::paper();
        cfg.prefetch_buffer_kb = 512;
        let big = area_power(&cfg);
        assert!(
            close(big.prefetch_buffer.area_mm2, 2.0 * 1.34, 0.05),
            "{}",
            big.prefetch_buffer.area_mm2
        );
    }
}
