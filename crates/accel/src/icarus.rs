//! The ICARUS comparison point (paper Tab. 4).
//!
//! ICARUS (Rao et al., 2022) is a specialized architecture for vanilla
//! MLP-dominated NeRF. The paper compares against ICARUS's *reported*
//! numbers rather than re-simulating it; we do the same.

use serde::Serialize;

/// ICARUS's published specification and performance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Icarus {
    /// Die area, mm².
    pub area_mm2: f64,
    /// On-chip SRAM, MB.
    pub sram_mb: f64,
    /// Clock, GHz.
    pub freq_ghz: f64,
    /// Process node, nm.
    pub technology_nm: u32,
    /// Typical power, W.
    pub power_w: f64,
    /// Reported typical FPS (vanilla NeRF rendering).
    pub typical_fps: f64,
}

impl Icarus {
    /// The numbers reported in ICARUS's paper as quoted in Tab. 4.
    pub fn reported() -> Self {
        Self {
            area_mm2: 16.5,
            sram_mb: 0.96,
            freq_ghz: 0.4,
            technology_nm: 40,
            power_w: 0.2828,
            typical_fps: 0.02,
        }
    }
}

impl Default for Icarus {
    fn default() -> Self {
        Self::reported()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reported_matches_tab4() {
        let i = Icarus::reported();
        assert_eq!(i.area_mm2, 16.5);
        assert_eq!(i.sram_mb, 0.96);
        assert_eq!(i.freq_ghz, 0.4);
        assert_eq!(i.technology_nm, 40);
        assert!((i.power_w - 0.2828).abs() < 1e-9);
        assert_eq!(i.typical_fps, 0.02);
    }

    #[test]
    fn gen_nerf_beats_icarus_by_over_1000x() {
        // Paper Sec. 5.3: ">1000× FPS under a comparable area". The
        // Gen-NeRF FPS is produced by the simulator; here we only check
        // the claim is *achievable* given the paper's own 24.9 FPS.
        let i = Icarus::reported();
        assert!(24.9 / i.typical_fps > 1000.0);
    }
}
