//! Roofline models of the GPU baselines (RTX 2080Ti, Jetson TX2).
//!
//! The paper measures its GPU baselines on real hardware; we substitute
//! calibrated analytic models (DESIGN.md §2). Each model decomposes a
//! frame into the Fig. 2 buckets:
//!
//! * **Acquire Features** — per-(point, view) gathers at a calibrated
//!   per-gather cost (random texture access + projection address math
//!   never reaches peak bandwidth),
//! * **MLP** — GEMM FLOPs at a size-dependent efficiency (narrow NeRF
//!   layers utilize a few percent of a big GPU; wider layers more),
//! * **Ray Transformer / Ray-Mixer** — the per-ray module; attention is
//!   derated a further ~5× (the Sec. 2.3 observation: 44.1% of DNN time
//!   from 13.8% of FLOPs),
//! * **Others** — sampling, volume rendering and launch overheads; the
//!   coarse-then-focus pipeline additionally pays a warp-divergence
//!   factor on SIMT hardware because per-ray sample counts become
//!   non-uniform (the motivation for a dedicated ray-marching
//!   micro-architecture).

use crate::workload::{RayModuleKind, Stage, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Time breakdown of one frame on a GPU (seconds), Fig. 2's buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuBreakdown {
    /// Scene-feature acquisition.
    pub acquire_s: f64,
    /// Backbone MLP.
    pub mlp_s: f64,
    /// Ray transformer / Ray-Mixer.
    pub ray_module_s: f64,
    /// Sampling, compositing, kernel overheads.
    pub others_s: f64,
}

impl GpuBreakdown {
    /// Total frame latency, seconds.
    pub fn total_s(&self) -> f64 {
        self.acquire_s + self.mlp_s + self.ray_module_s + self.others_s
    }

    /// Fraction of DNN time (MLP + ray module) spent in the ray module.
    pub fn ray_module_dnn_share(&self) -> f64 {
        let dnn = self.mlp_s + self.ray_module_s;
        if dnn > 0.0 {
            self.ray_module_s / dnn
        } else {
            0.0
        }
    }
}

/// An analytic GPU device model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuModel {
    /// Device name.
    pub name: &'static str,
    /// Peak FP32 throughput, TFLOPS.
    pub fp32_tflops: f64,
    /// Peak DRAM bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Cost of one (point, view) feature gather, nanoseconds
    /// (calibrated; includes projection math, bilinear taps and random
    /// access inefficiency).
    pub gather_ns_per_point_view: f64,
    /// Attention derate relative to GEMM efficiency.
    pub attention_penalty: f64,
    /// Fixed per-frame overhead (launches, host sync), seconds.
    pub frame_overhead_s: f64,
    /// Warp-divergence factor applied to compute when the workload uses
    /// non-uniform (coarse-then-focus) sampling.
    pub divergence_factor: f64,
    /// Rays per launch batch (the paper profiles 4096 on the 2080Ti and
    /// 128 on the TX2).
    pub batch_rays: u64,
    /// Host/device synchronization cost per batch per stage, seconds
    /// (PDF build + inverse-transform resampling round trips).
    pub sync_s_per_batch: f64,
    /// On-chip SRAM, MB (Tab. 4).
    pub sram_mb: f64,
    /// Die area, mm² (Tab. 4).
    pub area_mm2: f64,
    /// Clock, GHz (Tab. 4).
    pub freq_ghz: f64,
    /// Typical board power, W (Tab. 4).
    pub power_w: f64,
    /// DRAM technology (Tab. 4).
    pub dram_name: &'static str,
}

impl GpuModel {
    /// NVIDIA RTX 2080Ti (desktop GPU baseline).
    pub fn rtx_2080ti() -> Self {
        Self {
            name: "RTX 2080Ti",
            fp32_tflops: 13.45,
            bandwidth_gbps: 616.0,
            gather_ns_per_point_view: 2.2,
            attention_penalty: 5.0,
            frame_overhead_s: 0.15,
            divergence_factor: 3.5,
            batch_rays: 4096,
            sync_s_per_batch: 0.008,
            sram_mb: 29.5,
            area_mm2: 754.0,
            freq_ghz: 1.35,
            power_w: 250.0,
            dram_name: "GDDR6",
        }
    }

    /// NVIDIA Jetson TX2 (edge GPU baseline).
    pub fn jetson_tx2() -> Self {
        Self {
            name: "Jetson TX2",
            fp32_tflops: 0.8,
            bandwidth_gbps: 25.6,
            gather_ns_per_point_view: 40.0,
            attention_penalty: 5.0,
            frame_overhead_s: 2.0,
            divergence_factor: 3.5,
            batch_rays: 128,
            sync_s_per_batch: 0.008,
            sram_mb: 2.5,
            area_mm2: 350.0,
            freq_ghz: 0.9,
            power_w: 10.0,
            dram_name: "LPDDR4-1600",
        }
    }

    /// GEMM efficiency as a function of the inner (reduction) dimension
    /// `k`: narrow NeRF layers achieve a few percent of peak; wide
    /// layers saturate around 35%.
    pub fn gemm_efficiency(&self, k: usize) -> f64 {
        (k as f64 / 800.0).clamp(0.018, 0.35)
    }

    /// Frame latency breakdown for a workload.
    pub fn breakdown(&self, spec: &WorkloadSpec) -> GpuBreakdown {
        let mut acquire_s = 0.0;
        let mut mlp_s = 0.0;
        let mut vr_flops = 0.0;
        for stage in spec.stages() {
            let pv = spec.points(stage) as f64 * spec.views(stage) as f64;
            // Coarse stage gathers fewer channels: scale gather cost by
            // the channel fraction (address math amortizes, data moves
            // shrink).
            let channel_frac = spec.channels(stage) as f64 / spec.d_channels as f64;
            acquire_s += pv * self.gather_ns_per_point_view * 1e-9 * (0.5 + 0.5 * channel_frac);
            let mlp_flops = 2.0 * spec.mlp_macs(stage) as f64;
            let k = gemm_k_for(spec, stage);
            mlp_s += mlp_flops / (self.fp32_tflops * 1e12 * self.gemm_efficiency(k));
            vr_flops += spec.points(stage) as f64 * 12.0;
        }

        let ray_flops = 2.0 * spec.ray_macs_total(Stage::Focused) as f64;
        let ray_eff = match spec.ray_module {
            RayModuleKind::Transformer => {
                self.gemm_efficiency(spec.mlp_gemm_k()) / self.attention_penalty
            }
            RayModuleKind::Mixer => self.gemm_efficiency(16),
            RayModuleKind::None => 1.0,
        };
        let ray_module_s = if ray_flops > 0.0 {
            ray_flops / (self.fp32_tflops * 1e12 * ray_eff)
        } else {
            0.0
        };

        let n_batches = spec.rays().div_ceil(self.batch_rays);
        let sync_s = n_batches as f64 * spec.stages().len() as f64 * self.sync_s_per_batch;
        let others_s = vr_flops / (self.fp32_tflops * 1e12 * 0.02) + self.frame_overhead_s + sync_s;

        // Non-uniform sampling diverges warps: derate all compute.
        let divergent = spec.n_coarse > 0;
        let mut bd = GpuBreakdown {
            acquire_s,
            mlp_s,
            ray_module_s,
            others_s: 0.0,
        };
        if divergent {
            bd.mlp_s *= self.divergence_factor;
            bd.ray_module_s *= self.divergence_factor;
            bd.acquire_s *= self.divergence_factor.sqrt();
        }
        bd.others_s = others_s;
        bd
    }

    /// Frame latency, seconds.
    pub fn latency_s(&self, spec: &WorkloadSpec) -> f64 {
        self.breakdown(spec).total_s()
    }

    /// Frames per second.
    pub fn fps(&self, spec: &WorkloadSpec) -> f64 {
        1.0 / self.latency_s(spec)
    }
}

/// The GEMM reduction dimension the point MLP runs at (reconstructed
/// from the per-point MAC count; see [`WorkloadSpec::mlp_gemm_k`]).
fn gemm_k_for(spec: &WorkloadSpec, stage: Stage) -> usize {
    match stage {
        Stage::Coarse => (spec.mlp_gemm_k() / 4).max(8),
        Stage::Focused => spec.mlp_gemm_k(),
    }
}

impl WorkloadSpec {
    /// Approximate hidden width of the point MLP, recovered from the
    /// per-point MAC count (the dominant term is `hidden²`).
    pub fn mlp_gemm_k(&self) -> usize {
        ((self.mlp_macs_per_point as f64).sqrt() * 0.7) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 2 profiling workload: vanilla generalizable NeRF
    /// (ray transformer), 10 source views, 196 points per ray.
    fn fig2_spec(w: u32, h: u32) -> WorkloadSpec {
        WorkloadSpec::ibrnet_default(w, h, 10, 196)
    }

    #[test]
    fn rtx_cannot_hit_realtime_on_vanilla() {
        // Paper Sec. 2.3: ≤ 0.249 FPS on the 800×800 workload.
        let gpu = GpuModel::rtx_2080ti();
        let fps = gpu.fps(&fig2_spec(800, 800));
        assert!(fps <= 0.249, "fps = {fps}");
        assert!(fps > 0.01, "model unreasonably slow: {fps}");
    }

    #[test]
    fn tx2_much_slower_than_rtx() {
        let spec = fig2_spec(800, 800);
        let rtx = GpuModel::rtx_2080ti().latency_s(&spec);
        let tx2 = GpuModel::jetson_tx2().latency_s(&spec);
        let ratio = tx2 / rtx;
        assert!(
            (5.0..200.0).contains(&ratio),
            "TX2/RTX latency ratio = {ratio}"
        );
    }

    #[test]
    fn acquire_features_is_major_component() {
        // Fig. 2: feature acquisition is a dominant bar.
        let gpu = GpuModel::rtx_2080ti();
        let bd = gpu.breakdown(&fig2_spec(1008, 756));
        assert!(
            bd.acquire_s / bd.total_s() > 0.25,
            "acquire share = {}",
            bd.acquire_s / bd.total_s()
        );
    }

    #[test]
    fn ray_transformer_time_share_exceeds_flops_share() {
        // Sec. 2.3: 44.1% of DNN time from 13.8% of FLOPs.
        let gpu = GpuModel::rtx_2080ti();
        let spec = fig2_spec(1008, 756);
        let bd = gpu.breakdown(&spec);
        let time_share = bd.ray_module_dnn_share();
        let ray_flops = 2.0 * spec.ray_macs_total(Stage::Focused) as f64;
        let mlp_flops = 2.0 * spec.mlp_macs(Stage::Focused) as f64;
        let flops_share = ray_flops / (ray_flops + mlp_flops);
        assert!(
            time_share > 2.0 * flops_share,
            "time share {time_share:.3} vs flops share {flops_share:.3}"
        );
        assert!(
            (0.25..0.75).contains(&time_share),
            "time share = {time_share:.3} (paper: 0.441)"
        );
    }

    #[test]
    fn mixer_has_no_attention_penalty() {
        let gpu = GpuModel::rtx_2080ti();
        let mut mixer_spec = WorkloadSpec::gen_nerf_default(400, 400, 6, 64);
        mixer_spec.n_coarse = 0; // isolate the ray-module effect
        let mut attn_spec = mixer_spec;
        attn_spec.ray_module = RayModuleKind::Transformer;
        attn_spec.ray_macs_quadratic = 2.0 * 8.0;
        attn_spec.ray_macs_linear = 4.0 * 16.0 * 8.0;
        let bd_mixer = gpu.breakdown(&mixer_spec);
        let bd_attn = gpu.breakdown(&attn_spec);
        // Per-FLOP, the mixer executes more efficiently.
        let mixer_eff = 2.0 * mixer_spec.ray_macs_total(Stage::Focused) as f64
            / bd_mixer.ray_module_s.max(1e-12);
        let attn_eff =
            2.0 * attn_spec.ray_macs_total(Stage::Focused) as f64 / bd_attn.ray_module_s.max(1e-12);
        assert!(mixer_eff > attn_eff, "mixer {mixer_eff} vs attn {attn_eff}");
    }

    #[test]
    fn divergence_penalizes_coarse_then_focus_on_gpu() {
        let gpu = GpuModel::rtx_2080ti();
        let with_ctf = WorkloadSpec::gen_nerf_default(400, 400, 6, 64);
        let mut uniform = with_ctf;
        uniform.n_coarse = 0;
        // Same focused work, but non-uniform sampling diverges warps.
        assert!(gpu.breakdown(&with_ctf).mlp_s > gpu.breakdown(&uniform).mlp_s);
    }

    #[test]
    fn latency_scales_with_resolution() {
        let gpu = GpuModel::rtx_2080ti();
        let small = gpu.latency_s(&fig2_spec(400, 400));
        let large = gpu.latency_s(&fig2_spec(800, 800));
        assert!(large > 2.0 * small, "small={small} large={large}");
    }

    #[test]
    fn spec_table_matches_paper_tab4() {
        let rtx = GpuModel::rtx_2080ti();
        assert_eq!(rtx.sram_mb, 29.5);
        assert_eq!(rtx.area_mm2, 754.0);
        assert_eq!(rtx.power_w, 250.0);
        let tx2 = GpuModel::jetson_tx2();
        assert_eq!(tx2.sram_mb, 2.5);
        assert_eq!(tx2.area_mm2, 350.0);
        assert_eq!(tx2.power_w, 10.0);
    }

    #[test]
    fn gemm_efficiency_monotone_in_k() {
        let gpu = GpuModel::rtx_2080ti();
        assert!(gpu.gemm_efficiency(16) < gpu.gemm_efficiency(128));
        assert!(gpu.gemm_efficiency(2048) <= 0.35);
        assert!(gpu.gemm_efficiency(1) >= 0.018);
    }
}
