//! The workload scheduler: greedy 3D-point-patch partition (paper
//! Sec. 4.3, Fig. 5).
//!
//! The scheduler walks the `H × W × D` workload cube from the top-left
//! of the near plane, and for each unassigned region greedily picks the
//! patch-shape candidate `δh × δw × δd` whose frusta project to the
//! smallest total area on the source views *per contained point* — the
//! area calculator's memory-traffic estimate — subject to the
//! prefetch-buffer capacity. Two constraints from the paper:
//!
//! 1. patches at the same `(h, w)` but different depth share the same
//!    shape (eases color accumulation in Step 5), and
//! 2. no patch's fetch footprint may exceed the prefetch buffer.

#![allow(clippy::too_many_arguments)] // geometric helpers take coordinate bundles

use gen_nerf_geometry::epipolar::{convex_hull, polygon_area};
use gen_nerf_geometry::{Camera, Frustum, Intrinsics, Pose, Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// The camera arrangement a frame is rendered under.
#[derive(Debug, Clone)]
pub struct CameraRig {
    /// The user's novel view.
    pub novel: Camera,
    /// Source views holding the scene features.
    pub sources: Vec<Camera>,
    /// Near depth bound along novel rays.
    pub t_near: f32,
    /// Far depth bound along novel rays.
    pub t_far: f32,
}

impl CameraRig {
    /// A standard object-orbit rig (NeRF-Synthetic-like): the novel
    /// camera at distance 4.2 from the origin, `n_sources` source
    /// cameras on a ±60° arc around the novel azimuth — generalizable
    /// NeRFs condition on the source views *closest* to the user's
    /// view direction (Sec. 3.2), so the rig mirrors that selection.
    ///
    /// # Panics
    ///
    /// Panics if `n_sources == 0`.
    pub fn orbit(width: u32, height: u32, n_sources: usize) -> Self {
        assert!(n_sources > 0, "need at least one source view");
        let intr = Intrinsics::from_fov(width, height, 0.69);
        // Novel camera at azimuth 0.
        let novel = Camera::new(
            intr,
            Pose::look_at(Vec3::new(4.2, 1.6, 0.0), Vec3::ZERO, Vec3::Y),
        );
        let arc = std::f32::consts::FRAC_PI_3; // ±60°
        let sources = (0..n_sources)
            .map(|i| {
                let f = if n_sources > 1 {
                    i as f32 / (n_sources - 1) as f32
                } else {
                    0.5
                };
                let phi = (f - 0.5) * 2.0 * arc;
                let eye = Vec3::new(4.0 * phi.cos(), 1.2 + 0.4 * (i % 2) as f32, 4.0 * phi.sin());
                Camera::new(intr, Pose::look_at(eye, Vec3::ZERO, Vec3::Y))
            })
            .collect();
        Self {
            novel,
            sources,
            t_near: 2.2,
            t_far: 6.2,
        }
    }

    /// Depth (ray parameter) range of sample-index slice `[d0, d0+dd)`
    /// out of `n_depth` samples.
    pub fn depth_slice(&self, d0: u32, dd: u32, n_depth: u32) -> (f32, f32) {
        let span = self.t_far - self.t_near;
        let lo = self.t_near + span * d0 as f32 / n_depth as f32;
        let hi = self.t_near + span * (d0 + dd) as f32 / n_depth as f32;
        (lo, hi.max(lo + 1e-4))
    }
}

/// A patch-shape candidate (pixels × pixels × depth samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PatchShape {
    /// Tile height in pixels (δh).
    pub dh: u32,
    /// Tile width in pixels (δw).
    pub dw: u32,
    /// Depth samples per slice (δd).
    pub dd: u32,
}

/// One scheduled point patch with its per-view fetch footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Patch {
    /// Tile origin column.
    pub u0: u32,
    /// Tile origin row.
    pub v0: u32,
    /// Tile width (clamped at the image edge).
    pub du: u32,
    /// Tile height (clamped at the image edge).
    pub dv: u32,
    /// First depth-sample index.
    pub d0: u32,
    /// Depth samples in this slice (clamped at `n_depth`).
    pub dd: u32,
    /// Estimated texels fetched per source view (hull area, dilated for
    /// bilinear taps, clipped to the source image).
    pub texels_per_view: Vec<u64>,
    /// Per-view hull bounding boxes `(x0, y0, x1, y1)` in source texels
    /// (clipped), used to synthesize DRAM requests.
    pub bbox_per_view: Vec<(u32, u32, u32, u32)>,
}

impl Patch {
    /// Sampled points in the patch.
    pub fn points(&self) -> u64 {
        self.du as u64 * self.dv as u64 * self.dd as u64
    }

    /// Total estimated texels over all views.
    pub fn total_texels(&self) -> u64 {
        self.texels_per_view.iter().sum()
    }
}

/// Footprint estimate of one frustum on one source view.
#[derive(Debug, Clone, Copy)]
struct Footprint {
    texels: u64,
    bbox: (u32, u32, u32, u32),
}

/// The greedy 3D-point-patch scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Shape candidates (`M` predefined shapes, Fig. 5 (b)).
    pub candidates: Vec<PatchShape>,
    /// Prefetch-buffer capacity in bytes (constraint 2).
    pub buffer_bytes: u64,
}

impl Scheduler {
    /// The default candidate set: square and elongated tiles crossed
    /// with several depth granularities.
    pub fn new(buffer_bytes: u64) -> Self {
        let tiles: [(u32, u32); 13] = [
            (1, 1),
            (2, 2),
            (4, 4),
            (4, 2),
            (2, 4),
            (8, 4),
            (4, 8),
            (8, 8),
            (16, 16),
            (32, 32),
            (16, 8),
            (8, 16),
            (32, 8),
        ];
        let depths = [4u32, 8, 16, 32, 64, 128, 256];
        let mut candidates = Vec::new();
        for (dh, dw) in tiles {
            for dd in depths {
                candidates.push(PatchShape { dh, dw, dd });
            }
        }
        Self {
            candidates,
            buffer_bytes,
        }
    }

    /// Estimates the fetch footprint of a tile/depth-slice frustum on
    /// one source view.
    fn footprint(
        rig: &CameraRig,
        u0: u32,
        v0: u32,
        du: u32,
        dv: u32,
        t_lo: f32,
        t_hi: f32,
        source: &Camera,
    ) -> Footprint {
        let frustum = Frustum::new(
            Vec2::new(u0 as f32, v0 as f32),
            Vec2::new((u0 + du) as f32, (v0 + dv) as f32),
            t_lo.max(1e-3),
            t_hi,
        );
        let projections: Vec<Vec2> = frustum
            .world_corners(&rig.novel)
            .iter()
            .filter_map(|&p| source.project(p))
            .collect();
        if projections.len() < 3 {
            return Footprint {
                texels: 0,
                bbox: (0, 0, 0, 0),
            };
        }
        let hull = convex_hull(&projections);
        let area = polygon_area(&hull);
        let perimeter: f32 = (0..hull.len())
            .map(|i| (hull[(i + 1) % hull.len()] - hull[i]).length())
            .sum();
        // Dilate by one texel on each side for the bilinear taps.
        let dilated = area + perimeter + 4.0;

        // Clip the bounding box to the source image; scale the texel
        // estimate by the visible fraction of the bbox.
        let (sw, sh) = (
            source.intrinsics.width as f32,
            source.intrinsics.height as f32,
        );
        let mut min = hull[0];
        let mut max = hull[0];
        for &p in &hull {
            min = min.min(p);
            max = max.max(p);
        }
        let bbox_area = ((max.x - min.x) * (max.y - min.y)).max(1e-6);
        let cx0 = min.x.max(0.0);
        let cy0 = min.y.max(0.0);
        let cx1 = max.x.min(sw);
        let cy1 = max.y.min(sh);
        if cx1 <= cx0 || cy1 <= cy0 {
            return Footprint {
                texels: 0,
                bbox: (0, 0, 0, 0),
            };
        }
        let visible = ((cx1 - cx0) * (cy1 - cy0)) / bbox_area;
        let texels = (dilated * visible.clamp(0.0, 1.0)).ceil() as u64;
        Footprint {
            texels,
            bbox: (cx0 as u32, cy0 as u32, cx1.ceil() as u32, cy1.ceil() as u32),
        }
    }

    /// Total texels over all source views for one slice.
    fn slice_texels(
        rig: &CameraRig,
        u0: u32,
        v0: u32,
        du: u32,
        dv: u32,
        d0: u32,
        dd: u32,
        n_depth: u32,
    ) -> u64 {
        let (t_lo, t_hi) = rig.depth_slice(d0, dd, n_depth);
        rig.sources
            .iter()
            .map(|s| Self::footprint(rig, u0, v0, du, dv, t_lo, t_hi, s).texels)
            .sum()
    }

    /// Scores a candidate at a tile over the *whole* depth column:
    /// returns bytes-per-point, or `None` when any slice would exceed
    /// the buffer.
    fn score(
        &self,
        rig: &CameraRig,
        u0: u32,
        v0: u32,
        du: u32,
        dv: u32,
        dd_shape: u32,
        n_depth: u32,
        texel_bytes: u64,
    ) -> Option<f64> {
        let mut total_bytes = 0u64;
        let mut d0 = 0u32;
        while d0 < n_depth {
            let dd = dd_shape.min(n_depth - d0);
            let texels = Self::slice_texels(rig, u0, v0, du, dv, d0, dd, n_depth);
            let bytes = texels * texel_bytes;
            if bytes > self.buffer_bytes {
                return None;
            }
            total_bytes += bytes;
            d0 += dd;
        }
        let points = (du as u64 * dv as u64 * n_depth as u64).max(1);
        Some(total_bytes as f64 / points as f64)
    }

    /// Emits the full depth column of a tile with slice depth
    /// `dd_shape`.
    fn emit_column(
        rig: &CameraRig,
        patches: &mut Vec<Patch>,
        u0: u32,
        v0: u32,
        du: u32,
        dv: u32,
        dd_shape: u32,
        n_depth: u32,
    ) {
        let mut d0 = 0u32;
        while d0 < n_depth {
            let dd = dd_shape.min(n_depth - d0);
            let (t_lo, t_hi) = rig.depth_slice(d0, dd, n_depth);
            let mut texels_per_view = Vec::with_capacity(rig.sources.len());
            let mut bbox_per_view = Vec::with_capacity(rig.sources.len());
            for source in &rig.sources {
                let fp = Self::footprint(rig, u0, v0, du, dv, t_lo, t_hi, source);
                texels_per_view.push(fp.texels);
                bbox_per_view.push(fp.bbox);
            }
            patches.push(Patch {
                u0,
                v0,
                du,
                dv,
                d0,
                dd,
                texels_per_view,
                bbox_per_view,
            });
            d0 += dd;
        }
    }

    /// Partitions the whole `height × width × n_depth` workload cube.
    ///
    /// Returns the patch queue in processing order (top-left to
    /// bottom-right, near to far within each tile, matching the
    /// top-left sequencer + mask bitmap of Fig. 7).
    ///
    /// # Panics
    ///
    /// Panics when not even a 1×1 pixel column fits the buffer.
    pub fn partition(
        &self,
        rig: &CameraRig,
        width: u32,
        height: u32,
        n_depth: u32,
        texel_bytes: u64,
    ) -> Vec<Patch> {
        let mut patches = Vec::new();
        // Mask bitmap over pixels (tracks assigned tiles).
        let mut assigned = vec![false; (width * height) as usize];
        let at = |a: &Vec<bool>, x: u32, y: u32| a[(y * width + x) as usize];
        let mut v0 = 0u32;
        while v0 < height {
            let mut u0 = 0u32;
            while u0 < width {
                if at(&assigned, u0, v0) {
                    u0 += 1;
                    continue;
                }
                // Free extent at (u0, v0): how far right/down the
                // unassigned rectangle can reach.
                let mut free_w = 0u32;
                while u0 + free_w < width && !at(&assigned, u0 + free_w, v0) {
                    free_w += 1;
                }
                let mut free_h = 0u32;
                while v0 + free_h < height && !at(&assigned, u0, v0 + free_h) {
                    free_h += 1;
                }

                // Greedy candidate selection (area calculator +
                // comparator), clamping shapes to the free rectangle.
                let mut best: Option<(f64, (u32, u32, u32))> = None;
                let mut seen = std::collections::HashSet::new();
                for &shape in &self.candidates {
                    let du = shape.dw.min(free_w);
                    let dv = shape.dh.min(free_h);
                    let dd = shape.dd.min(n_depth);
                    if !seen.insert((du, dv, dd)) {
                        continue;
                    }
                    // The clamped rectangle must itself be fully free
                    // (earlier taller tiles can intrude from above).
                    if !rect_free(&assigned, width, u0, v0, du, dv) {
                        continue;
                    }
                    if let Some(score) = self.score(rig, u0, v0, du, dv, dd, n_depth, texel_bytes) {
                        if best.is_none_or(|(b, _)| score < b) {
                            best = Some((score, (du, dv, dd)));
                        }
                    }
                }
                // Fall back to a single full-depth pixel column (then a
                // per-sample column) if no candidate fits.
                let (du, dv, dd) = match best {
                    Some((_, s)) => s,
                    None if self
                        .score(rig, u0, v0, 1, 1, n_depth, n_depth, texel_bytes)
                        .is_some() =>
                    {
                        (1, 1, n_depth)
                    }
                    None => {
                        let ok = self
                            .score(rig, u0, v0, 1, 1, 1, n_depth, texel_bytes)
                            .is_some();
                        assert!(
                            ok,
                            "even a 1-pixel patch exceeds the {}-byte prefetch buffer",
                            self.buffer_bytes
                        );
                        (1, 1, 1)
                    }
                };
                Self::emit_column(rig, &mut patches, u0, v0, du, dv, dd, n_depth);
                for y in v0..v0 + dv {
                    for x in u0..u0 + du {
                        assigned[(y * width + x) as usize] = true;
                    }
                }
                u0 += du;
            }
            v0 += 1;
        }
        patches
    }

    /// Fixed-shape partition for the Fig. 12 Var-1 baseline: constant
    /// `{k, k, D}` patches (full depth, no adaptive slicing) with `k`
    /// the largest tile whose footprint fits the buffer at the probed
    /// tiles (image center and corners).
    pub fn partition_fixed(
        &self,
        rig: &CameraRig,
        width: u32,
        height: u32,
        n_depth: u32,
        texel_bytes: u64,
    ) -> Vec<Patch> {
        let mut k = 64u32.min(width).min(height);
        'outer: while k > 1 {
            let probes = [
                (
                    (width / 2).saturating_sub(k / 2),
                    (height / 2).saturating_sub(k / 2),
                ),
                (0, 0),
                (width.saturating_sub(k), 0),
                (0, height.saturating_sub(k)),
                (width.saturating_sub(k), height.saturating_sub(k)),
            ];
            for (u0, v0) in probes {
                let du = k.min(width - u0);
                let dv = k.min(height - v0);
                let texels = Self::slice_texels(rig, u0, v0, du, dv, 0, n_depth, n_depth);
                if texels * texel_bytes > self.buffer_bytes {
                    k /= 2;
                    continue 'outer;
                }
            }
            break;
        }
        let mut patches = Vec::new();
        let mut v0 = 0u32;
        while v0 < height {
            let dv = k.min(height - v0);
            let mut u0 = 0u32;
            while u0 < width {
                let du = k.min(width - u0);
                Self::emit_column(rig, &mut patches, u0, v0, du, dv, n_depth, n_depth);
                u0 += du;
            }
            v0 += dv;
        }
        patches
    }
}

/// Whether the `du × dv` rectangle at `(u0, v0)` is entirely
/// unassigned.
fn rect_free(assigned: &[bool], width: u32, u0: u32, v0: u32, du: u32, dv: u32) -> bool {
    for y in v0..v0 + dv {
        for x in u0..u0 + du {
            if assigned[(y * width + x) as usize] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig(n: usize) -> CameraRig {
        CameraRig::orbit(64, 64, n)
    }

    /// A buffer small enough that the capacity constraint binds at the
    /// 64×64 test scale (mirrors the 256 KB budget at full resolution).
    const TIGHT_BUFFER: u64 = 16 * 1024;

    #[test]
    fn orbit_rig_sources_see_origin() {
        let r = rig(6);
        for s in &r.sources {
            let uv = s.project(Vec3::ZERO).expect("origin visible");
            assert!(s.intrinsics.contains(uv), "origin out of frame: {uv:?}");
        }
    }

    #[test]
    fn depth_slice_spans_range() {
        let r = rig(2);
        let (lo, hi) = r.depth_slice(0, 64, 64);
        assert!((lo - r.t_near).abs() < 1e-5);
        assert!((hi - r.t_far).abs() < 1e-5);
        let (lo2, hi2) = r.depth_slice(16, 16, 64);
        assert!(lo2 > lo && hi2 < hi);
    }

    #[test]
    fn partition_covers_every_pixel_once() {
        let sched = Scheduler::new(TIGHT_BUFFER);
        let r = rig(4);
        let (w, h, d) = (64u32, 64u32, 32u32);
        let patches = sched.partition(&r, w, h, d, 12);
        let mut coverage = vec![0u32; (w * h) as usize];
        for p in &patches {
            if p.d0 == 0 {
                for y in p.v0..p.v0 + p.dv {
                    for x in p.u0..p.u0 + p.du {
                        coverage[(y * w + x) as usize] += 1;
                    }
                }
            }
        }
        let bad = coverage.iter().filter(|&&c| c != 1).count();
        assert_eq!(bad, 0, "{bad} pixels covered != once");
    }

    #[test]
    fn partition_covers_every_depth_sample() {
        let sched = Scheduler::new(TIGHT_BUFFER);
        let r = rig(3);
        let patches = sched.partition(&r, 32, 32, 48, 12);
        use std::collections::HashMap;
        let mut per_tile: HashMap<(u32, u32), u32> = HashMap::new();
        for p in &patches {
            *per_tile.entry((p.u0, p.v0)).or_insert(0) += p.dd;
        }
        for (&tile, &total) in &per_tile {
            assert_eq!(total, 48, "tile {tile:?} covers {total} depth samples");
        }
    }

    #[test]
    fn footprints_respect_buffer() {
        let sched = Scheduler::new(TIGHT_BUFFER);
        let r = rig(6);
        let texel_bytes = 12;
        let patches = sched.partition(&r, 64, 64, 64, texel_bytes);
        for p in &patches {
            assert!(
                p.total_texels() * texel_bytes <= TIGHT_BUFFER,
                "patch at ({},{},{}) needs {} bytes",
                p.u0,
                p.v0,
                p.d0,
                p.total_texels() * texel_bytes
            );
        }
    }

    #[test]
    fn same_tile_shares_shape_across_depth() {
        let sched = Scheduler::new(TIGHT_BUFFER);
        let r = rig(4);
        let patches = sched.partition(&r, 48, 48, 64, 12);
        use std::collections::HashMap;
        let mut tile_shapes: HashMap<(u32, u32), (u32, u32)> = HashMap::new();
        for p in &patches {
            let entry = tile_shapes.entry((p.u0, p.v0)).or_insert((p.du, p.dv));
            assert_eq!(*entry, (p.du, p.dv), "tile shape changed across depth");
        }
    }

    #[test]
    fn greedy_beats_fixed_on_bytes_per_point_under_tight_buffer() {
        let sched = Scheduler::new(TIGHT_BUFFER);
        let r = rig(6);
        let (w, h, d, tb) = (64u32, 64u32, 64u32, 12u64);
        let ours = sched.partition(&r, w, h, d, tb);
        let fixed = sched.partition_fixed(&r, w, h, d, tb);
        let bytes =
            |ps: &[Patch]| -> f64 { ps.iter().map(|p| p.total_texels() * tb).sum::<u64>() as f64 };
        let points = |ps: &[Patch]| -> f64 { ps.iter().map(|p| p.points()).sum::<u64>() as f64 };
        let ours_bpp = bytes(&ours) / points(&ours);
        let fixed_bpp = bytes(&fixed) / points(&fixed);
        assert!(
            ours_bpp <= fixed_bpp * 1.05,
            "greedy {ours_bpp:.3} B/pt vs fixed {fixed_bpp:.3} B/pt"
        );
    }

    #[test]
    fn fixed_partition_spans_full_depth() {
        let sched = Scheduler::new(256 * 1024);
        let r = rig(2);
        let patches = sched.partition_fixed(&r, 32, 32, 40, 12);
        assert!(patches.iter().all(|p| p.d0 == 0 && p.dd == 40));
    }

    #[test]
    fn more_views_more_texels() {
        let sched = Scheduler::new(512 * 1024);
        let few = sched.partition(&rig(2), 32, 32, 32, 12);
        let many = sched.partition(&rig(8), 32, 32, 32, 12);
        let t_few: u64 = few.iter().map(Patch::total_texels).sum();
        let t_many: u64 = many.iter().map(Patch::total_texels).sum();
        assert!(t_many > t_few);
    }

    #[test]
    fn patch_points_counts_cube() {
        let p = Patch {
            u0: 0,
            v0: 0,
            du: 8,
            dv: 4,
            d0: 0,
            dd: 16,
            texels_per_view: vec![],
            bbox_per_view: vec![],
        };
        assert_eq!(p.points(), 8 * 4 * 16);
    }
}
