//! PE-pool GEMM timing.
//!
//! Each PE is a `dim × dim` weight-stationary INT8 systolic array. A
//! GEMM of shape `m × k · k × n` is tiled into `⌈m/dim⌉ × ⌈n/dim⌉`
//! output tiles; a tile takes `k + 2·dim` cycles (stream `k` inputs,
//! fill + drain the array). Tiles are distributed over the pool's
//! arrays.

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// Timing model of the PE pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PePool {
    arrays: usize,
    dim: usize,
}

impl PePool {
    /// Builds the pool from an accelerator config.
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        Self {
            arrays: cfg.pe_arrays,
            dim: cfg.pe_array_dim,
        }
    }

    /// Cycles for one `m × k × n` GEMM on the whole pool.
    ///
    /// Zero-sized GEMMs are free.
    pub fn gemm_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let tiles_m = m.div_ceil(self.dim);
        let tiles_n = n.div_ceil(self.dim);
        let tiles = (tiles_m * tiles_n) as u64;
        let cycles_per_tile = (k + 2 * self.dim) as u64;
        let waves = tiles.div_ceil(self.arrays as u64);
        waves * cycles_per_tile
    }

    /// Cycles to execute `macs` multiply–accumulates assuming perfectly
    /// shaped GEMMs (lower bound; used for aggregate workloads where
    /// exact shapes are already folded into a MAC count).
    ///
    /// `efficiency` in `(0, 1]` derates for fill/drain and ragged tiles.
    ///
    /// # Panics
    ///
    /// Panics when `efficiency` is not in `(0, 1]`.
    pub fn mac_cycles(&self, macs: u64, efficiency: f64) -> u64 {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0,1], got {efficiency}"
        );
        let per_cycle = (self.arrays * self.dim * self.dim) as f64 * efficiency;
        (macs as f64 / per_cycle).ceil() as u64
    }

    /// Effective utilization of a single `m × k × n` GEMM: useful MACs
    /// over peak MACs during its execution.
    pub fn gemm_utilization(&self, m: usize, k: usize, n: usize) -> f64 {
        let cycles = self.gemm_cycles(m, k, n);
        if cycles == 0 {
            return 0.0;
        }
        let macs = (m * k * n) as f64;
        let peak = cycles as f64 * (self.arrays * self.dim * self.dim) as f64;
        macs / peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> PePool {
        PePool::new(&AcceleratorConfig::paper())
    }

    #[test]
    fn zero_gemm_is_free() {
        assert_eq!(pool().gemm_cycles(0, 64, 64), 0);
        assert_eq!(pool().gemm_cycles(64, 0, 64), 0);
    }

    #[test]
    fn single_tile_cost_is_k_plus_fill_drain() {
        // One 16×16 output tile with k = 32: 32 + 32 = 64 cycles.
        assert_eq!(pool().gemm_cycles(16, 32, 16), 64);
    }

    #[test]
    fn tiles_parallelize_across_arrays() {
        let p = pool();
        // 40 tiles fit in one wave; 41 tiles need two.
        let one_wave = p.gemm_cycles(16 * 8, 32, 16 * 5); // 40 tiles
        let two_waves = p.gemm_cycles(16 * 8, 32, 16 * 6); // 48 tiles
        assert_eq!(two_waves, 2 * one_wave);
    }

    #[test]
    fn ragged_shapes_round_up() {
        let p = pool();
        assert_eq!(p.gemm_cycles(17, 32, 16), p.gemm_cycles(32, 32, 16));
    }

    #[test]
    fn big_gemm_scales_linearly_in_k() {
        let p = pool();
        let base = p.gemm_cycles(160, 64, 160);
        let double_k = p.gemm_cycles(160, 128, 160);
        // k + 32 per tile: doubling k less than doubles cycles.
        assert!(double_k > base && double_k < 2 * base);
    }

    #[test]
    fn mac_cycles_inverse_to_efficiency() {
        let p = pool();
        let full = p.mac_cycles(10_240_000, 1.0);
        let half = p.mac_cycles(10_240_000, 0.5);
        assert_eq!(full, 1000);
        assert_eq!(half, 2000);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn mac_cycles_rejects_zero_efficiency() {
        let _ = pool().mac_cycles(100, 0.0);
    }

    #[test]
    fn utilization_high_for_large_aligned_gemm() {
        let p = pool();
        let u = p.gemm_utilization(16 * 40, 256, 16);
        assert!(u > 0.8, "utilization = {u}");
    }

    #[test]
    fn utilization_low_for_tiny_gemm() {
        let p = pool();
        let u = p.gemm_utilization(4, 8, 4);
        assert!(u < 0.05, "utilization = {u}");
    }
}
