//! Device-independent description of one rendering workload.
//!
//! A [`WorkloadSpec`] captures everything the hardware models need to
//! cost a frame: resolution, source views, per-ray sample counts for
//! the coarse and focused stages, feature dimensionality and the model
//! cost coefficients (MLP MACs per point; ray-module MACs as a
//! quadratic in the per-ray point count). The algorithm crate builds
//! these from its model configuration; the simulator and the GPU
//! models consume them.

use serde::{Deserialize, Serialize};

/// Which ray module the workload executes per ray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RayModuleKind {
    /// Attention-based ray transformer (IBRNet baseline).
    Transformer,
    /// The proposed MLP-only Ray-Mixer.
    Mixer,
    /// No cross-point module (per-point density projection).
    None,
}

/// One rendering stage (the pipeline of Fig. 8 runs twice: coarse, then
/// focused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Lightweight coarse sampling (few views, scaled channels).
    Coarse,
    /// Focused sampling with the full model.
    Focused,
}

/// A complete frame workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Rendered image width.
    pub width: u32,
    /// Rendered image height.
    pub height: u32,
    /// Source views conditioning the focused stage.
    pub s_views: usize,
    /// Source views used by the coarse stage (`S_c`, paper: 4).
    pub s_coarse: usize,
    /// Coarse samples per ray (`N_c`).
    pub n_coarse: usize,
    /// Average focused samples per ray (`N_f`).
    pub n_focused: usize,
    /// Feature channels per texel (full model).
    pub d_channels: usize,
    /// Channel scale applied to the coarse stage (paper: 0.25).
    pub coarse_channel_scale: f32,
    /// Bytes per feature channel (1 = INT8).
    pub bytes_per_channel: u32,
    /// Bilinear taps per feature fetch.
    pub taps_per_fetch: u32,
    /// MLP multiply–accumulates per sampled point (focused stage).
    pub mlp_macs_per_point: u64,
    /// MLP MACs per point in the coarse stage.
    pub coarse_mlp_macs_per_point: u64,
    /// Ray-module MACs = `quad · n² + lin · n` for an `n`-point ray.
    pub ray_macs_quadratic: f64,
    /// Linear coefficient of the ray-module cost.
    pub ray_macs_linear: f64,
    /// Which ray module runs.
    pub ray_module: RayModuleKind,
}

impl WorkloadSpec {
    /// The canonical Gen-NeRF workload: coarse-then-focus sampling
    /// (`N_c = 16`), Ray-Mixer, `D = 12` INT8 feature channels, model
    /// dimensions matching `gen-nerf`'s default [`ModelConfig`]-derived
    /// cost (hidden 64, `d_σ = 16`).
    ///
    /// [`ModelConfig`]: https://docs.rs/gen-nerf
    pub fn gen_nerf_default(width: u32, height: u32, s_views: usize, n_focused: usize) -> Self {
        let d = 12usize;
        let d_sigma = 16.0;
        Self {
            width,
            height,
            s_views,
            s_coarse: 4.min(s_views),
            n_coarse: 16,
            n_focused,
            d_channels: d,
            coarse_channel_scale: 0.25,
            bytes_per_channel: 1,
            taps_per_fetch: 4,
            mlp_macs_per_point: mlp_macs(d, 48, 16),
            coarse_mlp_macs_per_point: mlp_macs(d / 4, 16, 16),
            // Mixer: n²·dσ (token FC over d columns) + n·dσ² + n·dσ.
            ray_macs_quadratic: d_sigma,
            ray_macs_linear: d_sigma * d_sigma + d_sigma,
            ray_module: RayModuleKind::Mixer,
        }
    }

    /// The IBRNet-baseline workload: single-stage sampling with the ray
    /// transformer (`n_points` per ray, no coarse stage).
    pub fn ibrnet_default(width: u32, height: u32, s_views: usize, n_points: usize) -> Self {
        let d = 12usize;
        let d_sigma = 16.0;
        let dk = 8.0;
        Self {
            width,
            height,
            s_views,
            s_coarse: 0,
            n_coarse: 0,
            n_focused: n_points,
            d_channels: d,
            coarse_channel_scale: 1.0,
            bytes_per_channel: 1,
            taps_per_fetch: 4,
            mlp_macs_per_point: mlp_macs(d, 128, 16),
            coarse_mlp_macs_per_point: 0,
            // Attention: qkᵀ + attn·v ≈ 2·n²·dk, projections 4·n·dσ·dk.
            ray_macs_quadratic: 2.0 * dk,
            ray_macs_linear: 4.0 * d_sigma * dk,
            ray_module: RayModuleKind::Transformer,
        }
    }

    /// Total camera rays.
    pub fn rays(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Sampled points in one stage.
    pub fn points(&self, stage: Stage) -> u64 {
        self.rays()
            * match stage {
                Stage::Coarse => self.n_coarse as u64,
                Stage::Focused => self.n_focused as u64,
            }
    }

    /// Source views used by a stage.
    pub fn views(&self, stage: Stage) -> usize {
        match stage {
            Stage::Coarse => self.s_coarse,
            Stage::Focused => self.s_views,
        }
    }

    /// Feature channels used by a stage.
    pub fn channels(&self, stage: Stage) -> usize {
        match stage {
            Stage::Coarse => {
                ((self.d_channels as f32 * self.coarse_channel_scale).ceil() as usize).max(1)
            }
            Stage::Focused => self.d_channels,
        }
    }

    /// Bytes per texel fetched in a stage (all channels of one texel).
    pub fn texel_bytes(&self, stage: Stage) -> u64 {
        (self.channels(stage) as u64) * self.bytes_per_channel as u64
    }

    /// Per-point gather traffic in a stage on a cache-less device:
    /// `taps × texel_bytes` per (point, view).
    pub fn gather_bytes_per_point_view(&self, stage: Stage) -> u64 {
        self.taps_per_fetch as u64 * self.texel_bytes(stage)
    }

    /// Total nominal gather traffic of a stage (the `H·W·P·S·D` count
    /// of paper Sec. 1) in bytes.
    pub fn nominal_gather_bytes(&self, stage: Stage) -> u64 {
        self.points(stage) * self.views(stage) as u64 * self.gather_bytes_per_point_view(stage)
    }

    /// Total MLP MACs in a stage (point MLP over all sampled points).
    pub fn mlp_macs(&self, stage: Stage) -> u64 {
        match stage {
            Stage::Coarse => self.points(stage) * self.coarse_mlp_macs_per_point,
            Stage::Focused => self.points(stage) * self.mlp_macs_per_point,
        }
    }

    /// Ray-module MACs for one ray with `n` points.
    pub fn ray_macs(&self, n: usize) -> u64 {
        if matches!(self.ray_module, RayModuleKind::None) || n == 0 {
            return 0;
        }
        (self.ray_macs_quadratic * (n * n) as f64 + self.ray_macs_linear * n as f64) as u64
    }

    /// Total ray-module MACs in a stage (one module pass per ray).
    pub fn ray_macs_total(&self, stage: Stage) -> u64 {
        let n = match stage {
            // The coarse stage only needs hitting probabilities, not a
            // contextualized density: no ray module (Sec. 3.2, "super
            // lightweight coarse sampling only to predict the PDF").
            Stage::Coarse => return 0,
            Stage::Focused => self.n_focused,
        };
        self.rays() * self.ray_macs(n)
    }

    /// Total frame MACs (both stages, MLP + ray module).
    pub fn total_macs(&self) -> u64 {
        self.mlp_macs(Stage::Coarse)
            + self.mlp_macs(Stage::Focused)
            + self.ray_macs_total(Stage::Focused)
    }

    /// Total frame FLOPs (2 per MAC).
    pub fn total_flops(&self) -> u64 {
        2 * self.total_macs()
    }

    /// Active stages (coarse stage skipped when `n_coarse == 0`).
    pub fn stages(&self) -> Vec<Stage> {
        if self.n_coarse > 0 {
            vec![Stage::Coarse, Stage::Focused]
        } else {
            vec![Stage::Focused]
        }
    }
}

/// MACs of the point MLP: `(2d+2) → hidden → hidden → (d_sigma + 3)`.
///
/// Input features are the cross-view aggregation statistics (mean `d`,
/// variance `d`, direction similarity, valid fraction).
pub fn mlp_macs(d: usize, hidden: usize, d_sigma: usize) -> u64 {
    let input = 2 * d + 2;
    (input * hidden + hidden * hidden + hidden * (d_sigma + 3)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_nerf_default_is_two_stage() {
        let spec = WorkloadSpec::gen_nerf_default(800, 800, 6, 64);
        assert_eq!(spec.stages(), vec![Stage::Coarse, Stage::Focused]);
        assert_eq!(spec.s_coarse, 4);
        assert_eq!(spec.n_coarse, 16);
    }

    #[test]
    fn ibrnet_default_is_single_stage() {
        let spec = WorkloadSpec::ibrnet_default(800, 800, 10, 196);
        assert_eq!(spec.stages(), vec![Stage::Focused]);
        assert_eq!(spec.ray_module, RayModuleKind::Transformer);
    }

    #[test]
    fn coarse_channels_scaled() {
        let spec = WorkloadSpec::gen_nerf_default(64, 64, 6, 64);
        assert_eq!(spec.channels(Stage::Focused), 12);
        assert_eq!(spec.channels(Stage::Coarse), 3);
    }

    #[test]
    fn nominal_gather_matches_hwpsd() {
        // H·W·P·S·taps·texel_bytes.
        let spec = WorkloadSpec::gen_nerf_default(100, 50, 6, 32);
        let expect = 100 * 50 * 32 * 6 * 4 * 12;
        assert_eq!(spec.nominal_gather_bytes(Stage::Focused), expect);
    }

    #[test]
    fn total_flops_in_paper_ballpark() {
        // Paper Sec. 5.1: the typical 800×800 / 64-point / 6-view
        // workload is 0.328 TFLOPs. Our smaller model lands in the same
        // order of magnitude (documented in EXPERIMENTS.md).
        let spec = WorkloadSpec::gen_nerf_default(800, 800, 6, 64);
        let tflops = spec.total_flops() as f64 / 1e12;
        assert!((0.05..2.0).contains(&tflops), "total = {tflops} TFLOPs");
    }

    #[test]
    fn transformer_costs_more_than_mixer_per_ray() {
        let mixer = WorkloadSpec::gen_nerf_default(64, 64, 6, 64);
        let attn = WorkloadSpec::ibrnet_default(64, 64, 6, 64);
        assert!(attn.ray_macs(64) > mixer.ray_macs(64));
    }

    #[test]
    fn none_module_is_free() {
        let mut spec = WorkloadSpec::gen_nerf_default(64, 64, 6, 64);
        spec.ray_module = RayModuleKind::None;
        assert_eq!(spec.ray_macs(64), 0);
    }

    #[test]
    fn coarse_stage_has_no_ray_module() {
        let spec = WorkloadSpec::gen_nerf_default(64, 64, 6, 64);
        assert_eq!(spec.ray_macs_total(Stage::Coarse), 0);
    }

    #[test]
    fn macs_scale_with_resolution() {
        let small = WorkloadSpec::gen_nerf_default(100, 100, 6, 64);
        let large = WorkloadSpec::gen_nerf_default(200, 200, 6, 64);
        assert_eq!(large.total_macs(), 4 * small.total_macs());
    }

    #[test]
    fn mlp_macs_formula() {
        assert_eq!(mlp_macs(12, 64, 16), (26 * 64 + 64 * 64 + 64 * 19) as u64);
    }
}
