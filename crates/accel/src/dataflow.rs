//! Dataflow ablation variants (paper Fig. 12).

use gen_nerf_dram::FeatureLayout;
use serde::{Deserialize, Serialize};

/// The four configurations benchmarked in Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataflowVariant {
    /// Full Gen-NeRF: greedy 3D-point-patch partition + spatial
    /// interleaving.
    Ours,
    /// No adaptive dataflow: fixed `{k, k, D}` patches sliced along
    /// rows/columns, spatially interleaved storage.
    Var1,
    /// Var-1 plus row-major feature storage (Fig. 6 (a)).
    Var2,
    /// Var-1 plus view-wise interleaved storage.
    Var3,
}

impl DataflowVariant {
    /// All variants in Fig. 12 order.
    pub fn all() -> [DataflowVariant; 4] {
        [
            DataflowVariant::Var1,
            DataflowVariant::Var2,
            DataflowVariant::Var3,
            DataflowVariant::Ours,
        ]
    }

    /// Whether the greedy partition is used (vs the fixed shape).
    pub fn uses_greedy_partition(self) -> bool {
        matches!(self, DataflowVariant::Ours)
    }

    /// The DRAM/SRAM feature layout the variant stores features with.
    pub fn layout(self) -> FeatureLayout {
        match self {
            DataflowVariant::Ours | DataflowVariant::Var1 => FeatureLayout::SpatialInterleave,
            DataflowVariant::Var2 => FeatureLayout::RowMajor,
            DataflowVariant::Var3 => FeatureLayout::ViewInterleave,
        }
    }

    /// Display label matching the figure.
    pub fn label(self) -> &'static str {
        match self {
            DataflowVariant::Ours => "Ours",
            DataflowVariant::Var1 => "Var-1",
            DataflowVariant::Var2 => "Var-2",
            DataflowVariant::Var3 => "Var-3",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_is_greedy_and_interleaved() {
        assert!(DataflowVariant::Ours.uses_greedy_partition());
        assert_eq!(
            DataflowVariant::Ours.layout(),
            FeatureLayout::SpatialInterleave
        );
    }

    #[test]
    fn variants_fix_the_partition() {
        for v in [
            DataflowVariant::Var1,
            DataflowVariant::Var2,
            DataflowVariant::Var3,
        ] {
            assert!(!v.uses_greedy_partition());
        }
    }

    #[test]
    fn layouts_match_figure_12() {
        assert_eq!(
            DataflowVariant::Var1.layout(),
            FeatureLayout::SpatialInterleave
        );
        assert_eq!(DataflowVariant::Var2.layout(), FeatureLayout::RowMajor);
        assert_eq!(
            DataflowVariant::Var3.layout(),
            FeatureLayout::ViewInterleave
        );
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            DataflowVariant::all().iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
