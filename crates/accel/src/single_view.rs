//! Single-source-view dataflow (paper Sec. 4.2).
//!
//! With one source view, Property-2 applies: novel-view pixels on the
//! same line through the novel epipole `e_n` share a single epipolar
//! line in the source view — so processing such a *ray group* together
//! lets every ray reuse one fetched epipolar band. This module
//! implements that grouping and quantifies the reuse.

use crate::scheduler::CameraRig;
use gen_nerf_geometry::epipolar::EpipolarPair;
use gen_nerf_geometry::Vec2;
use serde::{Deserialize, Serialize};

/// A group of novel-view pixels sharing (approximately) one epipolar
/// line on the source view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RayGroup {
    /// Pixels (x, y) in the group.
    pub pixels: Vec<(u32, u32)>,
    /// Texels of the shared epipolar band on the source view
    /// (line length × dilated width, clipped to the source image).
    pub band_texels: u64,
}

/// Result of grouping a frame's rays for the single-view dataflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleViewSchedule {
    /// Ray groups, one per epipolar line bucket.
    pub groups: Vec<RayGroup>,
    /// Total texels fetched with grouping (one band per group).
    pub grouped_texels: u64,
    /// Total texels fetched without grouping (one band per *ray*).
    pub ungrouped_texels: u64,
}

impl SingleViewSchedule {
    /// Scene-feature reuse factor achieved by the grouping.
    pub fn reuse_factor(&self) -> f64 {
        if self.grouped_texels == 0 {
            1.0
        } else {
            self.ungrouped_texels as f64 / self.grouped_texels as f64
        }
    }
}

/// Groups the frame's pixels into `n_groups` buckets by the angle of
/// the line from the novel epipole through each pixel, and estimates
/// the per-group epipolar-band footprint on the (single) source view.
///
/// When the epipole projects behind the novel camera (no finite
/// epipole), rays are bucketed by the *direction* of their epipolar
/// lines instead, which Property-2 still makes consistent.
///
/// # Panics
///
/// Panics when the rig has no source view or `n_groups == 0`.
pub fn schedule_single_view(rig: &CameraRig, n_groups: usize) -> SingleViewSchedule {
    assert!(!rig.sources.is_empty(), "need a source view");
    assert!(n_groups > 0, "need at least one group");
    let source = &rig.sources[0];
    let pair = EpipolarPair::new(&rig.novel, source);
    let (w, h) = (rig.novel.intrinsics.width, rig.novel.intrinsics.height);

    // Bucket pixels by epipolar-line angle.
    let mut groups: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_groups];
    for y in 0..h {
        for x in 0..w {
            let angle = match pair.epipole_novel {
                Some(e_n) => {
                    let d = Vec2::new(x as f32 + 0.5 - e_n.x, y as f32 + 0.5 - e_n.y);
                    d.y.atan2(d.x)
                }
                None => match pair.epipolar_line_for_pixel(x as f32 + 0.5, y as f32 + 0.5) {
                    Some(line) => {
                        let d = line.direction();
                        d.y.atan2(d.x)
                    }
                    None => 0.0,
                },
            };
            // Fold to [0, π) — a line and its opposite direction are the
            // same group.
            let folded = (angle + std::f32::consts::PI) % std::f32::consts::PI;
            let idx = ((folded / std::f32::consts::PI) * n_groups as f32) as usize;
            groups[idx.min(n_groups - 1)].push((x, y));
        }
    }

    // Per-ray band estimate: the projected segment of [t_near, t_far].
    let band_width = 3.0f32; // dilated width in texels (bilinear + jitter)
    let per_ray_band = |x: u32, y: u32| -> u64 {
        let ray = rig.novel.pixel_ray(x as f32 + 0.5, y as f32 + 0.5);
        let a = source.project(ray.at(rig.t_near));
        let b = source.project(ray.at(rig.t_far));
        match (a, b) {
            (Some(a), Some(b)) => {
                let len = clip_length(a, b, source.intrinsics.width, source.intrinsics.height);
                (len * band_width).ceil() as u64
            }
            _ => 0,
        }
    };

    let mut out_groups = Vec::with_capacity(n_groups);
    let mut grouped = 0u64;
    let mut ungrouped = 0u64;
    for pixels in groups.into_iter().filter(|g| !g.is_empty()) {
        // The group's shared band: the maximum single-ray band within
        // the group (all rays' segments lie on the same epipolar line,
        // so the union is bounded by the longest plus slack).
        let mut band = 0u64;
        for &(x, y) in &pixels {
            let b = per_ray_band(x, y);
            ungrouped += b;
            band = band.max(b);
        }
        // Slack for the angular extent the bucket spans.
        let band = band + (pixels.len() as f64).sqrt() as u64 * band_width as u64;
        grouped += band;
        out_groups.push(RayGroup {
            pixels,
            band_texels: band,
        });
    }
    SingleViewSchedule {
        groups: out_groups,
        grouped_texels: grouped,
        ungrouped_texels: ungrouped,
    }
}

/// Length of segment `a-b` clipped to the `[0,w]×[0,h]` rectangle.
fn clip_length(a: Vec2, b: Vec2, w: u32, h: u32) -> f32 {
    // Liang–Barsky.
    let (mut t0, mut t1) = (0.0f32, 1.0f32);
    let d = b - a;
    let checks = [
        (-d.x, a.x),
        (d.x, w as f32 - a.x),
        (-d.y, a.y),
        (d.y, h as f32 - a.y),
    ];
    for (p, q) in checks {
        if p.abs() < 1e-9 {
            if q < 0.0 {
                return 0.0;
            }
            continue;
        }
        let r = q / p;
        if p < 0.0 {
            t0 = t0.max(r);
        } else {
            t1 = t1.min(r);
        }
        if t0 > t1 {
            return 0.0;
        }
    }
    d.length() * (t1 - t0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> CameraRig {
        CameraRig::orbit(64, 64, 1)
    }

    #[test]
    fn every_pixel_grouped_exactly_once() {
        let s = schedule_single_view(&rig(), 32);
        let total: usize = s.groups.iter().map(|g| g.pixels.len()).sum();
        assert_eq!(total, 64 * 64);
    }

    #[test]
    fn grouping_achieves_reuse() {
        // Property-2 payoff: fetching one band per group beats one band
        // per ray by a large factor.
        let s = schedule_single_view(&rig(), 64);
        assert!(
            s.reuse_factor() > 5.0,
            "reuse factor only {:.1}",
            s.reuse_factor()
        );
    }

    #[test]
    fn more_groups_less_reuse() {
        // Finer buckets → fewer rays share a band → less reuse.
        let coarse = schedule_single_view(&rig(), 16);
        let fine = schedule_single_view(&rig(), 256);
        assert!(coarse.reuse_factor() >= fine.reuse_factor() * 0.9);
    }

    #[test]
    fn group_pixels_share_epipolar_line() {
        // Verify Property-2 on an actual group: the epipolar lines of
        // pixels in one group are mutually close.
        let r = rig();
        let s = schedule_single_view(&r, 180);
        let pair = EpipolarPair::new(&r.novel, &r.sources[0]);
        let group = s
            .groups
            .iter()
            .max_by_key(|g| g.pixels.len())
            .expect("nonempty schedule");
        let probe = Vec2::new(32.0, 32.0);
        let lines: Vec<_> = group
            .pixels
            .iter()
            .step_by((group.pixels.len() / 8).max(1))
            .filter_map(|&(x, y)| pair.epipolar_line_for_pixel(x as f32 + 0.5, y as f32 + 0.5))
            .collect();
        for pair_of in lines.windows(2) {
            let d = pair_of[0].dissimilarity(&pair_of[1], probe);
            assert!(d < 8.0, "lines in one group diverge by {d}");
        }
    }

    #[test]
    fn clip_length_basic() {
        assert!(
            (clip_length(Vec2::new(-10.0, 5.0), Vec2::new(20.0, 5.0), 10, 10) - 10.0).abs() < 1e-4
        );
        assert_eq!(
            clip_length(Vec2::new(-5.0, -5.0), Vec2::new(-1.0, -1.0), 10, 10),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "source view")]
    fn rejects_empty_rig() {
        let mut r = rig();
        r.sources.clear();
        let _ = schedule_single_view(&r, 8);
    }
}
