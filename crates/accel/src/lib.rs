//! Cycle-level model of the Gen-NeRF accelerator (paper Sec. 4–5).
//!
//! The hardware side of the co-design, built from the components of
//! Fig. 7:
//!
//! * [`config`] — the 28 nm / 1 GHz configuration of Sec. 5.1 (40 16×16
//!   INT8 systolic arrays, 256 KB local buffer, 8 KB weight buffer,
//!   2 × 256 KB prefetch double buffer, LPDDR4-2400),
//! * [`pe`] — PE-pool GEMM timing (systolic fill/drain, tiling),
//! * [`scheduler`] — the workload scheduler: greedy 3D-point-patch
//!   partition driven by epipolar projected-area estimates (Fig. 5),
//! * [`workload`] — a device-independent description of one rendering
//!   workload (resolution, views, samples, model cost coefficients),
//! * [`simulator`] — the pipeline simulator: per-patch DRAM prefetch
//!   (via `gen-nerf-dram`) overlapped with PE compute through the
//!   double buffer; reports latency breakdown, PE utilization and FPS,
//! * [`dataflow`] — the Fig. 12 ablation variants (Var-1/2/3),
//! * [`gpu`] — roofline models of RTX 2080Ti and Jetson TX2 calibrated
//!   to the paper's profiled numbers (Fig. 2, Tab. 4),
//! * [`icarus`] — the ICARUS comparison point (reported numbers),
//! * [`area`] — the analytic 28 nm area/power model behind Tab. 1.
//!
//! # Example
//!
//! ```
//! use gen_nerf_accel::config::AcceleratorConfig;
//! use gen_nerf_accel::simulator::Simulator;
//! use gen_nerf_accel::workload::WorkloadSpec;
//!
//! let cfg = AcceleratorConfig::paper();
//! let spec = WorkloadSpec::gen_nerf_default(128, 128, 6, 64);
//! let sim = Simulator::new(cfg);
//! let report = sim.simulate(&spec);
//! assert!(report.fps > 0.0);
//! ```

pub mod area;
pub mod config;
pub mod dataflow;
pub mod energy;
pub mod gpu;
pub mod icarus;
pub mod pe;
pub mod scheduler;
pub mod simulator;
pub mod single_view;
pub mod workload;

pub use config::AcceleratorConfig;
pub use dataflow::DataflowVariant;
pub use simulator::{SimReport, Simulator};
pub use workload::WorkloadSpec;
