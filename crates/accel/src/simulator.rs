//! The Gen-NeRF accelerator pipeline simulator.
//!
//! Models the execution flow of Fig. 7/8: the workload scheduler
//! partitions the frame into point patches; for each patch, one half of
//! the prefetch double buffer loads scene features from DRAM while the
//! PE pool computes on the previously loaded patch. Per-stage cycle
//! counts follow
//!
//! `T_stage = data₀ + Σᵢ max(dataᵢ₊₁, computeᵢ) + compute_last`,
//!
//! the standard double-buffered pipeline bound. PE utilization is the
//! fraction of total cycles the PE pool computes — the Fig. 12 metric.
//!
//! Per-patch costs (DRAM prefetch service, PE/PPU/SFU cycles) are
//! mutually independent — each prefetch starts from cold row buffers,
//! see [`Simulator::simulate_with_rig`]'s internals — so the per-patch
//! loop fans out across host threads via [`gen_nerf_parallel`]. The
//! pipeline recurrence that chains slot latencies stays sequential and
//! consumes the per-patch results in patch order, keeping reports
//! bit-for-bit identical for any `GEN_NERF_THREADS` setting.

use crate::config::AcceleratorConfig;
use crate::dataflow::DataflowVariant;
use crate::pe::PePool;
use crate::scheduler::{CameraRig, Patch, Scheduler};
use crate::workload::{Stage, WorkloadSpec};
use gen_nerf_dram::{Dram, FeatureRequest};
use serde::{Deserialize, Serialize};

/// Maximum synthetic DRAM requests issued per (patch, view); larger
/// footprints are sampled and scaled (documented approximation).
const REQUEST_CAP: usize = 256;

/// Preprocessing-unit throughput: points sampled + projected +
/// bilinearly interpolated per cycle (the PPU's projector/interpolator
/// arrays of Fig. 7 are sized to keep ahead of the PE pool).
const PPU_POINTS_PER_CYCLE: u64 = 8;

/// Special-function-unit throughput: per-point exponentials +
/// accumulations per cycle (one PE line, Sec. 4.5).
const SFU_POINTS_PER_CYCLE: u64 = 16;

/// Workload-scheduler cost per emitted patch: candidate frusta are
/// projected by the vertex projector's MAC array while earlier patches
/// execute; ~8 corners × a few MACs per candidate, pipelined.
const SCHEDULER_CYCLES_PER_PATCH: u64 = 96;

/// Per-stage simulation outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Cycles spent in the stage.
    pub total_cycles: u64,
    /// Sum of per-patch DRAM prefetch cycles.
    pub data_cycles: u64,
    /// Sum of per-patch PE compute cycles.
    pub compute_cycles: u64,
    /// Sum of per-patch preprocessing-unit cycles (sampling, projection,
    /// bilinear interpolation).
    pub ppu_cycles: u64,
    /// Sum of per-patch special-function-unit cycles (exp/accumulate).
    pub sfu_cycles: u64,
    /// Workload-scheduler cycles (greedy partition, overlapped).
    pub scheduler_cycles: u64,
    /// Patches processed.
    pub patches: u64,
    /// Feature bytes fetched from DRAM (scaled estimate).
    pub bytes_fetched: u64,
    /// DRAM bank-conflict stall cycles (scaled estimate).
    pub bank_conflict_stalls: u64,
    /// DRAM row-buffer hit rate observed.
    pub row_hit_rate: f64,
    /// DRAM energy, picojoules (scaled estimate).
    pub dram_energy_pj: f64,
}

/// Whole-frame simulation outcome.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Coarse-stage report (zeroed for single-stage workloads).
    pub coarse: StageReport,
    /// Focused-stage report.
    pub focused: StageReport,
    /// Total frame cycles.
    pub total_cycles: u64,
    /// Frame latency in seconds.
    pub latency_s: f64,
    /// Frames per second.
    pub fps: f64,
    /// PE-pool utilization over the frame (Fig. 12 right).
    pub pe_utilization: f64,
    /// Whether data movement bounded the pipeline (data > compute in
    /// the steady state).
    pub memory_bound: bool,
}

impl SimReport {
    /// Total data-movement cycles across stages.
    pub fn data_cycles(&self) -> u64 {
        self.coarse.data_cycles + self.focused.data_cycles
    }

    /// Total compute cycles across stages.
    pub fn compute_cycles(&self) -> u64 {
        self.coarse.compute_cycles + self.focused.compute_cycles
    }

    /// Total DRAM traffic in bytes.
    pub fn bytes_fetched(&self) -> u64 {
        self.coarse.bytes_fetched + self.focused.bytes_fetched
    }
}

/// Row-buffer continuity across patch prefetches.
///
/// The default cold-row model is a documented independence
/// approximation: between two prefetches the access pattern jumps to a
/// different hull footprint, so cross-patch row reuse is assumed
/// negligible — which is exactly what lets the per-patch loop fan out
/// across host threads. [`SimMode::WarmRows`] drops the approximation
/// to *measure* it: one sequential DRAM device keeps its row buffers
/// warm across patches, so the reported hit rate includes whatever
/// cross-patch locality the cold model forgoes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Every patch prefetch starts from cold row buffers; patches are
    /// mutually independent and simulate in parallel.
    #[default]
    ColdPatches,
    /// Row buffers persist across patches; the patch loop runs
    /// sequentially (each patch depends on the previous one's bank
    /// state). Reports are deterministic for any `GEN_NERF_THREADS`.
    WarmRows,
}

/// The pipeline simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: AcceleratorConfig,
    variant: DataflowVariant,
    /// PE efficiency within compute phases (fill/drain, ragged tiles).
    pe_efficiency: f64,
    /// Host worker threads for the per-patch fan-out.
    threads: usize,
    /// Row-buffer continuity across patch prefetches.
    mode: SimMode,
}

impl Simulator {
    /// Simulator for the full Gen-NeRF design.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self::with_variant(cfg, DataflowVariant::Ours)
    }

    /// Simulator for a Fig. 12 ablation variant.
    pub fn with_variant(cfg: AcceleratorConfig, variant: DataflowVariant) -> Self {
        Self {
            cfg,
            variant,
            pe_efficiency: 0.9,
            threads: gen_nerf_parallel::num_threads(),
            mode: SimMode::default(),
        }
    }

    /// Selects the row-buffer continuity model (see [`SimMode`]).
    pub fn with_sim_mode(mut self, mode: SimMode) -> Self {
        self.mode = mode;
        self
    }

    /// Pins the host worker count for the per-patch fan-out (1 = fully
    /// sequential). Reports are identical for every value; callers that
    /// already parallelize *over* simulations (sweeps) use this to
    /// split the thread budget instead of nesting full pools.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// The dataflow variant being simulated.
    pub fn variant(&self) -> DataflowVariant {
        self.variant
    }

    /// Simulates a frame under the default orbit camera rig.
    pub fn simulate(&self, spec: &WorkloadSpec) -> SimReport {
        let rig = CameraRig::orbit(spec.width, spec.height, spec.s_views.max(1));
        self.simulate_with_rig(spec, &rig)
    }

    /// Simulates a frame under an explicit camera rig.
    ///
    /// # Panics
    ///
    /// Panics when the rig has fewer sources than `spec.s_views`.
    pub fn simulate_with_rig(&self, spec: &WorkloadSpec, rig: &CameraRig) -> SimReport {
        assert!(
            rig.sources.len() >= spec.s_views,
            "rig has {} sources, workload needs {}",
            rig.sources.len(),
            spec.s_views
        );
        let mut report = SimReport::default();
        for stage in spec.stages() {
            let stage_report = self.simulate_stage(spec, rig, stage);
            match stage {
                Stage::Coarse => report.coarse = stage_report,
                Stage::Focused => report.focused = stage_report,
            }
            report.total_cycles += stage_report.total_cycles;
        }
        let freq_hz = self.cfg.freq_ghz * 1e9;
        report.latency_s = report.total_cycles as f64 / freq_hz;
        report.fps = if report.latency_s > 0.0 {
            1.0 / report.latency_s
        } else {
            0.0
        };
        report.pe_utilization = if report.total_cycles > 0 {
            (report.compute_cycles() as f64 * self.pe_efficiency) / report.total_cycles as f64
        } else {
            0.0
        };
        report.memory_bound = report.data_cycles() > report.compute_cycles();
        report
    }

    fn simulate_stage(&self, spec: &WorkloadSpec, rig: &CameraRig, stage: Stage) -> StageReport {
        let views = spec.views(stage);
        let n_depth = match stage {
            Stage::Coarse => spec.n_coarse,
            Stage::Focused => spec.n_focused,
        } as u32;
        if n_depth == 0 || views == 0 {
            return StageReport::default();
        }
        let stage_rig = CameraRig {
            novel: rig.novel,
            sources: rig.sources[..views].to_vec(),
            t_near: rig.t_near,
            t_far: rig.t_far,
        };
        let texel_bytes = spec.texel_bytes(stage);
        let scheduler = Scheduler::new(self.cfg.prefetch_capacity_bytes());
        let patches = if self.variant.uses_greedy_partition() {
            scheduler.partition(&stage_rig, spec.width, spec.height, n_depth, texel_bytes)
        } else {
            scheduler.partition_fixed(&stage_rig, spec.width, spec.height, n_depth, texel_bytes)
        };

        // Per-point compute cost: point MLP plus the ray module
        // amortized over the stage's points.
        let total_points = spec.points(stage).max(1);
        let mlp_macs_pp = match stage {
            Stage::Coarse => spec.coarse_mlp_macs_per_point,
            Stage::Focused => spec.mlp_macs_per_point,
        } as f64;
        let ray_macs_pp = spec.ray_macs_total(stage) as f64 / total_points as f64;
        let macs_per_point = mlp_macs_pp + ray_macs_pp;

        let pe = PePool::new(&self.cfg);
        // Template controller state. In the default cold-row mode it is
        // cloned per patch: every prefetch starts from cold row
        // buffers. Patches are the double-buffer granule — between two
        // prefetches the access pattern jumps to a different hull
        // footprint, so cross-patch row reuse is assumed negligible and
        // modelling it as zero makes the per-patch DRAM simulations
        // independent (which lets the loop fan out across host threads
        // while staying bit-for-bit deterministic for any worker
        // count). `SimMode::WarmRows` instead threads one device
        // through the patches sequentially to measure the locality the
        // approximation forgoes.
        let mut dram_template = Dram::new(self.cfg.dram, self.variant.layout());
        dram_template.set_geometry(spec.width.max(8), spec.height.max(8), texel_bytes);

        struct PatchOutcome {
            data_cycles: u64,
            compute_cycles: u64,
            ppu_cycles: u64,
            sfu_cycles: u64,
            bytes: u64,
            stalls: u64,
            energy_pj: f64,
            row_hits: u64,
            row_misses: u64,
        }

        let patch_outcome = |patch: &Patch, dram: &mut Dram| -> PatchOutcome {
            let hits0 = dram.stats().row_hits;
            let misses0 = dram.stats().row_misses;
            let (cycles, bytes, stalls, energy) = self.prefetch_patch(dram, patch, texel_bytes);
            let macs = (patch.points() as f64 * macs_per_point) as u64;
            // PPU: every point is sampled, projected onto each view and
            // bilinearly interpolated; throughput scales down with views.
            let ppu_work = patch.points() * views.max(1) as u64;
            PatchOutcome {
                data_cycles: cycles,
                compute_cycles: pe.mac_cycles(macs.max(1), self.pe_efficiency),
                ppu_cycles: ppu_work.div_ceil(PPU_POINTS_PER_CYCLE),
                // SFU: exp + accumulate per point (Eq. 2).
                sfu_cycles: patch.points().div_ceil(SFU_POINTS_PER_CYCLE),
                bytes,
                stalls,
                energy_pj: energy,
                row_hits: dram.stats().row_hits - hits0,
                row_misses: dram.stats().row_misses - misses0,
            }
        };
        let outcomes: Vec<PatchOutcome> = match self.mode {
            // Cold rows: patches are independent, fan out across host
            // threads with a fresh device clone per patch.
            SimMode::ColdPatches => {
                gen_nerf_parallel::par_map_threads(&patches, self.threads, |_, patch| {
                    let mut dram = dram_template.clone();
                    patch_outcome(patch, &mut dram)
                })
            }
            // Warm rows: one device, sequential, row buffers carried
            // across patches — the locality measurement mode.
            SimMode::WarmRows => {
                let mut dram = dram_template.clone();
                patches
                    .iter()
                    .map(|patch| patch_outcome(patch, &mut dram))
                    .collect()
            }
        };

        let data_cycles_list: Vec<u64> = outcomes.iter().map(|o| o.data_cycles).collect();
        let compute_cycles_list: Vec<u64> = outcomes.iter().map(|o| o.compute_cycles).collect();
        let ppu_cycles_list: Vec<u64> = outcomes.iter().map(|o| o.ppu_cycles).collect();
        let sfu_cycles_list: Vec<u64> = outcomes.iter().map(|o| o.sfu_cycles).collect();
        let bytes_fetched: u64 = outcomes.iter().map(|o| o.bytes).sum();
        let conflict_stalls: u64 = outcomes.iter().map(|o| o.stalls).sum();
        let energy_pj: f64 = outcomes.iter().map(|o| o.energy_pj).sum();
        let row_hits: u64 = outcomes.iter().map(|o| o.row_hits).sum();
        let row_misses: u64 = outcomes.iter().map(|o| o.row_misses).sum();

        // Pipelined engine (Fig. 8): per slot the prefetch of patch i+1
        // overlaps the PPU + PE + SFU of patch i; the slot latency is
        // the slowest of the overlapped units. The workload scheduler
        // generates patches ahead of execution and only binds when its
        // per-patch cost exceeds the slot.
        let mut total = *data_cycles_list.first().unwrap_or(&0);
        for (i, &compute) in compute_cycles_list.iter().enumerate() {
            let next_data = data_cycles_list.get(i + 1).copied().unwrap_or(0);
            let engine = compute.max(ppu_cycles_list[i]).max(sfu_cycles_list[i]);
            total += engine.max(next_data).max(SCHEDULER_CYCLES_PER_PATCH);
        }

        StageReport {
            total_cycles: total,
            data_cycles: data_cycles_list.iter().sum(),
            compute_cycles: compute_cycles_list.iter().sum(),
            ppu_cycles: ppu_cycles_list.iter().sum(),
            sfu_cycles: sfu_cycles_list.iter().sum(),
            scheduler_cycles: SCHEDULER_CYCLES_PER_PATCH * patches.len() as u64,
            patches: patches.len() as u64,
            bytes_fetched,
            bank_conflict_stalls: conflict_stalls,
            row_hit_rate: gen_nerf_dram::DramStats {
                row_hits,
                row_misses,
                ..Default::default()
            }
            .hit_rate(),
            dram_energy_pj: energy_pj,
        }
    }

    /// Prefetches one patch: the DMA engine streams each view's hull
    /// footprint as 64-byte bursts walking the bounding box row-major
    /// (so locality/bank behaviour reflects the storage layout).
    /// Bursts beyond [`REQUEST_CAP`] per view are sampled and scaled.
    /// Returns `(cycles, bytes, conflict_stalls, energy_pj)`.
    fn prefetch_patch(
        &self,
        dram: &mut Dram,
        patch: &Patch,
        texel_bytes: u64,
    ) -> (u64, u64, u64, f64) {
        const BURST_BYTES: u64 = 64;
        let texels_per_burst = (BURST_BYTES / texel_bytes).max(1);
        let mut requests: Vec<FeatureRequest> = Vec::new();
        let mut total_bursts = 0u64;
        let mut total_texels = 0u64;
        for (view, (&texels, &bbox)) in patch
            .texels_per_view
            .iter()
            .zip(&patch.bbox_per_view)
            .enumerate()
        {
            if texels == 0 {
                continue;
            }
            total_texels += texels;
            let bursts = texels.div_ceil(texels_per_burst);
            total_bursts += bursts;
            let (x0, y0, x1, y1) = bbox;
            let bw = (x1.saturating_sub(x0)).max(1) as u64;
            let bh = (y1.saturating_sub(y0)).max(1) as u64;
            let n_req = (bursts as usize).min(REQUEST_CAP);
            // When capped, stride so the sampled bursts still cover the
            // whole bbox in row-major order.
            let stride = bursts.div_ceil(n_req as u64).max(1);
            for t in 0..n_req {
                let burst_idx = (t as u64 * stride).min(bursts - 1);
                let texel_idx = burst_idx * texels_per_burst;
                let fx = texel_idx % bw;
                let fy = (texel_idx / bw) % bh;
                requests.push(FeatureRequest {
                    view,
                    x: x0 + fx as u32,
                    y: y0 + fy as u32,
                    bytes: BURST_BYTES as u32,
                });
            }
        }
        if requests.is_empty() {
            return (0, 0, 0, 0.0);
        }
        let energy0 = dram.stats().energy_pj;
        let result = dram.serve_batch(&requests);
        let sampled_energy = dram.stats().energy_pj - energy0;
        // Scale sampled service to the full footprint.
        let scale = total_bursts as f64 / requests.len() as f64;
        let cycles = (result.total_cycles as f64 * scale).ceil() as u64;
        let bytes = total_texels * texel_bytes;
        let stalls = (result.bank_conflict_stalls as f64 * scale).ceil() as u64;
        let energy = sampled_energy * scale;
        (cycles, bytes, stalls, energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::gen_nerf_default(64, 64, 4, 32)
    }

    /// Paper config with the prefetch buffer shrunk so the capacity
    /// constraint binds at the 64×64 test scale (mirrors the 256 KB
    /// budget at full resolution).
    fn tight_cfg() -> AcceleratorConfig {
        let mut cfg = AcceleratorConfig::paper();
        cfg.prefetch_buffer_kb = 16;
        cfg
    }

    #[test]
    fn simulate_produces_positive_fps() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let r = sim.simulate(&small_spec());
        assert!(r.fps > 0.0);
        assert!(r.total_cycles > 0);
        assert!(r.latency_s > 0.0);
    }

    #[test]
    fn two_stages_both_reported() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let r = sim.simulate(&small_spec());
        assert!(r.coarse.total_cycles > 0);
        assert!(r.focused.total_cycles > 0);
        assert!(r.focused.compute_cycles > r.coarse.compute_cycles);
    }

    #[test]
    fn single_stage_skips_coarse() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let spec = WorkloadSpec::ibrnet_default(64, 64, 4, 32);
        let r = sim.simulate(&spec);
        assert_eq!(r.coarse.total_cycles, 0);
    }

    #[test]
    fn utilization_in_unit_interval() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let r = sim.simulate(&small_spec());
        assert!(r.pe_utilization > 0.0 && r.pe_utilization <= 1.0);
    }

    #[test]
    fn ours_not_slower_than_fixed_variants_under_tight_buffer() {
        let spec = small_spec();
        let ours = Simulator::new(tight_cfg());
        let r_ours = ours.simulate(&spec);
        for variant in [
            DataflowVariant::Var1,
            DataflowVariant::Var2,
            DataflowVariant::Var3,
        ] {
            let sim = Simulator::with_variant(tight_cfg(), variant);
            let r = sim.simulate(&spec);
            assert!(
                r.total_cycles as f64 >= r_ours.total_cycles as f64 * 0.95,
                "{variant:?}: {} vs ours {}",
                r.total_cycles,
                r_ours.total_cycles
            );
        }
    }

    #[test]
    fn bad_layouts_conflict_more_than_var1() {
        // Var-2 (row-major) and Var-3 (view-interleave) share Var-1's
        // partition; any extra stalls are pure layout effects (Fig. 6).
        let spec = small_spec();
        let stalls = |variant| {
            let sim = Simulator::with_variant(tight_cfg(), variant);
            let r = sim.simulate(&spec);
            r.coarse.bank_conflict_stalls + r.focused.bank_conflict_stalls
        };
        let var1 = stalls(DataflowVariant::Var1);
        let var2 = stalls(DataflowVariant::Var2);
        let var3 = stalls(DataflowVariant::Var3);
        assert!(var2 > var1, "var2 {var2} vs var1 {var1}");
        assert!(var3 > var1, "var3 {var3} vs var1 {var1}");
    }

    #[test]
    fn more_views_increase_latency() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let few = sim.simulate(&WorkloadSpec::gen_nerf_default(64, 64, 2, 32));
        let many = sim.simulate(&WorkloadSpec::gen_nerf_default(64, 64, 8, 32));
        assert!(many.total_cycles > few.total_cycles);
    }

    #[test]
    fn more_points_increase_latency() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let few = sim.simulate(&WorkloadSpec::gen_nerf_default(64, 64, 4, 16));
        let many = sim.simulate(&WorkloadSpec::gen_nerf_default(64, 64, 4, 64));
        assert!(many.total_cycles > few.total_cycles);
    }

    #[test]
    #[should_panic(expected = "sources")]
    fn rejects_undersized_rig() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let spec = WorkloadSpec::gen_nerf_default(32, 32, 6, 16);
        let rig = CameraRig::orbit(32, 32, 2);
        let _ = sim.simulate_with_rig(&spec, &rig);
    }

    #[test]
    fn warm_rows_quantify_cold_row_locality_loss() {
        // The cold-row patch-parallel model is a documented
        // approximation: it forgoes whatever row-buffer locality exists
        // *across* consecutive patches. WarmRows measures it. Warm rows
        // can only add hits, so the hit rate must not drop — and on the
        // canonical workload (adjacent patches hit overlapping feature
        // rows) it must strictly rise, which is the quantity the
        // ROADMAP item asks for.
        let spec = WorkloadSpec::gen_nerf_default(96, 96, 4, 32);
        let cold = Simulator::new(AcceleratorConfig::paper()).simulate(&spec);
        let warm = Simulator::new(AcceleratorConfig::paper())
            .with_sim_mode(SimMode::WarmRows)
            .simulate(&spec);
        let (cold_c, cold_f) = (cold.coarse.row_hit_rate, cold.focused.row_hit_rate);
        let (warm_c, warm_f) = (warm.coarse.row_hit_rate, warm.focused.row_hit_rate);
        assert!(
            warm_c >= cold_c && warm_f >= cold_f,
            "warm rows lost hits: coarse {cold_c:.3}->{warm_c:.3}, focused {cold_f:.3}->{warm_f:.3}"
        );
        assert!(
            warm_c > cold_c || warm_f > cold_f,
            "no cross-patch locality measured: coarse {cold_c:.3}->{warm_c:.3}, focused {cold_f:.3}->{warm_f:.3}"
        );
        // Workload partitioning is identical; only DRAM service differs.
        assert_eq!(cold.coarse.patches, warm.coarse.patches);
        assert_eq!(cold.focused.patches, warm.focused.patches);
        assert_eq!(cold.compute_cycles(), warm.compute_cycles());
    }

    #[test]
    fn warm_rows_deterministic_for_any_thread_count() {
        let spec = WorkloadSpec::gen_nerf_default(64, 64, 4, 32);
        let one = Simulator::new(AcceleratorConfig::paper())
            .with_sim_mode(SimMode::WarmRows)
            .with_threads(1)
            .simulate(&spec);
        let many = Simulator::new(AcceleratorConfig::paper())
            .with_sim_mode(SimMode::WarmRows)
            .with_threads(8)
            .simulate(&spec);
        assert_eq!(one, many);
    }

    #[test]
    fn bytes_fetched_scale_with_views() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let few = sim.simulate(&WorkloadSpec::gen_nerf_default(64, 64, 2, 32));
        let many = sim.simulate(&WorkloadSpec::gen_nerf_default(64, 64, 8, 32));
        assert!(many.bytes_fetched() > few.bytes_fetched());
    }
}

#[cfg(test)]
mod pipeline_stage_tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    #[test]
    fn ppu_and_sfu_cycles_reported() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let r = sim.simulate(&WorkloadSpec::gen_nerf_default(64, 64, 4, 32));
        assert!(r.focused.ppu_cycles > 0);
        assert!(r.focused.sfu_cycles > 0);
        assert!(r.focused.scheduler_cycles > 0);
        // The PPU serves every (point, view); the SFU only every point.
        assert!(r.focused.ppu_cycles > r.focused.sfu_cycles);
    }

    #[test]
    fn scheduler_overhead_hidden_behind_execution() {
        // The run-time scheduler must not bound the pipeline on the
        // canonical workload (the paper's premise for doing the greedy
        // partition in hardware at run time).
        let sim = Simulator::new(AcceleratorConfig::paper());
        let r = sim.simulate(&WorkloadSpec::gen_nerf_default(96, 96, 6, 64));
        let execution = r.compute_cycles().max(r.data_cycles());
        let scheduler = r.coarse.scheduler_cycles + r.focused.scheduler_cycles;
        assert!(
            scheduler < execution,
            "scheduler {scheduler} cycles bounds execution {execution}"
        );
    }

    #[test]
    fn ppu_scales_with_views() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let few = sim.simulate(&WorkloadSpec::gen_nerf_default(64, 64, 2, 32));
        let many = sim.simulate(&WorkloadSpec::gen_nerf_default(64, 64, 8, 32));
        assert!(many.focused.ppu_cycles > few.focused.ppu_cycles);
    }
}
