//! Per-frame energy model.
//!
//! Combines the Tab. 1 power model (activity-scaled) with the DRAM
//! energy reported by the pipeline simulator to estimate
//! energy-per-frame — the efficiency currency of AR/VR devices (the
//! paper motivates the design with the Quest-class power envelope and
//! reports typical power in Tabs. 1/4).

use crate::area::area_power;
use crate::config::AcceleratorConfig;
use crate::simulator::SimReport;
use serde::Serialize;

/// Energy breakdown of one rendered frame, millijoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct FrameEnergy {
    /// PE-pool + rendering-engine dynamic energy.
    pub compute_mj: f64,
    /// Workload scheduler + preprocessing unit.
    pub frontend_mj: f64,
    /// On-chip SRAM (prefetch buffer) energy.
    pub sram_mj: f64,
    /// Off-chip DRAM energy (from the DRAM model).
    pub dram_mj: f64,
}

impl FrameEnergy {
    /// Total frame energy, millijoules.
    pub fn total_mj(&self) -> f64 {
        self.compute_mj + self.frontend_mj + self.sram_mj + self.dram_mj
    }

    /// Average power over the frame, watts.
    pub fn average_power_w(&self, latency_s: f64) -> f64 {
        if latency_s > 0.0 {
            self.total_mj() / 1000.0 / latency_s
        } else {
            0.0
        }
    }
}

/// Estimates the energy of a simulated frame.
///
/// Module powers come from the Tab. 1 model; each module's energy is
/// its power × the time it is active: the rendering engine during
/// compute cycles, the prefetch buffer during data cycles, the
/// scheduler/PPU across the whole frame, and DRAM energy directly from
/// the DRAM model (scaled estimate).
pub fn frame_energy(cfg: &AcceleratorConfig, report: &SimReport) -> FrameEnergy {
    let ap = area_power(cfg);
    let freq_hz = cfg.freq_ghz * 1e9;
    let s = |cycles: u64| cycles as f64 / freq_hz;
    let compute_s = s(report.compute_cycles());
    let data_s = s(report.data_cycles());
    let frame_s = s(report.total_cycles);
    FrameEnergy {
        compute_mj: ap.rendering_engine.power_mw * compute_s,
        frontend_mj: (ap.scheduler.power_mw + ap.preprocessing.power_mw) * frame_s,
        sram_mj: ap.prefetch_buffer.power_mw * data_s.max(compute_s),
        dram_mj: (report.coarse.dram_energy_pj + report.focused.dram_energy_pj) / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use crate::workload::WorkloadSpec;

    fn simulate(views: usize) -> (AcceleratorConfig, SimReport) {
        let cfg = AcceleratorConfig::paper();
        let sim = Simulator::new(cfg);
        let spec = WorkloadSpec::gen_nerf_default(96, 96, views, 32);
        (cfg, sim.simulate(&spec))
    }

    #[test]
    fn energy_positive_and_decomposed() {
        let (cfg, report) = simulate(4);
        let e = frame_energy(&cfg, &report);
        assert!(e.compute_mj > 0.0);
        assert!(e.frontend_mj > 0.0);
        assert!(e.dram_mj > 0.0);
        assert!(e.total_mj() > e.compute_mj);
    }

    #[test]
    fn average_power_below_tab1_envelope() {
        // Average power cannot exceed the all-modules-always-on Tab. 1
        // number (~9.7 W) plus DRAM.
        let (cfg, report) = simulate(4);
        let e = frame_energy(&cfg, &report);
        let p = e.average_power_w(report.latency_s);
        assert!(p > 0.0);
        assert!(p < 15.0, "average power {p} W implausible");
    }

    #[test]
    fn more_views_cost_more_energy() {
        let (cfg, r2) = simulate(2);
        let (_, r8) = simulate(8);
        let e2 = frame_energy(&cfg, &r2);
        let e8 = frame_energy(&cfg, &r8);
        assert!(e8.total_mj() > e2.total_mj());
        assert!(e8.dram_mj > e2.dram_mj);
    }

    #[test]
    fn zero_latency_zero_power() {
        let e = FrameEnergy::default();
        assert_eq!(e.average_power_w(0.0), 0.0);
        assert_eq!(e.total_mj(), 0.0);
    }
}
