//! Ground-truth volume renderer.
//!
//! Implements the quadrature of paper Eq. 2 against the analytic scene:
//! `Ĉ(r) = Σ_k T_k (1 − exp(−σ_k (t_{k+1} − t_k))) c_k`, with
//! `T_k = exp(−Σ_{j<k} σ_j (t_{j+1} − t_j))`. This renderer produces
//! the *source views* the generalizable NeRF conditions on and the
//! *ground-truth target views* every PSNR in the experiments is
//! measured against.

use crate::field::Scene;
use crate::image::Image;
use gen_nerf_geometry::{Camera, Ray, Vec3};

/// Per-sample compositing result for a single ray.
#[derive(Debug, Clone)]
pub struct RayComposite {
    /// Final pixel color (background blended under residual
    /// transmittance).
    pub color: Vec3,
    /// Hitting probability `w_k = T_k (1 − exp(−σ_k δ_k))` per sample —
    /// the quantity the coarse-then-focus sampler thresholds (Sec. 3.2).
    pub weights: Vec<f32>,
    /// Transmittance remaining after the last sample.
    pub residual_transmittance: f32,
}

/// Composites densities and colors along a ray (Eq. 2).
///
/// `deltas[k]` is the interval width `t_{k+1} − t_k`.
///
/// # Panics
///
/// Panics when slice lengths disagree.
pub fn composite(
    densities: &[f32],
    colors: &[Vec3],
    deltas: &[f32],
    background: Vec3,
) -> RayComposite {
    let mut weights = Vec::with_capacity(densities.len());
    let (color, residual_transmittance) =
        composite_into(densities, colors, deltas, background, &mut weights);
    RayComposite {
        color,
        weights,
        residual_transmittance,
    }
}

/// [`composite`] with a caller-owned weights buffer (cleared first):
/// returns `(color, residual_transmittance)` and leaves the per-sample
/// hitting probabilities in `weights`. Identical arithmetic to
/// [`composite`], no allocation once the buffer has grown to size —
/// the composite phase of the fused render schedule reuses one buffer
/// for a whole chunk of rays.
///
/// # Panics
///
/// Panics when slice lengths disagree.
pub fn composite_into(
    densities: &[f32],
    colors: &[Vec3],
    deltas: &[f32],
    background: Vec3,
    weights: &mut Vec<f32>,
) -> (Vec3, f32) {
    assert_eq!(densities.len(), colors.len(), "composite: length mismatch");
    assert_eq!(densities.len(), deltas.len(), "composite: length mismatch");
    weights.clear();
    let mut transmittance = 1.0f32;
    let mut color = Vec3::ZERO;
    for k in 0..densities.len() {
        let alpha = 1.0 - (-densities[k].max(0.0) * deltas[k]).exp();
        let w = transmittance * alpha;
        color += colors[k] * w;
        weights.push(w);
        transmittance *= 1.0 - alpha;
        if transmittance < 1e-5 {
            // Early termination: the remaining samples see (numerically)
            // zero transmittance; record zero weights for them.
            weights.resize(densities.len(), 0.0);
            break;
        }
    }
    while weights.len() < densities.len() {
        weights.push(0.0);
    }
    color += background * transmittance;
    (color, transmittance)
}

/// Traces one ray against the ground-truth scene with `n_samples`
/// uniform samples over the ray's intersection with the scene bounds.
///
/// Rays that miss the bounds return the background color with empty
/// weights.
pub fn trace_ray(scene: &Scene, ray: &Ray, n_samples: usize) -> RayComposite {
    let Some((t0, t1)) = scene.bounds.intersect_ray(ray) else {
        return RayComposite {
            color: scene.background,
            weights: Vec::new(),
            residual_transmittance: 1.0,
        };
    };
    if t1 - t0 < 1e-5 {
        return RayComposite {
            color: scene.background,
            weights: Vec::new(),
            residual_transmittance: 1.0,
        };
    }
    let depths = Ray::uniform_depths(t0, t1, n_samples);
    let deltas = Ray::interval_widths(&depths, t1);
    let mut densities = Vec::with_capacity(n_samples);
    let mut colors = Vec::with_capacity(n_samples);
    for &t in &depths {
        let p = ray.at(t);
        densities.push(scene.density(p));
        colors.push(scene.color(p, ray.direction));
    }
    composite(&densities, &colors, &deltas, scene.background)
}

/// Renders a full image from `camera` with `n_samples` ground-truth
/// samples per ray.
pub fn render(scene: &Scene, camera: &Camera, n_samples: usize) -> Image {
    let (w, h) = (camera.intrinsics.width, camera.intrinsics.height);
    Image::from_fn(w, h, |x, y| {
        let ray = camera.pixel_center_ray(x, y);
        trace_ray(scene, &ray, n_samples).color
    })
}

/// Renders the depth of the maximum-weight sample per pixel (∞ where
/// the ray saturates nothing) — used by tests and the dataflow
/// analysis.
pub fn render_depth(scene: &Scene, camera: &Camera, n_samples: usize) -> Vec<f32> {
    let (w, h) = (camera.intrinsics.width, camera.intrinsics.height);
    let mut out = Vec::with_capacity((w * h) as usize);
    for y in 0..h {
        for x in 0..w {
            let ray = camera.pixel_center_ray(x, y);
            let Some((t0, t1)) = scene.bounds.intersect_ray(&ray) else {
                out.push(f32::INFINITY);
                continue;
            };
            let depths = Ray::uniform_depths(t0, t1, n_samples);
            let comp = trace_ray(scene, &ray, n_samples);
            let best = comp
                .weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal));
            match best {
                Some((i, &w)) if w > 1e-4 => out.push(depths[i]),
                _ => out.push(f32::INFINITY),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Primitive;
    use gen_nerf_geometry::{Intrinsics, Pose};
    use proptest::prelude::*;

    fn simple_scene() -> Scene {
        Scene::new(
            vec![Primitive::Sphere {
                center: Vec3::ZERO,
                radius: 1.0,
                density: 50.0,
                albedo: Vec3::new(0.9, 0.2, 0.1),
            }],
            Vec3::splat(0.05),
        )
    }

    fn front_camera(res: u32) -> Camera {
        Camera::new(
            Intrinsics::from_fov(res, res, 0.7),
            Pose::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y),
        )
    }

    #[test]
    fn composite_empty_ray_is_background() {
        let c = composite(&[], &[], &[], Vec3::splat(0.3));
        assert!((c.color - Vec3::splat(0.3)).length() < 1e-6);
        assert_eq!(c.residual_transmittance, 1.0);
    }

    #[test]
    fn composite_opaque_sample_dominates() {
        let c = composite(
            &[1000.0, 1000.0],
            &[Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)],
            &[1.0, 1.0],
            Vec3::ZERO,
        );
        // First sample absorbs everything.
        assert!((c.color - Vec3::new(1.0, 0.0, 0.0)).length() < 1e-4);
        assert!(c.weights[0] > 0.999);
        assert!(c.weights[1] < 1e-4);
    }

    #[test]
    fn composite_weights_sum_plus_residual_is_one() {
        let densities = [0.5, 1.0, 0.2, 3.0];
        let colors = [Vec3::ONE; 4];
        let deltas = [0.3, 0.3, 0.3, 0.3];
        let c = composite(&densities, &colors, &deltas, Vec3::ZERO);
        let total: f32 = c.weights.iter().sum();
        assert!(
            (total + c.residual_transmittance - 1.0).abs() < 1e-5,
            "sum={total} residual={}",
            c.residual_transmittance
        );
    }

    #[test]
    fn ray_through_sphere_sees_sphere_color() {
        let scene = simple_scene();
        let ray = Ray::new(Vec3::new(0.0, 0.0, 5.0), -Vec3::Z);
        let c = trace_ray(&scene, &ray, 64);
        assert!(c.color.x > 0.5, "color = {:?}", c.color);
        assert!(c.residual_transmittance < 0.01);
    }

    #[test]
    fn ray_missing_sphere_sees_background() {
        let scene = simple_scene();
        let ray = Ray::new(Vec3::new(0.0, 4.0, 5.0), -Vec3::Z);
        let c = trace_ray(&scene, &ray, 64);
        assert!(
            (c.color - Vec3::splat(0.05)).length() < 0.02,
            "{:?}",
            c.color
        );
    }

    #[test]
    fn render_image_center_is_object() {
        let scene = simple_scene();
        let cam = front_camera(16);
        let img = render(&scene, &cam, 48);
        let center = img.get(8, 8);
        let corner = img.get(0, 0);
        assert!(center.x > 0.4, "center = {center:?}");
        assert!(
            (corner - Vec3::splat(0.05)).length() < 0.05,
            "corner = {corner:?}"
        );
    }

    #[test]
    fn render_depth_sees_front_surface() {
        let scene = simple_scene();
        let cam = front_camera(8);
        let depth = render_depth(&scene, &cam, 96);
        // Center pixel: camera at z=5, sphere front surface at z=1 -> t≈4.
        let center = depth[(4 * 8 + 4) as usize];
        assert!((center - 4.0).abs() < 0.2, "depth = {center}");
        // Corner rays miss.
        assert!(depth[0].is_infinite());
    }

    #[test]
    fn weights_concentrate_at_surface() {
        let scene = simple_scene();
        let ray = Ray::new(Vec3::new(0.0, 0.0, 5.0), -Vec3::Z);
        let c = trace_ray(&scene, &ray, 128);
        // The max-weight sample should be near t=4 (surface), i.e. in
        // the first half of the samples well before the far side.
        let (argmax, _) = c
            .weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let frac = argmax as f32 / 128.0;
        assert!(frac < 0.6, "argmax fraction = {frac}");
        // And almost all mass is in a thin band: the top-8 samples carry
        // nearly everything.
        let mut sorted = c.weights.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top: f32 = sorted.iter().take(8).sum();
        let total: f32 = c.weights.iter().sum();
        assert!(top / total > 0.9, "mass not concentrated: {}", top / total);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_weights_in_unit_interval(
            d in proptest::collection::vec(0.0f32..20.0, 1..32),
        ) {
            let colors = vec![Vec3::ONE; d.len()];
            let deltas = vec![0.1f32; d.len()];
            let c = composite(&d, &colors, &deltas, Vec3::ZERO);
            prop_assert!(c.weights.iter().all(|&w| (0.0..=1.0).contains(&w)));
            let total: f32 = c.weights.iter().sum();
            prop_assert!(total <= 1.0 + 1e-4);
        }

        #[test]
        #[ignore = "slow; covered by render_image_center_is_object"]
        fn prop_render_finite(res in 4u32..12) {
            let scene = simple_scene();
            let cam = front_camera(res);
            let img = render(&scene, &cam, 16);
            prop_assert!(img.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}
