//! Image quality metrics: PSNR, SSIM and an LPIPS proxy.
//!
//! PSNR matches the paper's definition exactly. LPIPS is a *learned*
//! perceptual metric we cannot reproduce without its trained VGG
//! weights; [`lpips_proxy`] substitutes a multi-scale
//! gradient-plus-luminance dissimilarity with the same orientation
//! (lower = better, 0 = identical) and monotone behaviour under the
//! distortions our ablations introduce. Every table that quotes LPIPS
//! in the paper quotes `lpips_proxy` here (documented in
//! `EXPERIMENTS.md`).

use crate::image::Image;

/// Peak signal-to-noise ratio in dB over RGB with peak 1.0.
///
/// Returns `f32::INFINITY` for identical images.
///
/// # Panics
///
/// Panics when dimensions differ.
pub fn psnr(a: &Image, b: &Image) -> f32 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "psnr: image sizes differ"
    );
    let mse: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        / a.as_slice().len() as f64;
    if mse == 0.0 {
        f32::INFINITY
    } else {
        (10.0 * (1.0 / mse).log10()) as f32
    }
}

/// Global structural similarity (single-window SSIM over luminance).
///
/// A coarse-grained SSIM: mean/variance/covariance over the whole
/// luminance plane with the standard `C1`/`C2` stabilizers. Sufficient
/// for relative comparisons.
///
/// # Panics
///
/// Panics when dimensions differ.
pub fn ssim(a: &Image, b: &Image) -> f32 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "ssim: image sizes differ"
    );
    let la = a.luminance();
    let lb = b.luminance();
    let n = la.len() as f64;
    let mu_a = la.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mu_b = lb.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    let mut cov = 0.0;
    for (&x, &y) in la.iter().zip(&lb) {
        let dx = x as f64 - mu_a;
        let dy = y as f64 - mu_b;
        var_a += dx * dx;
        var_b += dy * dy;
        cov += dx * dy;
    }
    var_a /= n;
    var_b /= n;
    cov /= n;
    let c1 = 0.01f64 * 0.01;
    let c2 = 0.03f64 * 0.03;
    (((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
        / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2))) as f32
}

/// Multi-scale perceptual dissimilarity proxy for LPIPS (lower =
/// better, 0 = identical).
///
/// At three pyramid levels it compares luminance and horizontal/vertical
/// gradients, averaging the absolute differences; scales are weighted
/// equally. See the module docs for why this substitutes LPIPS.
///
/// # Panics
///
/// Panics when dimensions differ.
pub fn lpips_proxy(a: &Image, b: &Image) -> f32 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "lpips_proxy: image sizes differ"
    );
    let mut total = 0.0;
    let mut levels = 0;
    let mut ia = a.clone();
    let mut ib = b.clone();
    for _ in 0..3 {
        total += level_dissimilarity(&ia, &ib);
        levels += 1;
        match (ia.downsample2(), ib.downsample2()) {
            (Some(na), Some(nb)) => {
                ia = na;
                ib = nb;
            }
            _ => break,
        }
    }
    total / levels as f32
}

fn level_dissimilarity(a: &Image, b: &Image) -> f32 {
    let la = a.luminance();
    let lb = b.luminance();
    let (w, h) = (a.width() as usize, a.height() as usize);
    let mut acc = 0.0f64;
    let mut count = 0u64;
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            // Luminance difference.
            acc += (la[i] - lb[i]).abs() as f64;
            count += 1;
            // Gradient differences.
            if x + 1 < w {
                let ga = la[i + 1] - la[i];
                let gb = lb[i + 1] - lb[i];
                acc += (ga - gb).abs() as f64;
                count += 1;
            }
            if y + 1 < h {
                let ga = la[i + w] - la[i];
                let gb = lb[i + w] - lb[i];
                acc += (ga - gb).abs() as f64;
                count += 1;
            }
        }
    }
    (acc / count.max(1) as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_nerf_geometry::Vec3;

    fn gradient_image(w: u32, h: u32) -> Image {
        Image::from_fn(w, h, |x, y| {
            Vec3::new(
                x as f32 / w as f32,
                y as f32 / h as f32,
                ((x + y) % 7) as f32 / 7.0,
            )
        })
    }

    fn noisy(img: &Image, amplitude: f32, seed: u32) -> Image {
        let mut k = seed;
        Image::from_fn(img.width(), img.height(), |x, y| {
            k = k.wrapping_mul(1664525).wrapping_add(1013904223);
            let n = ((k >> 8) as f32 / (1u32 << 24) as f32 - 0.5) * 2.0 * amplitude;
            (img.get(x, y) + Vec3::splat(n)).clamp(0.0, 1.0)
        })
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let img = gradient_image(16, 16);
        assert!(psnr(&img, &img).is_infinite());
    }

    #[test]
    fn psnr_known_value() {
        // Constant offset of 0.1 => MSE = 0.01 => PSNR = 20 dB.
        let a = Image::from_fn(8, 8, |_, _| Vec3::splat(0.4));
        let b = Image::from_fn(8, 8, |_, _| Vec3::splat(0.5));
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let img = gradient_image(32, 32);
        let low = noisy(&img, 0.02, 1);
        let high = noisy(&img, 0.2, 2);
        assert!(psnr(&img, &low) > psnr(&img, &high));
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn psnr_rejects_size_mismatch() {
        let _ = psnr(&Image::new(2, 2), &Image::new(3, 2));
    }

    #[test]
    fn ssim_identical_is_one() {
        let img = gradient_image(16, 16);
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ssim_degrades_with_noise() {
        let img = gradient_image(32, 32);
        let low = noisy(&img, 0.05, 3);
        let high = noisy(&img, 0.4, 4);
        assert!(ssim(&img, &low) > ssim(&img, &high));
    }

    #[test]
    fn lpips_proxy_zero_for_identical() {
        let img = gradient_image(20, 20);
        assert_eq!(lpips_proxy(&img, &img), 0.0);
    }

    #[test]
    fn lpips_proxy_monotone_in_noise() {
        let img = gradient_image(32, 32);
        let low = noisy(&img, 0.05, 5);
        let high = noisy(&img, 0.3, 6);
        assert!(lpips_proxy(&img, &low) < lpips_proxy(&img, &high));
    }

    #[test]
    fn lpips_proxy_penalizes_blur_less_than_noise() {
        // Blur keeps low frequencies; heavy noise destroys gradients.
        let img = gradient_image(32, 32);
        let blurred = {
            let d = img.downsample2().unwrap();
            // Upsample by pixel replication.
            Image::from_fn(32, 32, |x, y| {
                d.get((x / 2).min(d.width() - 1), (y / 2).min(d.height() - 1))
            })
        };
        let noisy_img = noisy(&img, 0.5, 7);
        assert!(lpips_proxy(&img, &blurred) < lpips_proxy(&img, &noisy_img));
    }

    #[test]
    fn metrics_symmetric() {
        let a = gradient_image(16, 16);
        let b = noisy(&a, 0.1, 8);
        assert!((psnr(&a, &b) - psnr(&b, &a)).abs() < 1e-4);
        assert!((lpips_proxy(&a, &b) - lpips_proxy(&b, &a)).abs() < 1e-6);
        assert!((ssim(&a, &b) - ssim(&b, &a)).abs() < 1e-6);
    }
}
