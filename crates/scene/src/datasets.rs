//! Dataset analogs for the paper's three evaluation suites.
//!
//! | Paper dataset | Analog here | Base resolution | Camera rig |
//! |---------------|-------------|-----------------|------------|
//! | LLFF (fern, fortress, horns, trex, …) | forward-facing scenes on a ground slab | 1008×756 | camera grid facing the scene |
//! | NeRF-Synthetic (chair, lego, ship, …) | 360° objects around the origin | 800×800 | upper-hemisphere orbit |
//! | DeepVoxels (cube, vase, pedestal, chair) | simple Lambertian-ish objects | 512×512 | circular orbit |
//!
//! Scene content is procedurally generated per scene name (seeded by the
//! name, so "fern" is always the same scene), with hand-shaped
//! archetypes for the four LLFF scenes the paper's Tabs. 2–3 report.

use crate::field::{Primitive, Scene};
use crate::image::Image;
use crate::renderer;
use gen_nerf_geometry::{Aabb, Camera, Intrinsics, Pose, Vec3};
use serde::{Deserialize, Serialize};

/// Which evaluation suite a dataset mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Forward-facing real scenes (LLFF, 1008×756).
    Llff,
    /// 360° synthetic objects (NeRF-Synthetic, 800×800).
    NerfSynthetic,
    /// Lambertian objects (DeepVoxels, 512×512).
    DeepVoxels,
}

impl DatasetKind {
    /// All kinds, in the order the paper's figures list them.
    pub fn all() -> [DatasetKind; 3] {
        [
            DatasetKind::DeepVoxels,
            DatasetKind::NerfSynthetic,
            DatasetKind::Llff,
        ]
    }

    /// The paper's evaluation resolution for this suite.
    pub fn base_resolution(self) -> (u32, u32) {
        match self {
            DatasetKind::Llff => (1008, 756),
            DatasetKind::NerfSynthetic => (800, 800),
            DatasetKind::DeepVoxels => (512, 512),
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Llff => "LLFF",
            DatasetKind::NerfSynthetic => "NeRF Syn",
            DatasetKind::DeepVoxels => "DeepVoxels",
        }
    }

    /// The scene names the paper evaluates for this suite.
    pub fn scene_names(self) -> &'static [&'static str] {
        match self {
            DatasetKind::Llff => &[
                "fern", "fortress", "horns", "trex", "flower", "leaves", "orchids", "room",
            ],
            DatasetKind::NerfSynthetic => &[
                "chair",
                "drums",
                "ficus",
                "hotdog",
                "lego",
                "materials",
                "mic",
                "ship",
            ],
            DatasetKind::DeepVoxels => &["cube", "vase", "pedestal", "chair"],
        }
    }
}

/// A posed image.
#[derive(Debug, Clone)]
pub struct View {
    /// Camera that produced the image.
    pub camera: Camera,
    /// Rendered (ground-truth) image.
    pub image: Image,
}

/// A generated dataset: scene, source views and held-out eval views.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset family.
    pub kind: DatasetKind,
    /// Scene name.
    pub name: String,
    /// The analytic ground-truth scene.
    pub scene: Scene,
    /// Views the generalizable NeRF conditions on.
    pub source_views: Vec<View>,
    /// Held-out views used for PSNR evaluation.
    pub eval_views: Vec<View>,
}

impl Dataset {
    /// Builds a dataset.
    ///
    /// * `res_scale` — multiplier on the suite's base resolution (1.0
    ///   reproduces the paper's resolution; tests use ≤0.125),
    /// * `n_source` — number of source views,
    /// * `n_eval` — number of held-out eval views,
    /// * `gt_samples` — ground-truth samples per ray when rendering,
    /// * `seed` — procedural-content seed mixed with the scene name.
    ///
    /// # Panics
    ///
    /// Panics when `res_scale` is not positive or `n_source == 0`.
    pub fn build(
        kind: DatasetKind,
        name: &str,
        res_scale: f32,
        n_source: usize,
        n_eval: usize,
        gt_samples: usize,
        seed: u64,
    ) -> Self {
        assert!(res_scale > 0.0, "res_scale must be positive");
        assert!(n_source > 0, "need at least one source view");
        let scene = scene_for(kind, name, seed);
        let (bw, bh) = kind.base_resolution();
        let w = ((bw as f32 * res_scale).round() as u32).max(8);
        let h = ((bh as f32 * res_scale).round() as u32).max(8);
        let source_cams = source_cameras(kind, w, h, n_source);
        let eval_cams = eval_cameras(kind, w, h, n_eval);
        let render_view = |camera: Camera| View {
            image: renderer::render(&scene, &camera, gt_samples),
            camera,
        };
        Self {
            kind,
            name: name.to_string(),
            source_views: source_cams.into_iter().map(render_view).collect(),
            eval_views: eval_cams.into_iter().map(render_view).collect(),
            scene,
        }
    }

    /// Source cameras only (no images) — for workload studies that never
    /// touch pixels.
    pub fn cameras_only(
        kind: DatasetKind,
        res_scale: f32,
        n_source: usize,
    ) -> (Vec<Camera>, Camera) {
        let (bw, bh) = kind.base_resolution();
        let w = ((bw as f32 * res_scale).round() as u32).max(8);
        let h = ((bh as f32 * res_scale).round() as u32).max(8);
        let sources = source_cameras(kind, w, h, n_source);
        let eval = eval_cameras(kind, w, h, 1).pop().expect("one eval camera");
        (sources, eval)
    }
}

fn fov_for(kind: DatasetKind) -> f32 {
    match kind {
        DatasetKind::Llff => 0.85,
        DatasetKind::NerfSynthetic => 0.69,
        DatasetKind::DeepVoxels => 0.55,
    }
}

fn source_cameras(kind: DatasetKind, w: u32, h: u32, n: usize) -> Vec<Camera> {
    let intr = Intrinsics::from_fov(w, h, fov_for(kind));
    (0..n)
        .map(|i| Camera::new(intr, source_pose(kind, i, n)))
        .collect()
}

fn eval_cameras(kind: DatasetKind, w: u32, h: u32, n: usize) -> Vec<Camera> {
    let intr = Intrinsics::from_fov(w, h, fov_for(kind));
    (0..n)
        .map(|i| Camera::new(intr, eval_pose(kind, i, n)))
        .collect()
}

fn source_pose(kind: DatasetKind, i: usize, n: usize) -> Pose {
    match kind {
        DatasetKind::Llff => {
            // Grid of cameras on the z = 6 plane, jittered ±1 in x/y.
            let cols = (n as f32).sqrt().ceil() as usize;
            let row = i / cols;
            let col = i % cols;
            let fx = if cols > 1 {
                col as f32 / (cols - 1) as f32
            } else {
                0.5
            };
            let rows = n.div_ceil(cols);
            let fy = if rows > 1 {
                row as f32 / (rows - 1) as f32
            } else {
                0.5
            };
            let eye = Vec3::new((fx - 0.5) * 2.4, (fy - 0.5) * 1.6, 6.0);
            Pose::look_at(eye, Vec3::new(0.0, 0.0, 0.0), Vec3::Y)
        }
        DatasetKind::NerfSynthetic => {
            // Upper-hemisphere orbit at radius 4.5.
            let phi = i as f32 / n as f32 * std::f32::consts::TAU;
            let elev = 0.35 + 0.25 * ((i % 3) as f32);
            let r = 4.5;
            let eye = Vec3::new(
                r * elev.cos() * phi.cos(),
                r * elev.sin(),
                r * elev.cos() * phi.sin(),
            );
            Pose::look_at(eye, Vec3::ZERO, Vec3::Y)
        }
        DatasetKind::DeepVoxels => {
            // Circular orbit, constant elevation.
            let phi = i as f32 / n as f32 * std::f32::consts::TAU;
            let r = 4.0;
            let eye = Vec3::new(r * phi.cos(), 1.4, r * phi.sin());
            Pose::look_at(eye, Vec3::ZERO, Vec3::Y)
        }
    }
}

fn eval_pose(kind: DatasetKind, i: usize, n: usize) -> Pose {
    // Eval views sit between source views: offset the angular/grid
    // parameterization by half a step.
    match kind {
        DatasetKind::Llff => {
            let f = (i as f32 + 0.5) / n.max(1) as f32;
            let eye = Vec3::new((f - 0.5) * 1.8, 0.3 * (f - 0.5), 6.2);
            Pose::look_at(eye, Vec3::new(0.0, 0.0, 0.0), Vec3::Y)
        }
        DatasetKind::NerfSynthetic => {
            let phi = (i as f32 + 0.5) / n.max(1) as f32 * std::f32::consts::TAU + 0.13;
            let eye = Vec3::new(4.4 * phi.cos(), 1.9, 4.4 * phi.sin());
            Pose::look_at(eye, Vec3::ZERO, Vec3::Y)
        }
        DatasetKind::DeepVoxels => {
            let phi = (i as f32 + 0.7) / n.max(1) as f32 * std::f32::consts::TAU + 0.21;
            let eye = Vec3::new(4.0 * phi.cos(), 1.2, 4.0 * phi.sin());
            Pose::look_at(eye, Vec3::ZERO, Vec3::Y)
        }
    }
}

/// Deterministic hash of a scene name (FNV-1a) mixed with a seed.
fn name_hash(name: &str, seed: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A tiny splitmix64 stream for procedural content (independent of the
/// `rand` crate so `scene` has no RNG dependency).
struct Stream(u64);

impl Stream {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    fn range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.unit()
    }

    fn color(&mut self) -> Vec3 {
        Vec3::new(
            self.range(0.15, 0.95),
            self.range(0.15, 0.95),
            self.range(0.15, 0.95),
        )
    }
}

/// Builds the analytic scene for a `(kind, name)` pair.
pub fn scene_for(kind: DatasetKind, name: &str, seed: u64) -> Scene {
    let mut s = Stream(name_hash(name, seed));
    match kind {
        DatasetKind::Llff => llff_scene(name, &mut s),
        DatasetKind::NerfSynthetic => synthetic_scene(name, &mut s),
        DatasetKind::DeepVoxels => deepvoxels_scene(name, &mut s),
    }
}

fn ground_slab(s: &mut Stream) -> Primitive {
    Primitive::Slab {
        y_top: -1.2,
        thickness: 0.4,
        density: 30.0,
        albedo_a: s.color() * 0.5 + Vec3::splat(0.2),
        albedo_b: s.color() * 0.3 + Vec3::splat(0.1),
        checker: 0.8,
    }
}

fn llff_scene(name: &str, s: &mut Stream) -> Scene {
    let mut prims = vec![ground_slab(s)];
    match name {
        "fern" => {
            // A cluster of thin vertical fronds: stacks of small blobs.
            for stem in 0..9 {
                let base = Vec3::new(s.range(-1.6, 1.6), -1.1, s.range(-0.8, 0.8));
                let green = Vec3::new(s.range(0.1, 0.3), s.range(0.5, 0.9), s.range(0.1, 0.3));
                let height = s.range(1.2, 2.2);
                let lean = Vec3::new(s.range(-0.25, 0.25), 0.0, s.range(-0.25, 0.25));
                for k in 0..7 {
                    let f = k as f32 / 6.0;
                    prims.push(Primitive::Blob {
                        center: base + Vec3::new(0.0, height * f, 0.0) + lean * (f * f * 3.0),
                        radius: 0.16 - 0.012 * k as f32,
                        density: 22.0,
                        albedo: green * (0.8 + 0.2 * f),
                    });
                }
                let _ = stem;
            }
        }
        "fortress" => {
            // A box fort on the table.
            prims.push(Primitive::Box {
                bounds: Aabb::new(Vec3::new(-1.3, -1.2, -0.9), Vec3::new(1.3, -0.2, 0.9)),
                density: 45.0,
                albedo: Vec3::new(0.75, 0.68, 0.5),
            });
            for i in 0..4 {
                let x = -1.2 + 0.8 * i as f32;
                prims.push(Primitive::Box {
                    bounds: Aabb::new(Vec3::new(x, -0.2, -0.3), Vec3::new(x + 0.35, 0.5, 0.3)),
                    density: 45.0,
                    albedo: Vec3::new(0.8, 0.72, 0.55),
                });
            }
        }
        "horns" => {
            // Two tapering curved horns.
            for side in [-1.0f32, 1.0] {
                for k in 0..9 {
                    let f = k as f32 / 8.0;
                    prims.push(Primitive::Blob {
                        center: Vec3::new(
                            side * (0.4 + 1.1 * f),
                            -0.7 + 1.5 * f - 0.5 * f * f,
                            0.2 * (1.0 - f),
                        ),
                        radius: 0.28 * (1.0 - 0.75 * f) + 0.04,
                        density: 35.0,
                        albedo: Vec3::new(0.85, 0.82, 0.7) * (1.0 - 0.3 * f),
                    });
                }
            }
        }
        "trex" => {
            // Spine + skull + legs from blobs.
            for k in 0..11 {
                let f = k as f32 / 10.0;
                prims.push(Primitive::Blob {
                    center: Vec3::new(
                        -1.6 + 3.0 * f,
                        -0.3 + 0.7 * (1.0 - (2.0 * f - 1.0).powi(2)),
                        0.0,
                    ),
                    radius: 0.22 - 0.1 * (f - 0.3).abs(),
                    density: 30.0,
                    albedo: Vec3::new(0.55, 0.5, 0.42),
                });
            }
            // Skull.
            prims.push(Primitive::Blob {
                center: Vec3::new(1.55, 0.55, 0.0),
                radius: 0.3,
                density: 35.0,
                albedo: Vec3::new(0.6, 0.56, 0.46),
            });
            for leg in [-0.9f32, 0.2] {
                prims.push(Primitive::Box {
                    bounds: Aabb::new(
                        Vec3::new(leg, -1.2, -0.25),
                        Vec3::new(leg + 0.25, -0.2, 0.05),
                    ),
                    density: 35.0,
                    albedo: Vec3::new(0.5, 0.46, 0.4),
                });
            }
        }
        _ => {
            // Procedural forward-facing clutter.
            let count = 6 + (s.next_u64() % 6) as usize;
            for _ in 0..count {
                prims.push(Primitive::Blob {
                    center: Vec3::new(s.range(-2.0, 2.0), s.range(-1.0, 1.0), s.range(-0.8, 0.8)),
                    radius: s.range(0.15, 0.5),
                    density: s.range(15.0, 40.0),
                    albedo: s.color(),
                });
            }
        }
    }
    Scene::new(prims, Vec3::new(0.55, 0.65, 0.8))
}

fn synthetic_scene(name: &str, s: &mut Stream) -> Scene {
    let mut prims = Vec::new();
    match name {
        "chair" => {
            prims.push(Primitive::Box {
                bounds: Aabb::new(Vec3::new(-0.7, -0.2, -0.7), Vec3::new(0.7, 0.05, 0.7)),
                density: 45.0,
                albedo: Vec3::new(0.6, 0.35, 0.2),
            });
            prims.push(Primitive::Box {
                bounds: Aabb::new(Vec3::new(-0.7, 0.05, 0.45), Vec3::new(0.7, 1.2, 0.7)),
                density: 45.0,
                albedo: Vec3::new(0.65, 0.4, 0.25),
            });
            for (lx, lz) in [(-0.6, -0.6), (0.35, -0.6), (-0.6, 0.35), (0.35, 0.35)] {
                prims.push(Primitive::Box {
                    bounds: Aabb::new(
                        Vec3::new(lx, -1.1, lz),
                        Vec3::new(lx + 0.25, -0.2, lz + 0.25),
                    ),
                    density: 45.0,
                    albedo: Vec3::new(0.5, 0.3, 0.18),
                });
            }
        }
        "lego" => {
            for level in 0..4 {
                let half = 0.9 - 0.18 * level as f32;
                prims.push(Primitive::Box {
                    bounds: Aabb::new(
                        Vec3::new(-half, -0.9 + 0.45 * level as f32, -half * 0.6),
                        Vec3::new(half, -0.45 + 0.45 * level as f32, half * 0.6),
                    ),
                    density: 50.0,
                    albedo: [
                        Vec3::new(0.85, 0.75, 0.2),
                        Vec3::new(0.3, 0.55, 0.8),
                        Vec3::new(0.8, 0.3, 0.25),
                        Vec3::new(0.35, 0.7, 0.35),
                    ][level],
                });
            }
        }
        "ship" => {
            prims.push(Primitive::Box {
                bounds: Aabb::new(Vec3::new(-1.4, -0.7, -0.45), Vec3::new(1.4, -0.15, 0.45)),
                density: 40.0,
                albedo: Vec3::new(0.45, 0.3, 0.2),
            });
            for k in 0..3 {
                let x = -0.8 + 0.8 * k as f32;
                prims.push(Primitive::Blob {
                    center: Vec3::new(x, 0.5, 0.0),
                    radius: 0.3,
                    density: 18.0,
                    albedo: Vec3::new(0.9, 0.9, 0.85),
                });
            }
        }
        "mic" => {
            prims.push(Primitive::Sphere {
                center: Vec3::new(0.0, 0.7, 0.0),
                radius: 0.45,
                density: 45.0,
                albedo: Vec3::new(0.35, 0.35, 0.4),
            });
            prims.push(Primitive::Box {
                bounds: Aabb::new(Vec3::new(-0.08, -1.0, -0.08), Vec3::new(0.08, 0.4, 0.08)),
                density: 45.0,
                albedo: Vec3::new(0.25, 0.25, 0.28),
            });
        }
        "materials" => {
            for i in 0..3 {
                for j in 0..3 {
                    prims.push(Primitive::Sphere {
                        center: Vec3::new(-0.9 + 0.9 * i as f32, -0.4, -0.9 + 0.9 * j as f32),
                        radius: 0.3,
                        density: 50.0,
                        albedo: s.color(),
                    });
                }
            }
        }
        _ => {
            // drums / ficus / hotdog / anything else: seeded blob-and-box
            // arrangement of comparable occupancy.
            let count = 5 + (s.next_u64() % 5) as usize;
            for _ in 0..count {
                if s.unit() < 0.5 {
                    prims.push(Primitive::Blob {
                        center: Vec3::new(
                            s.range(-1.0, 1.0),
                            s.range(-0.8, 0.9),
                            s.range(-1.0, 1.0),
                        ),
                        radius: s.range(0.2, 0.5),
                        density: s.range(20.0, 45.0),
                        albedo: s.color(),
                    });
                } else {
                    let c = Vec3::new(s.range(-0.9, 0.9), s.range(-0.8, 0.6), s.range(-0.9, 0.9));
                    let e = Vec3::new(s.range(0.15, 0.5), s.range(0.15, 0.5), s.range(0.15, 0.5));
                    prims.push(Primitive::Box {
                        bounds: Aabb::new(c - e, c + e),
                        density: s.range(25.0, 50.0),
                        albedo: s.color(),
                    });
                }
            }
        }
    }
    Scene::new(prims, Vec3::splat(1.0))
}

fn deepvoxels_scene(name: &str, s: &mut Stream) -> Scene {
    let mut prims = Vec::new();
    match name {
        "cube" => prims.push(Primitive::Box {
            bounds: Aabb::cube(Vec3::ZERO, 0.8),
            density: 55.0,
            albedo: Vec3::new(0.7, 0.25, 0.2),
        }),
        "vase" => {
            for k in 0..6 {
                let f = k as f32 / 5.0;
                prims.push(Primitive::Blob {
                    center: Vec3::new(0.0, -0.8 + 1.6 * f, 0.0),
                    radius: 0.28 + 0.22 * (std::f32::consts::PI * f).sin(),
                    density: 40.0,
                    albedo: Vec3::new(0.3, 0.45, 0.75),
                });
            }
        }
        "pedestal" => {
            prims.push(Primitive::Box {
                bounds: Aabb::new(Vec3::new(-0.8, -1.0, -0.8), Vec3::new(0.8, -0.5, 0.8)),
                density: 55.0,
                albedo: Vec3::new(0.6, 0.6, 0.62),
            });
            prims.push(Primitive::Box {
                bounds: Aabb::new(Vec3::new(-0.35, -0.5, -0.35), Vec3::new(0.35, 0.6, 0.35)),
                density: 55.0,
                albedo: Vec3::new(0.68, 0.68, 0.7),
            });
            prims.push(Primitive::Sphere {
                center: Vec3::new(0.0, 0.95, 0.0),
                radius: 0.35,
                density: 55.0,
                albedo: Vec3::new(0.75, 0.7, 0.4),
            });
        }
        _ => {
            // chair & fallback: box composition.
            prims.push(Primitive::Box {
                bounds: Aabb::new(Vec3::new(-0.6, -0.3, -0.6), Vec3::new(0.6, 0.0, 0.6)),
                density: 55.0,
                albedo: s.color(),
            });
            prims.push(Primitive::Box {
                bounds: Aabb::new(Vec3::new(-0.6, 0.0, 0.35), Vec3::new(0.6, 0.9, 0.6)),
                density: 55.0,
                albedo: s.color(),
            });
        }
    }
    Scene::new(prims, Vec3::splat(0.95))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;

    #[test]
    fn build_produces_views() {
        let ds = Dataset::build(DatasetKind::NerfSynthetic, "lego", 0.02, 4, 2, 24, 1);
        assert_eq!(ds.source_views.len(), 4);
        assert_eq!(ds.eval_views.len(), 2);
        assert_eq!(ds.source_views[0].image.width(), 16);
    }

    #[test]
    fn scene_names_deterministic() {
        let a = scene_for(DatasetKind::Llff, "fern", 7);
        let b = scene_for(DatasetKind::Llff, "fern", 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_scenes_differ() {
        let a = scene_for(DatasetKind::Llff, "fern", 7);
        let b = scene_for(DatasetKind::Llff, "fortress", 7);
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ_for_procedural() {
        let a = scene_for(DatasetKind::NerfSynthetic, "drums", 1);
        let b = scene_for(DatasetKind::NerfSynthetic, "drums", 2);
        assert_ne!(a, b);
    }

    #[test]
    fn all_named_scenes_build_and_render() {
        for kind in DatasetKind::all() {
            for name in kind.scene_names().iter().take(4) {
                let ds = Dataset::build(kind, name, 0.02, 2, 1, 12, 3);
                let img = &ds.eval_views[0].image;
                assert!(img.as_slice().iter().all(|v| v.is_finite()));
                // The render must not be blank: some pixel variation.
                let mean = img.mean();
                let var: f32 = img
                    .as_slice()
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let m = [mean.x, mean.y, mean.z][i % 3];
                        (v - m) * (v - m)
                    })
                    .sum::<f32>()
                    / img.as_slice().len() as f32;
                assert!(var > 1e-5, "{kind:?}/{name} renders blank (var={var})");
            }
        }
    }

    #[test]
    fn source_views_see_same_scene() {
        // Different source views of the same scene must correlate: the
        // PSNR between two *different* viewpoints is low, but both must
        // differ from background-only frames.
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 3, 1, 24, 2);
        let bg = Image::from_fn(
            ds.source_views[0].image.width(),
            ds.source_views[0].image.height(),
            |_, _| ds.scene.background,
        );
        for v in &ds.source_views {
            let p = psnr(&v.image, &bg);
            assert!(p < 40.0, "view is background-only (psnr={p})");
        }
    }

    #[test]
    fn base_resolutions_match_paper() {
        assert_eq!(DatasetKind::Llff.base_resolution(), (1008, 756));
        assert_eq!(DatasetKind::NerfSynthetic.base_resolution(), (800, 800));
        assert_eq!(DatasetKind::DeepVoxels.base_resolution(), (512, 512));
    }

    #[test]
    fn llff_occupancy_is_sparse() {
        // The premise of coarse-then-focus sampling: most of the volume
        // is empty.
        let scene = scene_for(DatasetKind::Llff, "fern", 7);
        let occ = scene.occupancy(16, 0.5);
        assert!(occ < 0.5, "fern occupancy = {occ}");
    }

    #[test]
    fn cameras_only_matches_build() {
        let (sources, eval) = Dataset::cameras_only(DatasetKind::Llff, 0.02, 5);
        assert_eq!(sources.len(), 5);
        assert!(eval.intrinsics.width >= 8);
    }

    #[test]
    #[should_panic(expected = "res_scale")]
    fn rejects_zero_scale() {
        let _ = Dataset::build(DatasetKind::Llff, "fern", 0.0, 2, 1, 8, 1);
    }
}
