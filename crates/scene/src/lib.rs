//! Analytic volumetric scenes, ground-truth rendering, dataset analogs
//! and image metrics for the Gen-NeRF reproduction.
//!
//! The paper evaluates on LLFF, NeRF-Synthetic and DeepVoxels — datasets
//! of posed photographs plus trained models. This crate substitutes
//! *analytic* volumetric scenes (see `DESIGN.md` §2): density and albedo
//! are closed-form functions of position, so
//!
//! * source views and ground-truth target views are rendered exactly by
//!   [`renderer::render`],
//! * per-point ground-truth density (needed to train ray modules and to
//!   validate sampling strategies) is available everywhere,
//! * occupancy statistics — which drive every sparsity result in the
//!   paper — are controlled and measurable.
//!
//! Three [`datasets::DatasetKind`]s mirror the paper's three evaluation
//! suites (forward-facing LLFF scenes at 1008×756, NeRF-Synthetic
//! 360° objects at 800×800, DeepVoxels Lambertian objects at 512×512),
//! each at a configurable resolution scale.
//!
//! # Example
//!
//! ```
//! use gen_nerf_scene::datasets::{Dataset, DatasetKind};
//!
//! // A small fern-analog for tests: 1/8 resolution, 3 source views.
//! let ds = Dataset::build(DatasetKind::Llff, "fern", 0.125, 3, 1, 32, 7);
//! assert_eq!(ds.source_views.len(), 3);
//! let view = &ds.eval_views[0];
//! assert!(view.image.width() > 0);
//! ```

pub mod datasets;
pub mod field;
pub mod image;
pub mod metrics;
pub mod renderer;

pub use datasets::{Dataset, DatasetKind, View};
pub use field::Scene;
pub use image::Image;
