//! RGB image buffers with bilinear sampling.

use gen_nerf_geometry::bilinear::BilinearFootprint;
use gen_nerf_geometry::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// A dense RGB image with `f32` channels in `[0, 1]`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: u32,
    height: u32,
    data: Vec<f32>, // rgb interleaved
}

impl Image {
    /// A black image.
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            data: vec![0.0; (width * height * 3) as usize],
        }
    }

    /// Reshapes the buffer to `width`×`height` pixels of black,
    /// reusing the existing allocation when its capacity suffices —
    /// the frame-buffer recycling entry used by the render server so a
    /// steady-state serving loop stops paying one image allocation per
    /// frame.
    pub fn reset(&mut self, width: u32, height: u32) {
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.resize((width * height * 3) as usize, 0.0);
    }

    /// Builds an image by evaluating `f(x, y)` per pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> Vec3) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of pixels.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Vec3 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = ((y * self.width + x) * 3) as usize;
        Vec3::new(self.data[i], self.data[i + 1], self.data[i + 2])
    }

    /// Writes pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, rgb: Vec3) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = ((y * self.width + x) * 3) as usize;
        self.data[i] = rgb.x;
        self.data[i + 1] = rgb.y;
        self.data[i + 2] = rgb.z;
    }

    /// Bilinearly samples continuous pixel coordinates (border-clamped).
    pub fn sample(&self, uv: Vec2) -> Vec3 {
        let fp = BilinearFootprint::at(uv, self.width, self.height).expect("image is non-empty");
        let mut acc = Vec3::ZERO;
        for t in fp.taps {
            acc += self.get(t.x, t.y) * t.weight;
        }
        acc
    }

    /// Raw interleaved RGB data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Per-channel mean.
    pub fn mean(&self) -> Vec3 {
        let mut acc = Vec3::ZERO;
        for i in (0..self.data.len()).step_by(3) {
            acc += Vec3::new(self.data[i], self.data[i + 1], self.data[i + 2]);
        }
        acc / self.pixel_count() as f32
    }

    /// Luminance (Rec. 601) plane, row-major.
    pub fn luminance(&self) -> Vec<f32> {
        (0..self.pixel_count())
            .map(|i| {
                let p = i * 3;
                0.299 * self.data[p] + 0.587 * self.data[p + 1] + 0.114 * self.data[p + 2]
            })
            .collect()
    }

    /// Box-filtered 2× downsample (both dimensions halved, rounding
    /// down; odd trailing rows/columns are dropped).
    ///
    /// Returns `None` once either dimension would reach zero.
    pub fn downsample2(&self) -> Option<Self> {
        let (w, h) = (self.width / 2, self.height / 2);
        if w == 0 || h == 0 {
            return None;
        }
        let mut out = Self::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let acc = self.get(2 * x, 2 * y)
                    + self.get(2 * x + 1, 2 * y)
                    + self.get(2 * x, 2 * y + 1)
                    + self.get(2 * x + 1, 2 * y + 1);
                out.set(x, y, acc * 0.25);
            }
        }
        Some(out)
    }

    /// Writes a binary PPM (P6) byte buffer — handy for eyeballing
    /// example output without an image dependency.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for v in &self.data {
            out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_reuses_capacity_and_clears() {
        let mut img = Image::from_fn(8, 8, |_, _| Vec3::ONE);
        let cap = img.data.capacity();
        img.reset(4, 4);
        assert_eq!((img.width(), img.height()), (4, 4));
        assert_eq!(img.data.capacity(), cap, "reset reallocated");
        assert_eq!(img.get(0, 0), Vec3::ZERO);
        img.reset(8, 8);
        assert_eq!(
            img.data.capacity(),
            cap,
            "regrow within capacity reallocated"
        );
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = Image::new(4, 3);
        img.set(2, 1, Vec3::new(0.1, 0.5, 0.9));
        let p = img.get(2, 1);
        assert!((p - Vec3::new(0.1, 0.5, 0.9)).length() < 1e-6);
        assert_eq!(img.get(0, 0), Vec3::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = Image::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn sample_at_center_matches_get() {
        let img = Image::from_fn(8, 8, |x, y| Vec3::new(x as f32 / 8.0, y as f32 / 8.0, 0.5));
        let direct = img.get(3, 5);
        let sampled = img.sample(Vec2::new(3.5, 5.5));
        assert!((direct - sampled).length() < 1e-6);
    }

    #[test]
    fn sample_interpolates_between_pixels() {
        let mut img = Image::new(2, 1);
        img.set(0, 0, Vec3::ZERO);
        img.set(1, 0, Vec3::ONE);
        let mid = img.sample(Vec2::new(1.0, 0.5));
        assert!((mid - Vec3::splat(0.5)).length() < 1e-6);
    }

    #[test]
    fn mean_of_constant_image() {
        let img = Image::from_fn(5, 5, |_, _| Vec3::new(0.25, 0.5, 0.75));
        assert!((img.mean() - Vec3::new(0.25, 0.5, 0.75)).length() < 1e-6);
    }

    #[test]
    fn luminance_white_is_one() {
        let img = Image::from_fn(2, 2, |_, _| Vec3::ONE);
        for l in img.luminance() {
            assert!((l - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = Image::from_fn(8, 6, |x, _| Vec3::splat(x as f32));
        let d = img.downsample2().unwrap();
        assert_eq!((d.width(), d.height()), (4, 3));
        // Average of columns 0 and 1.
        assert!((d.get(0, 0).x - 0.5).abs() < 1e-6);
    }

    #[test]
    fn downsample_to_nothing_is_none() {
        let img = Image::new(1, 1);
        assert!(img.downsample2().is_none());
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(3, 2);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 3 * 2 * 3);
    }
}
