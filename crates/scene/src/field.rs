//! Analytic density/color fields — the ground-truth scenes.
//!
//! A [`Scene`] is a sum of primitive density fields with per-primitive
//! albedo. Density is in "opacity per unit length" units consumed by
//! the volume-rendering quadrature (paper Eq. 2); color is albedo with
//! a cheap analytic shading term plus a mild view-dependent component
//! (so that view interpolation is non-trivial, as with real scenes).

use gen_nerf_geometry::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// One density primitive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Primitive {
    /// Gaussian density blob: `σ(p) = density · exp(−½‖p−c‖²/r²)`,
    /// truncated at `3r`.
    Blob {
        /// Center.
        center: Vec3,
        /// Standard-deviation radius.
        radius: f32,
        /// Peak density.
        density: f32,
        /// Base color.
        albedo: Vec3,
    },
    /// Solid sphere with soft shell falloff.
    Sphere {
        /// Center.
        center: Vec3,
        /// Radius.
        radius: f32,
        /// Interior density.
        density: f32,
        /// Base color.
        albedo: Vec3,
    },
    /// Axis-aligned solid box with soft edges.
    Box {
        /// Bounds.
        bounds: Aabb,
        /// Interior density.
        density: f32,
        /// Base color.
        albedo: Vec3,
    },
    /// Horizontal slab (ground plane) with checkerboard albedo.
    Slab {
        /// Top surface height (y).
        y_top: f32,
        /// Slab thickness.
        thickness: f32,
        /// Interior density.
        density: f32,
        /// Checker color A.
        albedo_a: Vec3,
        /// Checker color B.
        albedo_b: Vec3,
        /// Checker period in world units.
        checker: f32,
    },
}

impl Primitive {
    /// Density contribution at `p`.
    pub fn density(&self, p: Vec3) -> f32 {
        match *self {
            Primitive::Blob {
                center,
                radius,
                density,
                ..
            } => {
                let d2 = (p - center).length_squared();
                let r2 = radius * radius;
                if d2 > 9.0 * r2 {
                    0.0
                } else {
                    density * (-0.5 * d2 / r2).exp()
                }
            }
            Primitive::Sphere {
                center,
                radius,
                density,
                ..
            } => {
                let d = (p - center).length();
                if d <= radius {
                    density
                } else if d <= radius * 1.1 {
                    density * (1.0 - (d - radius) / (radius * 0.1))
                } else {
                    0.0
                }
            }
            Primitive::Box {
                ref bounds,
                density,
                ..
            } => {
                if bounds.contains(p) {
                    density
                } else {
                    0.0
                }
            }
            Primitive::Slab {
                y_top,
                thickness,
                density,
                ..
            } => {
                if p.y <= y_top && p.y >= y_top - thickness {
                    density
                } else {
                    0.0
                }
            }
        }
    }

    /// Albedo at `p` (only meaningful where density > 0).
    pub fn albedo(&self, p: Vec3) -> Vec3 {
        match *self {
            Primitive::Blob { albedo, .. } | Primitive::Sphere { albedo, .. } => albedo,
            Primitive::Box { albedo, .. } => albedo,
            Primitive::Slab {
                albedo_a,
                albedo_b,
                checker,
                ..
            } => {
                let cx = (p.x / checker).floor() as i64;
                let cz = (p.z / checker).floor() as i64;
                if (cx + cz).rem_euclid(2) == 0 {
                    albedo_a
                } else {
                    albedo_b
                }
            }
        }
    }

    /// A bounding box covering the primitive's support.
    pub fn bounds(&self) -> Aabb {
        match *self {
            Primitive::Blob { center, radius, .. } => Aabb::cube(center, radius * 3.0),
            Primitive::Sphere { center, radius, .. } => Aabb::cube(center, radius * 1.1),
            Primitive::Box { ref bounds, .. } => *bounds,
            Primitive::Slab {
                y_top, thickness, ..
            } => Aabb::new(
                Vec3::new(-100.0, y_top - thickness, -100.0),
                Vec3::new(100.0, y_top, 100.0),
            ),
        }
    }
}

/// An analytic volumetric scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Primitives, composited by summing densities and density-weighting
    /// albedos.
    pub primitives: Vec<Primitive>,
    /// Background color returned by rays that exit without saturating.
    pub background: Vec3,
    /// Scene bounds (rays are clipped against this).
    pub bounds: Aabb,
}

impl Scene {
    /// Creates a scene; bounds are the union of primitive bounds plus a
    /// margin, clamped to a sane region.
    ///
    /// # Panics
    ///
    /// Panics when `primitives` is empty.
    pub fn new(primitives: Vec<Primitive>, background: Vec3) -> Self {
        assert!(!primitives.is_empty(), "scene needs at least one primitive");
        let mut bounds = primitives[0].bounds();
        for p in &primitives[1..] {
            bounds = bounds.union(&p.bounds());
        }
        // Slabs inflate bounds; clamp to a reasonable region around the
        // non-slab content.
        let clamped = Aabb::new(
            bounds.min.max(Vec3::splat(-12.0)),
            bounds.max.min(Vec3::splat(12.0)),
        );
        Self {
            primitives,
            background,
            bounds: clamped.expanded(0.5),
        }
    }

    /// Total density at `p`.
    pub fn density(&self, p: Vec3) -> f32 {
        self.primitives.iter().map(|prim| prim.density(p)).sum()
    }

    /// Density-weighted albedo at `p` (background color where empty).
    pub fn albedo(&self, p: Vec3) -> Vec3 {
        let mut total = 0.0;
        let mut acc = Vec3::ZERO;
        for prim in &self.primitives {
            let d = prim.density(p);
            if d > 0.0 {
                acc += prim.albedo(p) * d;
                total += d;
            }
        }
        if total > 0.0 {
            acc / total
        } else {
            self.background
        }
    }

    /// Emitted color at `p` viewed along `dir`: albedo with analytic
    /// height shading and a small view-dependent highlight.
    pub fn color(&self, p: Vec3, dir: Vec3) -> Vec3 {
        let base = self.albedo(p);
        // Height-based shading stands in for diffuse lighting.
        let extent = (self.bounds.max.y - self.bounds.min.y).max(1e-3);
        let shade = 0.7 + 0.3 * ((p.y - self.bounds.min.y) / extent).clamp(0.0, 1.0);
        // Mild view-dependence: highlight when looking along -y (light
        // from above), giving non-Lambertian behaviour.
        let light = Vec3::new(0.3, -0.9, 0.3).normalized();
        let spec = dir.dot(light).max(0.0).powi(4) * 0.15;
        (base * shade + Vec3::splat(spec)).clamp(0.0, 1.0)
    }

    /// Fraction of `n³` stratified probe points inside the bounds that
    /// carry density above `threshold` — the scene's *occupancy*, the
    /// sparsity statistic the paper's coarse-then-focus sampling
    /// exploits.
    pub fn occupancy(&self, n: usize, threshold: f32) -> f32 {
        let mut hits = 0usize;
        let ext = self.bounds.extent();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let p = self.bounds.min
                        + Vec3::new(
                            ext.x * (i as f32 + 0.5) / n as f32,
                            ext.y * (j as f32 + 0.5) / n as f32,
                            ext.z * (k as f32 + 0.5) / n as f32,
                        );
                    if self.density(p) > threshold {
                        hits += 1;
                    }
                }
            }
        }
        hits as f32 / (n * n * n) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_at_origin() -> Primitive {
        Primitive::Blob {
            center: Vec3::ZERO,
            radius: 1.0,
            density: 4.0,
            albedo: Vec3::new(1.0, 0.0, 0.0),
        }
    }

    #[test]
    fn blob_density_peaks_at_center() {
        let b = blob_at_origin();
        assert!((b.density(Vec3::ZERO) - 4.0).abs() < 1e-6);
        assert!(b.density(Vec3::new(0.5, 0.0, 0.0)) < 4.0);
        assert_eq!(b.density(Vec3::new(4.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn sphere_uniform_inside() {
        let s = Primitive::Sphere {
            center: Vec3::ZERO,
            radius: 1.0,
            density: 2.0,
            albedo: Vec3::ONE,
        };
        assert_eq!(s.density(Vec3::new(0.5, 0.0, 0.0)), 2.0);
        assert_eq!(s.density(Vec3::new(2.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn box_density_inside_only() {
        let b = Primitive::Box {
            bounds: Aabb::cube(Vec3::ZERO, 1.0),
            density: 3.0,
            albedo: Vec3::ONE,
        };
        assert_eq!(b.density(Vec3::ZERO), 3.0);
        assert_eq!(b.density(Vec3::new(1.5, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn slab_checker_alternates() {
        let s = Primitive::Slab {
            y_top: 0.0,
            thickness: 0.5,
            density: 5.0,
            albedo_a: Vec3::ONE,
            albedo_b: Vec3::ZERO,
            checker: 1.0,
        };
        let a = s.albedo(Vec3::new(0.5, -0.1, 0.5));
        let b = s.albedo(Vec3::new(1.5, -0.1, 0.5));
        assert!((a - b).length() > 0.5);
    }

    #[test]
    fn scene_density_sums() {
        let scene = Scene::new(vec![blob_at_origin(), blob_at_origin()], Vec3::splat(0.1));
        assert!((scene.density(Vec3::ZERO) - 8.0).abs() < 1e-5);
    }

    #[test]
    fn scene_albedo_blends_by_density() {
        let red = Primitive::Blob {
            center: Vec3::ZERO,
            radius: 1.0,
            density: 3.0,
            albedo: Vec3::new(1.0, 0.0, 0.0),
        };
        let blue = Primitive::Blob {
            center: Vec3::ZERO,
            radius: 1.0,
            density: 1.0,
            albedo: Vec3::new(0.0, 0.0, 1.0),
        };
        let scene = Scene::new(vec![red, blue], Vec3::ZERO);
        let a = scene.albedo(Vec3::ZERO);
        assert!((a.x - 0.75).abs() < 1e-5);
        assert!((a.z - 0.25).abs() < 1e-5);
    }

    #[test]
    fn empty_region_returns_background() {
        let scene = Scene::new(vec![blob_at_origin()], Vec3::splat(0.3));
        let a = scene.albedo(Vec3::new(8.0, 8.0, 8.0));
        assert!((a - Vec3::splat(0.3)).length() < 1e-6);
    }

    #[test]
    fn color_is_clamped() {
        let scene = Scene::new(vec![blob_at_origin()], Vec3::ZERO);
        let c = scene.color(Vec3::ZERO, Vec3::new(0.3, -0.9, 0.3).normalized());
        assert!(c.x <= 1.0 && c.y <= 1.0 && c.z <= 1.0);
        assert!(c.x >= 0.0);
    }

    #[test]
    fn color_view_dependent() {
        let scene = Scene::new(vec![blob_at_origin()], Vec3::ZERO);
        let c1 = scene.color(Vec3::ZERO, Vec3::new(0.3, -0.9, 0.3).normalized());
        let c2 = scene.color(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        assert!((c1 - c2).length() > 1e-3, "no view dependence");
    }

    #[test]
    fn occupancy_of_small_blob_is_sparse() {
        let scene = Scene::new(vec![blob_at_origin()], Vec3::ZERO);
        let occ = scene.occupancy(12, 0.1);
        assert!(occ > 0.0 && occ < 0.5, "occupancy = {occ}");
    }

    #[test]
    #[should_panic(expected = "at least one primitive")]
    fn empty_scene_rejected() {
        let _ = Scene::new(vec![], Vec3::ZERO);
    }

    #[test]
    fn bounds_cover_primitives() {
        let scene = Scene::new(
            vec![
                blob_at_origin(),
                Primitive::Sphere {
                    center: Vec3::new(3.0, 0.0, 0.0),
                    radius: 0.5,
                    density: 1.0,
                    albedo: Vec3::ONE,
                },
            ],
            Vec3::ZERO,
        );
        assert!(scene.bounds.contains(Vec3::ZERO));
        assert!(scene.bounds.contains(Vec3::new(3.0, 0.0, 0.0)));
    }
}
