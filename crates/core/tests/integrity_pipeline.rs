//! End-to-end output-integrity guards at the pipeline level: the
//! fallible render APIs, the fault-injection hooks and the coarse
//! frame digest.
//!
//! These tests flip the process-wide integrity mode and arm
//! process-wide fault injection (a GEMM perturbation, a pixel
//! poison), so they live in their own test binary — away from the
//! bitwise regression suites of the unit tests — and serialize on a
//! local lock so they cannot corrupt each other's renders.

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::features::{prepare_sources, SourceViewData};
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::{self, RenderError, RenderStats, Renderer};
use gen_nerf_nn::kernels::integrity::{self, IntegrityMode};
use gen_nerf_scene::datasets::{Dataset, DatasetKind};
use gen_nerf_scene::Image;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn setup() -> (Dataset, Vec<SourceViewData>, GenNerfModel) {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 4, 1, 24, 5);
    let sources = prepare_sources(&ds.source_views);
    let model = GenNerfModel::new(ModelConfig::fast());
    (ds, sources, model)
}

fn bits(img: &Image) -> Vec<u32> {
    img.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn full_checking_is_clean_and_bitwise_identical() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (ds, sources, model) = setup();
    let r = Renderer::new(
        &model,
        &sources,
        SamplingStrategy::coarse_then_focus(8, 8),
        ds.scene.bounds,
        ds.scene.background,
    );
    let cam = &ds.eval_views[0].camera;

    integrity::set_mode(IntegrityMode::Off);
    let (baseline, base_stats) = r.render(cam);

    // Checks run (the counter advances) but a clean render passes and
    // verification never perturbs the output: zero false positives,
    // bit-for-bit the unchecked image.
    integrity::set_mode(IntegrityMode::Full);
    let checks_before = integrity::check_stats().0;
    let (checked, checked_stats) = r.try_render(cam).expect("clean render must verify");
    assert!(integrity::check_stats().0 > checks_before);
    assert_eq!(bits(&baseline), bits(&checked));
    assert_eq!(base_stats.points, checked_stats.points);
    integrity::set_mode(IntegrityMode::Off);
}

#[test]
fn gemm_corruption_is_detected_and_retry_matches_unfaulted() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (ds, sources, model) = setup();
    let r = Renderer::new(
        &model,
        &sources,
        SamplingStrategy::coarse_then_focus(8, 8),
        ds.scene.bounds,
        ds.scene.background,
    );
    let cam = &ds.eval_views[0].camera;

    integrity::set_mode(IntegrityMode::Full);
    let (unfaulted, _) = r.try_render(cam).expect("clean render must verify");

    integrity::arm_corruption(0x5eed);
    let err = r
        .try_render(cam)
        .expect_err("injected GEMM fault must be detected");
    assert!(
        matches!(err, RenderError::Corrupt { stage: "gemm", .. }),
        "unexpected verdict: {err}"
    );
    assert!(
        !integrity::disarm_corruption(),
        "fault must have been consumed"
    );

    // The fault was transient: the retry verifies and reproduces the
    // never-faulted image bit for bit.
    let (retried, _) = r.try_render(cam).expect("retry after transient fault");
    assert_eq!(bits(&unfaulted), bits(&retried));
    integrity::set_mode(IntegrityMode::Off);
}

#[test]
fn pixel_corruption_trips_the_composite_sentinel() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (ds, sources, model) = setup();
    let r = Renderer::new(
        &model,
        &sources,
        SamplingStrategy::Uniform { n: 8 },
        ds.scene.bounds,
        ds.scene.background,
    );
    let cam = &ds.eval_views[0].camera;

    integrity::set_mode(IntegrityMode::Full);
    let (unfaulted, _) = r.try_render(cam).expect("clean render must verify");

    pipeline::arm_pixel_corruption(0xfeed_beef);
    let err = r
        .try_render(cam)
        .expect_err("poisoned pixel must trip the sentinel");
    match &err {
        RenderError::Corrupt { stage, detail } => {
            assert_eq!(*stage, "sentinel");
            assert!(detail.contains("composite boundary"), "detail: {detail}");
        }
    }
    assert!(
        !pipeline::disarm_pixel_corruption(),
        "fault must have been consumed"
    );

    let (retried, _) = r.try_render(cam).expect("retry after transient fault");
    assert_eq!(bits(&unfaulted), bits(&retried));
    integrity::set_mode(IntegrityMode::Off);
}

#[test]
fn integrity_off_publishes_injected_poison_unchecked() {
    // The knob matters: with checking off, the same injected pixel
    // fault sails through — no scan runs, the poisoned image is
    // published and the fallible API reports Ok.
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (ds, sources, model) = setup();
    let r = Renderer::new(
        &model,
        &sources,
        SamplingStrategy::Uniform { n: 8 },
        ds.scene.bounds,
        ds.scene.background,
    );
    let cam = &ds.eval_views[0].camera;

    integrity::set_mode(IntegrityMode::Off);
    pipeline::arm_pixel_corruption(7);
    let (img, _) = r.try_render(cam).expect("off mode never fails a frame");
    assert!(
        !pipeline::disarm_pixel_corruption(),
        "fault must have been consumed"
    );
    assert!(
        img.as_slice().iter().any(|v| v.is_nan()),
        "the poison should have reached the published image"
    );
}

#[test]
fn coarse_frame_digest_rejects_poisoned_payload() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (ds, sources, model) = setup();
    let r = Renderer::new(
        &model,
        &sources,
        SamplingStrategy::coarse_then_focus(8, 8),
        ds.scene.bounds,
        ds.scene.background,
    );
    integrity::set_mode(IntegrityMode::Off);

    let cameras = std::slice::from_ref(&ds.eval_views[0].camera);
    let mut images = vec![Image::new(0, 0)];
    let mut stats = vec![RenderStats::default()];
    let fresh = r.render_frames_cached(cameras, &[None], &mut images, &mut stats);
    let mut cf = fresh
        .into_iter()
        .next()
        .flatten()
        .expect("uncached ctf render exports a coarse frame");

    // Sealed at export; a clone round-trips.
    assert!(cf.integrity_ok());
    assert!(cf.clone().integrity_ok());
    let sealed = cf.checksum();

    // Poisoned payload fails verification against the untouched seal.
    cf.corrupt_for_chaos(12345);
    assert!(!cf.integrity_ok());
    assert_eq!(cf.checksum(), sealed, "corruption must not reseal");
}
