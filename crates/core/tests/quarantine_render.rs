//! The quarantine satellite at the render level: after a backend is
//! quarantined, every render falls back to the scalar kernels and the
//! output is bit-for-bit what a scalar-backend render produces.
//!
//! Own test binary: quarantining flips the process-global active
//! kernel backend, which must not race the dispatched bitwise
//! regression tests of other suites.

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::features::prepare_sources;
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::Renderer;
use gen_nerf_nn::kernels::{self, integrity, Backend};
use gen_nerf_scene::datasets::{Dataset, DatasetKind};

#[test]
fn post_quarantine_render_is_bitwise_a_scalar_render() {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 4, 1, 24, 5);
    let sources = prepare_sources(&ds.source_views);
    let model = GenNerfModel::new(ModelConfig::fast());
    let r = Renderer::new(
        &model,
        &sources,
        SamplingStrategy::coarse_then_focus(8, 8),
        ds.scene.bounds,
        ds.scene.background,
    );
    let cam = &ds.eval_views[0].camera;

    // Reference: an explicit scalar-backend render.
    assert_eq!(kernels::set_active(Backend::Scalar), Backend::Scalar);
    let (scalar_img, scalar_stats) = r.render(cam);

    // Put the SIMD backend in charge where the host has it, then
    // quarantine it: the latch must demote the active kernel
    // immediately, without waiting for a new dispatch decision.
    if Backend::Avx2.available() {
        assert_eq!(kernels::set_active(Backend::Avx2), Backend::Avx2);
    }
    integrity::quarantine(Backend::Avx2);
    assert_eq!(kernels::active_backend(), Backend::Scalar);

    let (img, stats) = r.render(cam);
    let a: Vec<u32> = scalar_img.as_slice().iter().map(|v| v.to_bits()).collect();
    let b: Vec<u32> = img.as_slice().iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        a, b,
        "post-quarantine render must match the scalar render bitwise"
    );
    assert_eq!(scalar_stats.points, stats.points);
    assert_eq!(scalar_stats.flops.total(), stats.flops.total());

    integrity::clear_quarantine_for_tests();
    kernels::set_active(Backend::from_env());
}
