//! Rendering-quality evaluation (PSNR / LPIPS-proxy / MFLOPs-per-pixel
//! — the metrics of Fig. 9 and Tabs. 2–3).

use crate::config::SamplingStrategy;
use crate::features::prepare_sources;
use crate::model::GenNerfModel;
use crate::pipeline::Renderer;
use gen_nerf_scene::metrics::{lpips_proxy, psnr, ssim};
use gen_nerf_scene::Dataset;
use serde::{Deserialize, Serialize};

/// Averaged evaluation metrics over a dataset's held-out views.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Peak signal-to-noise ratio, dB (higher is better).
    pub psnr: f32,
    /// LPIPS proxy (lower is better; see `gen_nerf_scene::metrics`).
    pub lpips: f32,
    /// Global SSIM (higher is better).
    pub ssim: f32,
    /// Measured MFLOPs per rendered pixel.
    pub mflops_per_pixel: f64,
    /// Measured average sampled points per ray (coarse + focused).
    pub avg_points_per_ray: f64,
    /// Measured feature fetches per ray.
    pub fetches_per_ray: f64,
}

/// Renders every held-out view of `dataset` with `strategy` and
/// averages the metrics.
///
/// `max_views` restricts the number of source views conditioned on
/// (the Tab. 2 "·10/6/4 source views" rows); `None` uses all.
///
/// Rendering goes through the batch-parallel engine
/// ([`Renderer`]), which shares the model across worker threads via
/// its `&self` inference path — no clone, no mutation.
///
/// # Panics
///
/// Panics when the dataset has no eval views.
pub fn evaluate(
    model: &GenNerfModel,
    dataset: &Dataset,
    strategy: &SamplingStrategy,
    max_views: Option<usize>,
) -> EvalResult {
    evaluate_with_threads(
        model,
        dataset,
        strategy,
        max_views,
        gen_nerf_parallel::num_threads(),
    )
}

/// [`evaluate`] with a pinned render worker count.
///
/// Results are identical for every `threads` value; sweep harnesses
/// that already parallelize *over* evaluations use this to split the
/// thread budget instead of nesting full render pools.
///
/// # Panics
///
/// Panics when the dataset has no eval views.
pub fn evaluate_with_threads(
    model: &GenNerfModel,
    dataset: &Dataset,
    strategy: &SamplingStrategy,
    max_views: Option<usize>,
    threads: usize,
) -> EvalResult {
    assert!(
        !dataset.eval_views.is_empty(),
        "dataset has no evaluation views"
    );
    let all_sources = prepare_sources(&dataset.source_views);
    let n_views = max_views
        .unwrap_or(all_sources.len())
        .min(all_sources.len())
        .max(1);
    let sources = &all_sources[..n_views];

    let mut result = EvalResult::default();
    let mut total_rays = 0u64;
    let mut total_flops = 0u64;
    let mut total_points = 0u64;
    let mut total_fetches = 0u64;
    let renderer = Renderer::new(
        model,
        sources,
        *strategy,
        dataset.scene.bounds,
        dataset.scene.background,
    )
    .with_threads(threads);
    for view in &dataset.eval_views {
        let (img, stats) = renderer.render(&view.camera);
        result.psnr += psnr(&view.image, &img);
        result.lpips += lpips_proxy(&view.image, &img);
        result.ssim += ssim(&view.image, &img);
        total_rays += stats.rays;
        total_flops += stats.flops.total();
        total_points += stats.points + stats.coarse_points;
        total_fetches += stats.feature_fetches;
    }
    let n = dataset.eval_views.len() as f32;
    result.psnr /= n;
    result.lpips /= n;
    result.ssim /= n;
    result.mflops_per_pixel = total_flops as f64 / total_rays.max(1) as f64 / 1e6;
    result.avg_points_per_ray = total_points as f64 / total_rays.max(1) as f64;
    result.fetches_per_ray = total_fetches as f64 / total_rays.max(1) as f64;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::trainer::{TrainConfig, Trainer};
    use gen_nerf_scene::DatasetKind;

    fn setup() -> (Dataset, GenNerfModel) {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.035, 6, 1, 24, 5);
        let mut model = GenNerfModel::new(ModelConfig::fast());
        let mut trainer = Trainer::new(TrainConfig {
            steps: 150,
            ..TrainConfig::fast()
        });
        trainer.pretrain(&mut model, &[&ds]);
        (ds, model)
    }

    #[test]
    fn evaluate_produces_sane_metrics() {
        let (ds, model) = setup();
        let r = evaluate(&model, &ds, &SamplingStrategy::Uniform { n: 12 }, None);
        assert!(r.psnr > 5.0 && r.psnr.is_finite(), "psnr = {}", r.psnr);
        assert!(r.lpips >= 0.0);
        assert!(r.mflops_per_pixel > 0.0);
        assert!(r.avg_points_per_ray > 0.0);
    }

    #[test]
    fn fewer_views_cost_fewer_flops() {
        let (ds, model) = setup();
        let strategy = SamplingStrategy::Uniform { n: 8 };
        let all = evaluate(&model, &ds, &strategy, None);
        let few = evaluate(&model, &ds, &strategy, Some(2));
        assert!(
            few.fetches_per_ray < all.fetches_per_ray,
            "few {} vs all {}",
            few.fetches_per_ray,
            all.fetches_per_ray
        );
    }

    #[test]
    fn more_points_cost_more_flops() {
        let (ds, model) = setup();
        let small = evaluate(&model, &ds, &SamplingStrategy::Uniform { n: 6 }, None);
        let big = evaluate(&model, &ds, &SamplingStrategy::Uniform { n: 18 }, None);
        assert!(big.mflops_per_pixel > small.mflops_per_pixel);
    }

    #[test]
    fn ctf_cheaper_than_uniform_at_same_point_count() {
        // The headline efficiency claim at the algorithm level: 16
        // uniform points vs 8 coarse + 8 focused — CtF spends fewer
        // FLOPs (cheap coarse pass, sparse focused pass).
        let (ds, model) = setup();
        let uniform = evaluate(&model, &ds, &SamplingStrategy::Uniform { n: 16 }, None);
        let ctf = evaluate(
            &model,
            &ds,
            &SamplingStrategy::coarse_then_focus(8, 8),
            None,
        );
        assert!(
            ctf.mflops_per_pixel < uniform.mflops_per_pixel,
            "ctf {} vs uniform {}",
            ctf.mflops_per_pixel,
            uniform.mflops_per_pixel
        );
    }

    #[test]
    #[should_panic(expected = "no evaluation views")]
    fn rejects_empty_eval_set() {
        let (mut ds, model) = setup();
        ds.eval_views.clear();
        let _ = evaluate(&model, &ds, &SamplingStrategy::Uniform { n: 4 }, None);
    }
}
