//! Occupancy-grid sampling — the per-scene sparsity baseline the paper
//! argues *cannot* generalize (Sec. 1, Sec. 2.4).
//!
//! SOTA sparsity-exploitation techniques for per-scene NeRFs
//! (Instant-NGP/TensoRF-style occupancy grids) skip samples in voxels
//! known to be empty. That knowledge comes from the scene the grid was
//! built on; for a *new* scene the spatial distribution is unknown, so
//! a stale grid skips exactly the wrong regions. This module implements
//! the baseline so the claim is testable: build an [`OccupancyGrid`]
//! from one scene, sample through it on another, and watch quality
//! collapse — while coarse-then-focus sampling, which estimates the
//! distribution *at run time*, does not.

use gen_nerf_geometry::{Aabb, Ray, Vec3};
use gen_nerf_scene::Scene;
use serde::{Deserialize, Serialize};

/// A binary occupancy grid over a scene's bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyGrid {
    bounds: Aabb,
    resolution: usize,
    occupied: Vec<bool>,
}

impl OccupancyGrid {
    /// Builds a grid from a scene by probing each voxel center (plus
    /// corners) against the analytic density field — the equivalent of
    /// the per-scene training that grids normally require.
    ///
    /// # Panics
    ///
    /// Panics when `resolution == 0`.
    pub fn build(scene: &Scene, resolution: usize, threshold: f32) -> Self {
        assert!(resolution > 0, "grid needs at least one voxel");
        let bounds = scene.bounds;
        let ext = bounds.extent();
        let n = resolution;
        let mut occupied = vec![false; n * n * n];
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    let base = bounds.min
                        + Vec3::new(
                            ext.x * ix as f32 / n as f32,
                            ext.y * iy as f32 / n as f32,
                            ext.z * iz as f32 / n as f32,
                        );
                    let step = Vec3::new(ext.x, ext.y, ext.z) / n as f32;
                    // Probe center + a 2×2×2 corner stencil.
                    let mut hit = scene.density(base + step * 0.5) > threshold;
                    if !hit {
                        'probe: for dz in [0.15f32, 0.85] {
                            for dy in [0.15f32, 0.85] {
                                for dx in [0.15f32, 0.85] {
                                    let p = base + step.mul_elem(Vec3::new(dx, dy, dz));
                                    if scene.density(p) > threshold {
                                        hit = true;
                                        break 'probe;
                                    }
                                }
                            }
                        }
                    }
                    occupied[(iz * n + iy) * n + ix] = hit;
                }
            }
        }
        Self {
            bounds,
            resolution,
            occupied,
        }
    }

    /// Grid resolution per axis.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Fraction of occupied voxels.
    pub fn occupancy(&self) -> f32 {
        self.occupied.iter().filter(|&&o| o).count() as f32 / self.occupied.len() as f32
    }

    /// Whether the voxel containing `p` is occupied (false outside the
    /// grid bounds).
    pub fn is_occupied(&self, p: Vec3) -> bool {
        if !self.bounds.contains(p) {
            return false;
        }
        let ext = self.bounds.extent();
        let n = self.resolution;
        let idx =
            |v: f32, lo: f32, e: f32| -> usize { (((v - lo) / e * n as f32) as usize).min(n - 1) };
        let ix = idx(p.x, self.bounds.min.x, ext.x);
        let iy = idx(p.y, self.bounds.min.y, ext.y);
        let iz = idx(p.z, self.bounds.min.z, ext.z);
        self.occupied[(iz * n + iy) * n + ix]
    }

    /// Filters uniform candidate depths along a ray to those inside
    /// occupied voxels, exactly like grid-based samplers: `n_candidates`
    /// uniform probes, keep the occupied ones (capped at `n_keep`).
    ///
    /// Returns an empty vector when the ray misses the bounds or every
    /// probe lands in "empty" voxels — which is precisely the failure
    /// mode on a mismatched scene.
    pub fn filter_depths(&self, ray: &Ray, n_candidates: usize, n_keep: usize) -> Vec<f32> {
        let Some((t0, t1)) = self.bounds.intersect_ray(ray) else {
            return Vec::new();
        };
        if t1 - t0 < 1e-5 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for t in Ray::uniform_depths(t0, t1, n_candidates) {
            if self.is_occupied(ray.at(t)) {
                out.push(t);
                if out.len() >= n_keep {
                    break;
                }
            }
        }
        out
    }

    /// Fraction of another scene's occupied volume this grid would
    /// *skip* (probe-based estimate) — the cross-scene mismatch the
    /// paper's argument rests on.
    pub fn miss_rate_on(&self, other: &Scene, probes: usize, threshold: f32) -> f32 {
        let ext = other.bounds.extent();
        let n = probes;
        let mut occupied_probes = 0u32;
        let mut missed = 0u32;
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    let p = other.bounds.min
                        + Vec3::new(
                            ext.x * (ix as f32 + 0.5) / n as f32,
                            ext.y * (iy as f32 + 0.5) / n as f32,
                            ext.z * (iz as f32 + 0.5) / n as f32,
                        );
                    if other.density(p) > threshold {
                        occupied_probes += 1;
                        if !self.is_occupied(p) {
                            missed += 1;
                        }
                    }
                }
            }
        }
        if occupied_probes == 0 {
            0.0
        } else {
            missed as f32 / occupied_probes as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_nerf_scene::datasets::scene_for;
    use gen_nerf_scene::DatasetKind;

    fn scene(name: &str) -> Scene {
        scene_for(DatasetKind::NerfSynthetic, name, 7)
    }

    #[test]
    fn grid_matches_own_scene() {
        let s = scene("lego");
        let grid = OccupancyGrid::build(&s, 24, 0.5);
        // On its own scene the grid misses almost nothing.
        let miss = grid.miss_rate_on(&s, 20, 0.5);
        assert!(miss < 0.05, "self miss rate {miss}");
        assert!(grid.occupancy() > 0.0 && grid.occupancy() < 1.0);
    }

    #[test]
    fn grid_fails_on_different_scene() {
        // The paper's argument (Sec. 2.4): a grid built for one scene
        // skips occupied space of another.
        let trained_on = scene("lego");
        let new_scene = scene("mic");
        let grid = OccupancyGrid::build(&trained_on, 24, 0.5);
        let self_miss = grid.miss_rate_on(&trained_on, 20, 0.5);
        let cross_miss = grid.miss_rate_on(&new_scene, 20, 0.5);
        assert!(
            cross_miss > self_miss + 0.1,
            "no cross-scene failure: self {self_miss} vs cross {cross_miss}"
        );
        assert!(cross_miss > 0.2, "cross-scene miss rate only {cross_miss}");
    }

    #[test]
    fn filter_keeps_occupied_depths_on_own_scene() {
        let s = scene("lego");
        let grid = OccupancyGrid::build(&s, 24, 0.5);
        // A ray through the object center.
        let ray = Ray::new(Vec3::new(0.0, -0.6, 4.0), Vec3::new(0.0, 0.0, -1.0));
        let depths = grid.filter_depths(&ray, 64, 16);
        assert!(!depths.is_empty(), "grid filtered out its own object");
        for &t in &depths {
            assert!(grid.is_occupied(ray.at(t)));
        }
    }

    #[test]
    fn filter_respects_cap() {
        let s = scene("lego");
        let grid = OccupancyGrid::build(&s, 16, 0.5);
        let ray = Ray::new(Vec3::new(0.0, -0.6, 4.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(grid.filter_depths(&ray, 128, 4).len() <= 4);
    }

    #[test]
    fn ray_missing_bounds_yields_nothing() {
        let s = scene("lego");
        let grid = OccupancyGrid::build(&s, 8, 0.5);
        let ray = Ray::new(Vec3::new(100.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        assert!(grid.filter_depths(&ray, 32, 8).is_empty());
    }

    #[test]
    fn outside_points_unoccupied() {
        let s = scene("lego");
        let grid = OccupancyGrid::build(&s, 8, 0.5);
        assert!(!grid.is_occupied(Vec3::new(500.0, 0.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "at least one voxel")]
    fn zero_resolution_rejected() {
        let s = scene("lego");
        let _ = OccupancyGrid::build(&s, 0, 0.5);
    }
}
