//! Point-sampling machinery (Sec. 3.2).
//!
//! * [`importance_sample`] — inverse-transform sampling from a
//!   piecewise-constant PDF over depth bins (the preprocessing unit's
//!   Monte-Carlo sampler, Fig. 7),
//! * [`allocate_focused`] — the cross-ray allocation
//!   `P(j) ∝ N^cr_j` that distributes the image-wide focused budget
//!   over rays (Step ② of the coarse-then-focus pipeline),
//! * [`critical_count`] — counts points with hitting probability
//!   `w_k ≥ τ`.

use gen_nerf_nn::init::Rng;

/// Counts critical points: samples whose hitting probability meets the
/// threshold `τ` (Sec. 3.2, Step ②).
pub fn critical_count(weights: &[f32], tau: f32) -> usize {
    weights.iter().filter(|&&w| w >= tau).count()
}

/// Allocates an image-wide focused-sample budget across rays:
/// `n_j ∝ N^cr_j`, rounded, with every ray holding at least one
/// critical point guaranteed one sample, and every ray capped at
/// `n_cap`.
///
/// Returns per-ray counts summing to at most `budget + rays_with_cr`
/// (the minimum-one guarantee can add a few).
pub fn allocate_focused(critical: &[usize], budget: usize, n_cap: usize) -> Vec<usize> {
    let total: usize = critical.iter().sum();
    if total == 0 || budget == 0 {
        return vec![0; critical.len()];
    }
    let mut counts = vec![0usize; critical.len()];
    let mut fractional: Vec<(usize, f64)> = Vec::new();
    let mut assigned = 0usize;
    for (j, &cr) in critical.iter().enumerate() {
        if cr == 0 {
            continue;
        }
        let share = budget as f64 * cr as f64 / total as f64;
        let base = share.floor() as usize;
        counts[j] = base.min(n_cap);
        assigned += counts[j];
        fractional.push((j, share - base as f64));
    }
    // Distribute the remainder to the largest fractional parts.
    let mut remainder = budget.saturating_sub(assigned);
    fractional.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (j, _) in fractional.iter().cycle().take(fractional.len() * 2) {
        if remainder == 0 {
            break;
        }
        if counts[*j] < n_cap {
            counts[*j] += 1;
            remainder -= 1;
        }
    }
    // Minimum-one guarantee for rays with critical points.
    for (j, &cr) in critical.iter().enumerate() {
        if cr > 0 && counts[j] == 0 {
            counts[j] = 1;
        }
    }
    counts
}

/// Inverse-transform sampling of `n` depths from a piecewise-constant
/// PDF: `weights[k]` covers `[edges[k], edges[k+1])`. Stratified with
/// per-stratum jitter from `rng`. Falls back to uniform over the whole
/// range when the weights vanish.
///
/// Returned depths are sorted.
///
/// # Panics
///
/// Panics when `edges.len() != weights.len() + 1` or fewer than two
/// edges are given.
pub fn importance_sample(edges: &[f32], weights: &[f32], n: usize, rng: &mut Rng) -> Vec<f32> {
    assert!(edges.len() >= 2, "need at least one bin");
    assert_eq!(edges.len(), weights.len() + 1, "edges/weights mismatch");
    if n == 0 {
        return Vec::new();
    }
    let total: f32 = weights.iter().map(|w| w.max(0.0)).sum();
    let mut out = Vec::with_capacity(n);
    if total <= 1e-12 {
        // Uniform fallback.
        let (lo, hi) = (edges[0], edges[edges.len() - 1]);
        for i in 0..n {
            let u = (i as f32 + rng.uniform(0.0, 1.0)) / n as f32;
            out.push(lo + (hi - lo) * u);
        }
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        return out;
    }
    // CDF over bins.
    let mut cdf = Vec::with_capacity(weights.len() + 1);
    cdf.push(0.0f32);
    let mut acc = 0.0;
    for w in weights {
        acc += w.max(0.0) / total;
        cdf.push(acc);
    }
    for i in 0..n {
        let u = ((i as f32 + rng.uniform(0.0, 1.0)) / n as f32).min(0.999_999);
        // Binary search for the bin with cdf[k] <= u < cdf[k+1].
        let mut lo = 0usize;
        let mut hi = weights.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if cdf[mid] <= u {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let span = (cdf[lo + 1] - cdf[lo]).max(1e-12);
        let frac = (u - cdf[lo]) / span;
        out.push(edges[lo] + (edges[lo + 1] - edges[lo]) * frac);
    }
    out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out
}

/// Uniform bin edges over `[t0, t1]`.
pub fn uniform_edges(t0: f32, t1: f32, bins: usize) -> Vec<f32> {
    (0..=bins)
        .map(|k| t0 + (t1 - t0) * k as f32 / bins as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_count_thresholds() {
        let w = [0.0, 0.005, 0.02, 0.5];
        assert_eq!(critical_count(&w, 0.01), 2);
        assert_eq!(critical_count(&w, 0.6), 0);
    }

    #[test]
    fn allocate_proportional() {
        let critical = [0usize, 4, 4, 8];
        let counts = allocate_focused(&critical, 16, 64);
        assert_eq!(counts[0], 0);
        assert_eq!(counts[3], 2 * counts[1]);
        let total: usize = counts.iter().sum();
        assert!(total >= 15 && total <= 17, "total = {total}");
    }

    #[test]
    fn allocate_empty_scene_gets_nothing() {
        assert_eq!(allocate_focused(&[0, 0, 0], 100, 64), vec![0, 0, 0]);
    }

    #[test]
    fn allocate_minimum_one_for_critical_rays() {
        // 1000 rays with 1 critical point each, budget 10: every ray
        // still gets ≥ 1 sample.
        let critical = vec![1usize; 100];
        let counts = allocate_focused(&critical, 10, 64);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn allocate_respects_cap() {
        let critical = [100usize, 1];
        let counts = allocate_focused(&critical, 64, 16);
        assert!(counts[0] <= 16);
    }

    #[test]
    fn importance_concentrates_on_heavy_bins() {
        let edges = uniform_edges(0.0, 10.0, 10);
        let mut weights = vec![0.0f32; 10];
        weights[7] = 1.0; // all mass in [7, 8)
        let mut rng = Rng::seed_from(1);
        let samples = importance_sample(&edges, &weights, 64, &mut rng);
        assert!(samples.iter().all(|&t| (7.0..8.0).contains(&t)));
    }

    #[test]
    fn importance_sorted_and_in_range() {
        let edges = uniform_edges(2.0, 6.0, 8);
        let weights = [0.1, 0.5, 0.2, 0.0, 0.3, 0.9, 0.05, 0.4];
        let mut rng = Rng::seed_from(2);
        let s = importance_sample(&edges, &weights, 32, &mut rng);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        assert!(s.iter().all(|&t| (2.0..=6.0).contains(&t)));
    }

    #[test]
    fn importance_zero_weights_falls_back_to_uniform() {
        let edges = uniform_edges(0.0, 1.0, 4);
        let weights = [0.0; 4];
        let mut rng = Rng::seed_from(3);
        let s = importance_sample(&edges, &weights, 16, &mut rng);
        assert_eq!(s.len(), 16);
        // Roughly spread over the range.
        assert!(s[0] < 0.2 && s[15] > 0.8);
    }

    #[test]
    fn importance_proportionality() {
        // Two bins with 1:3 weights: expect ~25%/75% of samples.
        let edges = uniform_edges(0.0, 2.0, 2);
        let weights = [1.0f32, 3.0];
        let mut rng = Rng::seed_from(4);
        let s = importance_sample(&edges, &weights, 400, &mut rng);
        let first = s.iter().filter(|&&t| t < 1.0).count();
        assert!(
            (80..120).contains(&first),
            "first-bin count = {first}, want ~100"
        );
    }

    #[test]
    #[should_panic(expected = "edges/weights mismatch")]
    fn importance_rejects_mismatch() {
        let mut rng = Rng::seed_from(5);
        let _ = importance_sample(&[0.0, 1.0], &[0.5, 0.5], 4, &mut rng);
    }

    #[test]
    fn uniform_edges_cover_range() {
        let e = uniform_edges(1.0, 3.0, 4);
        assert_eq!(e.len(), 5);
        assert_eq!(e[0], 1.0);
        assert_eq!(e[4], 3.0);
    }
}
