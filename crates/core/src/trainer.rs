//! In-process training.
//!
//! The paper trains for 250 K Adam steps on large multi-dataset
//! corpora; we substitute short in-process training against analytic
//! scenes, where per-point ground-truth density and color are exact
//! (DESIGN.md §2). Two entry points mirror the paper's protocols:
//!
//! * [`Trainer::pretrain`] — cross-scene training over several
//!   datasets (the generalizable setting),
//! * [`Trainer::finetune`] — per-scene finetuning on one dataset
//!   (Tab. 3's setting; supervision comes from the scene's analytic
//!   fields rather than held-in photographs — documented substitution).

use crate::features::{
    aggregate_ray_into, assert_channels, prepare_sources, AggregateArena, SourceViewData,
};
use crate::model::{logit_from_density, GenNerfModel};
use gen_nerf_geometry::{Camera, Ray, Vec3};
use gen_nerf_nn::init::Rng;
use gen_nerf_nn::optim::Adam;
use gen_nerf_scene::Dataset;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Pretraining steps.
    pub steps: usize,
    /// Finetuning steps.
    pub finetune_steps: usize,
    /// Adam learning rate (paper: 5e-4 with exponential decay; we use
    /// a larger rate for the much shorter schedule).
    pub lr: f32,
    /// Per-step exponential LR decay.
    pub lr_decay: f32,
    /// Rays per step.
    pub rays_per_step: usize,
    /// Maximum training samples per ray (each ray draws a length in
    /// `[8, n_points]` so the Ray-Mixer's token weights are trained at
    /// every length it will see at inference).
    pub n_points: usize,
    /// Density threshold above which a point's color is supervised.
    pub color_threshold: f32,
    /// Sampling seed.
    pub seed: u64,
}

impl TrainConfig {
    /// A schedule that trains a usable model in a few seconds.
    pub fn fast() -> Self {
        Self {
            steps: 400,
            finetune_steps: 150,
            lr: 4e-3,
            lr_decay: 0.999,
            rays_per_step: 4,
            n_points: 64,
            color_threshold: 0.5,
            seed: 23,
        }
    }

    /// A longer schedule for the benchmark harness.
    pub fn thorough() -> Self {
        Self {
            steps: 1600,
            finetune_steps: 500,
            ..Self::fast()
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean density-logit loss over the first 10% of steps.
    pub initial_sigma_loss: f32,
    /// Mean density-logit loss over the last 10% of steps.
    pub final_sigma_loss: f32,
    /// Mean color loss over the last 10% of steps.
    pub final_color_loss: f32,
    /// Steps executed.
    pub steps: usize,
}

/// The training driver.
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainConfig,
    rng: Rng,
    /// Step arena for full-model acquisition (one sealed ray per
    /// training ray), reused across every step of a run — steady-state
    /// training acquisition performs zero heap allocations.
    full_arena: AggregateArena,
    /// Step arena for the channel-scaled coarse-pass acquisition.
    coarse_arena: AggregateArena,
}

struct PreparedDataset<'a> {
    dataset: &'a Dataset,
    sources: Vec<SourceViewData>,
    cameras: Vec<Camera>,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Self {
            rng: Rng::seed_from(cfg.seed),
            cfg,
            full_arena: AggregateArena::default(),
            coarse_arena: AggregateArena::default(),
        }
    }

    /// Cross-scene pretraining.
    ///
    /// # Panics
    ///
    /// Panics when `datasets` is empty.
    pub fn pretrain(&mut self, model: &mut GenNerfModel, datasets: &[&Dataset]) -> TrainReport {
        self.train(model, datasets, self.cfg.steps)
    }

    /// Per-scene finetuning.
    pub fn finetune(&mut self, model: &mut GenNerfModel, dataset: &Dataset) -> TrainReport {
        self.train(model, &[dataset], self.cfg.finetune_steps)
    }

    fn train(
        &mut self,
        model: &mut GenNerfModel,
        datasets: &[&Dataset],
        steps: usize,
    ) -> TrainReport {
        assert!(!datasets.is_empty(), "need at least one training dataset");
        let prepared: Vec<PreparedDataset> = datasets
            .iter()
            .map(|ds| {
                let mut cameras: Vec<Camera> = ds.source_views.iter().map(|v| v.camera).collect();
                cameras.extend(ds.eval_views.iter().map(|v| v.camera));
                let sources = prepare_sources(&ds.source_views);
                assert_channels(&sources, model.config.d_features, "Trainer");
                assert_channels(
                    &sources,
                    model.config.coarse_channels,
                    "Trainer coarse pass",
                );
                PreparedDataset {
                    dataset: ds,
                    sources,
                    cameras,
                }
            })
            .collect();

        let mut adam = Adam::new(self.cfg.lr).with_decay(self.cfg.lr_decay);
        let mut sigma_losses = Vec::with_capacity(steps);
        let mut color_losses = Vec::with_capacity(steps);
        for step in 0..steps {
            let pd = &prepared[step % prepared.len()];
            model.zero_grad();

            // Sample the step's rays first (sequential — this is the
            // only RNG consumer, and the draw order matches the old
            // ray-at-a-time loop exactly, keeping training streams
            // bit-compatible), then acquire every ray's features into
            // the persistent step arenas — full and coarse-pass
            // aggregation side by side, zero heap allocations once the
            // arenas have grown. Acquisition is RNG-free and fills in
            // (ray, depth) order, so training stays bit-identical to
            // the per-ray AoS acquisition it replaces.
            let mut specs: Vec<RaySpec> = Vec::with_capacity(self.cfg.rays_per_step);
            let mut attempts = 0usize;
            while specs.len() < self.cfg.rays_per_step && attempts < self.cfg.rays_per_step * 8 {
                attempts += 1;
                if let Some(spec) = self.sample_ray(pd) {
                    specs.push(spec);
                }
            }
            let targets = self.acquire_step(pd, &specs, model);

            // Sequential per-ray updates, in sampling order (gradient
            // accumulation order is part of the determinism contract).
            let mut sigma_acc = 0.0f32;
            let mut color_acc = 0.0f32;
            for (r, t) in targets.iter().enumerate() {
                let losses =
                    model.train_ray_arena(&self.full_arena, r, &t.gt_logits, &t.gt_colors, &t.mask);
                let coarse_loss = model.train_coarse_arena(&self.coarse_arena, r, &t.gt_logits);
                sigma_acc += losses.sigma + coarse_loss;
                color_acc += losses.color;
            }
            let rays_done = targets.len();
            if rays_done > 0 {
                adam.step(&mut model.params_mut());
                sigma_losses.push(sigma_acc / rays_done as f32);
                color_losses.push(color_acc / rays_done as f32);
            }
        }

        let window = (sigma_losses.len() / 10).max(1);
        let mean = |xs: &[f32]| -> f32 {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f32>() / xs.len() as f32
            }
        };
        TrainReport {
            initial_sigma_loss: mean(&sigma_losses[..window.min(sigma_losses.len())]),
            final_sigma_loss: mean(&sigma_losses[sigma_losses.len().saturating_sub(window)..]),
            final_color_loss: mean(&color_losses[color_losses.len().saturating_sub(window)..]),
            steps,
        }
    }

    /// Samples one training ray's geometry; returns `None` when the
    /// ray misses the scene bounds. Consumes the trainer RNG in
    /// exactly the order the pre-fusion ray-at-a-time loop did:
    /// camera, pixel x, pixel y, (miss → bail), point count, jitter.
    fn sample_ray(&mut self, pd: &PreparedDataset) -> Option<RaySpec> {
        let cam = pd.cameras[self.rng.below(pd.cameras.len())];
        let x = self.rng.below(cam.intrinsics.width as usize) as u32;
        let y = self.rng.below(cam.intrinsics.height as usize) as u32;
        let ray = cam.pixel_center_ray(x, y);
        let (t0, t1) = pd.dataset.scene.bounds.intersect_ray(&ray)?;
        if t1 - t0 < 1e-4 {
            return None;
        }
        let n_max = self.cfg.n_points.max(9);
        let n = 8 + self.rng.below(n_max - 8 + 1);
        let jitter = self.rng.uniform(-0.4, 0.4) * (t1 - t0) / n as f32;
        let depths: Vec<f32> = Ray::uniform_depths(t0, t1, n)
            .into_iter()
            .map(|t| (t + jitter).clamp(t0, t1))
            .collect();
        Some(RaySpec { ray, depths })
    }

    /// Acquires features + ground truth for every ray of a step into
    /// the trainer's persistent step arenas (one sealed arena ray per
    /// training ray, full and coarse-pass aggregation side by side).
    /// Acquisition is RNG-free and fills in (ray, depth) order — the
    /// same per-point arithmetic and order as the AoS path it
    /// replaces, so training streams stay bit-compatible — and, once
    /// the arenas have grown, performs zero heap allocations beyond
    /// the per-ray target vectors.
    fn acquire_step(
        &mut self,
        pd: &PreparedDataset,
        specs: &[RaySpec],
        model: &GenNerfModel,
    ) -> Vec<RayTargets> {
        let ds = pd.dataset;
        let d = model.config.d_features;
        let dc = model.config.coarse_channels;
        let coarse_views = 4.min(pd.sources.len());
        self.full_arena.reset(pd.sources.len(), d);
        self.coarse_arena.reset(coarse_views, dc);
        let mut out = Vec::with_capacity(specs.len());
        for spec in specs {
            aggregate_ray_into(
                &spec.ray,
                &spec.depths,
                &pd.sources,
                d,
                &mut self.full_arena,
            );
            aggregate_ray_into(
                &spec.ray,
                &spec.depths,
                &pd.sources[..coarse_views],
                dc,
                &mut self.coarse_arena,
            );
            let n = spec.depths.len();
            let mut targets = RayTargets {
                gt_logits: Vec::with_capacity(n),
                gt_colors: Vec::with_capacity(n),
                mask: Vec::with_capacity(n),
            };
            for &t in &spec.depths {
                let p = spec.ray.at(t);
                let sigma = ds.scene.density(p);
                let masked = sigma > self.cfg.color_threshold;
                targets.gt_logits.push(logit_from_density(sigma));
                targets.gt_colors.push(if masked {
                    ds.scene.color(p, spec.ray.direction)
                } else {
                    Vec3::ZERO
                });
                targets.mask.push(masked);
            }
            out.push(targets);
        }
        out
    }
}

/// A sampled training ray: geometry + jittered sample depths.
struct RaySpec {
    ray: Ray,
    depths: Vec<f32>,
}

/// One ray's supervision targets (its features live in the step
/// arenas).
struct RayTargets {
    gt_logits: Vec<f32>,
    gt_colors: Vec<Vec3>,
    mask: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, RayModuleChoice};
    use gen_nerf_scene::DatasetKind;

    fn tiny_dataset(name: &str) -> Dataset {
        Dataset::build(DatasetKind::NerfSynthetic, name, 0.025, 4, 1, 24, 9)
    }

    #[test]
    fn pretrain_reduces_sigma_loss() {
        let ds = tiny_dataset("lego");
        let mut model = GenNerfModel::new(ModelConfig::fast());
        let mut trainer = Trainer::new(TrainConfig {
            steps: 120,
            ..TrainConfig::fast()
        });
        let report = trainer.pretrain(&mut model, &[&ds]);
        assert!(
            report.final_sigma_loss < report.initial_sigma_loss,
            "{report:?}"
        );
    }

    #[test]
    fn pretrain_works_across_scenes() {
        let a = tiny_dataset("lego");
        let b = tiny_dataset("chair");
        let mut model = GenNerfModel::new(ModelConfig::fast());
        let mut trainer = Trainer::new(TrainConfig {
            steps: 80,
            ..TrainConfig::fast()
        });
        let report = trainer.pretrain(&mut model, &[&a, &b]);
        assert!(report.final_sigma_loss.is_finite());
        assert!(report.final_sigma_loss < report.initial_sigma_loss * 1.2);
    }

    #[test]
    fn finetune_improves_on_target_scene() {
        let train_scene = tiny_dataset("lego");
        let target = tiny_dataset("ship");
        let mut model = GenNerfModel::new(ModelConfig::fast());
        let mut trainer = Trainer::new(TrainConfig {
            steps: 100,
            finetune_steps: 80,
            ..TrainConfig::fast()
        });
        trainer.pretrain(&mut model, &[&train_scene]);
        let report = trainer.finetune(&mut model, &target);
        assert!(report.final_sigma_loss.is_finite());
        assert_eq!(report.steps, 80);
    }

    #[test]
    fn training_is_deterministic() {
        let ds = tiny_dataset("mic");
        let cfg = TrainConfig {
            steps: 30,
            ..TrainConfig::fast()
        };
        let run = || {
            let mut model = GenNerfModel::new(ModelConfig::fast());
            let mut trainer = Trainer::new(cfg);
            trainer.pretrain(&mut model, &[&ds])
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one training dataset")]
    fn pretrain_rejects_empty() {
        let mut model = GenNerfModel::new(ModelConfig::fast());
        let mut trainer = Trainer::new(TrainConfig::fast());
        let _ = trainer.pretrain(&mut model, &[]);
    }

    #[test]
    fn all_ray_modules_trainable() {
        let ds = tiny_dataset("drums");
        for choice in [
            RayModuleChoice::Mixer,
            RayModuleChoice::Transformer,
            RayModuleChoice::None,
        ] {
            let mut model = GenNerfModel::new(ModelConfig::fast().with_ray_module(choice));
            let mut trainer = Trainer::new(TrainConfig {
                steps: 60,
                ..TrainConfig::fast()
            });
            let report = trainer.pretrain(&mut model, &[&ds]);
            assert!(
                report.final_sigma_loss.is_finite() && report.final_sigma_loss >= 0.0,
                "{choice:?}: {report:?}"
            );
        }
    }
}
