//! Channel pruning (Tab. 2's "+channel pruning" rows).
//!
//! Magnitude-based structured pruning of the point MLP: hidden units
//! are ranked by the product of their input-column and output-row L2
//! norms and the weakest `sparsity` fraction is removed, shrinking
//! both hidden layers. The paper prunes 75% of channels for a >5×
//! FLOPs reduction at <0.5 dB PSNR cost.

use crate::model::GenNerfModel;
use gen_nerf_nn::layers::Linear;
use gen_nerf_nn::Tensor2;

/// Returns a copy of `model` with the point MLP's hidden width reduced
/// by `sparsity` (e.g. 0.75 keeps 25% of units). The kept units are
/// those with the largest combined weight magnitude.
///
/// # Panics
///
/// Panics when `sparsity` is outside `[0, 1)`.
pub fn prune_point_mlp(model: &GenNerfModel, sparsity: f32) -> GenNerfModel {
    assert!(
        (0.0..1.0).contains(&sparsity),
        "sparsity must be in [0,1), got {sparsity}"
    );
    let mut pruned = model.clone();
    let hidden = model.config.hidden;
    let keep = (((hidden as f32) * (1.0 - sparsity)).round() as usize).max(4);
    if keep >= hidden {
        return pruned;
    }

    let (l1, l2, l3) = pruned.point_mlp.layers_mut();
    // Rank first-hidden units by ‖W1[:,j]‖ · ‖W2[j,:]‖.
    let kept1 = top_units(&l1.w.value, &l2.w.value, keep);
    // Rank second-hidden units by ‖W2[:,j]‖ · ‖W3[j,:]‖.
    let kept2 = top_units(&l2.w.value, &l3.w.value, keep);

    let new_l1 = Linear::from_weights(
        select_cols(&l1.w.value, &kept1),
        select_cols(&l1.b.value, &kept1),
    );
    let new_l2 = Linear::from_weights(
        select_cols(&select_rows(&l2.w.value, &kept1), &kept2),
        select_cols(&l2.b.value, &kept2),
    );
    let new_l3 = Linear::from_weights(select_rows(&l3.w.value, &kept2), l3.b.value.clone());
    pruned.point_mlp.replace_layers(new_l1, new_l2, new_l3);
    pruned.config.hidden = keep;
    pruned
}

/// Indices of the `keep` hidden units with the largest
/// `‖in-column‖ · ‖out-row‖`, in ascending order.
fn top_units(w_in: &Tensor2, w_out: &Tensor2, keep: usize) -> Vec<usize> {
    let hidden = w_in.cols();
    debug_assert_eq!(w_out.rows(), hidden, "layer widths disagree");
    let mut scores: Vec<(usize, f32)> = (0..hidden)
        .map(|j| {
            let col_norm: f32 = (0..w_in.rows())
                .map(|i| w_in[(i, j)] * w_in[(i, j)])
                .sum::<f32>()
                .sqrt();
            let row_norm: f32 = w_out.row(j).iter().map(|v| v * v).sum::<f32>().sqrt();
            (j, col_norm * row_norm)
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut kept: Vec<usize> = scores.into_iter().take(keep).map(|(j, _)| j).collect();
    kept.sort_unstable();
    kept
}

fn select_cols(t: &Tensor2, cols: &[usize]) -> Tensor2 {
    Tensor2::from_fn(t.rows(), cols.len(), |r, c| t[(r, cols[c])])
}

fn select_rows(t: &Tensor2, rows: &[usize]) -> Tensor2 {
    Tensor2::from_fn(rows.len(), t.cols(), |r, c| t[(rows[r], c)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::{aggregate_point, prepare_sources};
    use gen_nerf_scene::{Dataset, DatasetKind};

    #[test]
    fn pruning_shrinks_hidden_and_flops() {
        let model = GenNerfModel::new(ModelConfig::fast());
        let pruned = prune_point_mlp(&model, 0.75);
        assert_eq!(pruned.config.hidden, 12);
        assert!(pruned.config.mlp_macs_per_point() < model.config.mlp_macs_per_point() / 3);
    }

    #[test]
    fn zero_sparsity_is_identity() {
        let model = GenNerfModel::new(ModelConfig::fast());
        let pruned = prune_point_mlp(&model, 0.0);
        assert_eq!(pruned.config.hidden, model.config.hidden);
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn rejects_full_sparsity() {
        let model = GenNerfModel::new(ModelConfig::fast());
        let _ = prune_point_mlp(&model, 1.0);
    }

    #[test]
    fn pruned_model_still_runs() {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 4, 1, 16, 5);
        let sources = prepare_sources(&ds.source_views);
        let model = GenNerfModel::new(ModelConfig::fast());
        let pruned = prune_point_mlp(&model, 0.5);
        let agg = aggregate_point(
            gen_nerf_geometry::Vec3::ZERO,
            gen_nerf_geometry::Vec3::Z,
            &sources,
            12,
        );
        let out = pruned.forward_ray(&[agg]);
        assert_eq!(out.densities.len(), 1);
        assert!(out.densities[0].is_finite());
    }

    #[test]
    fn pruning_keeps_strongest_units() {
        // Build a model, zero out most hidden units of l1/l2 except a
        // known set, and verify those survive.
        let mut model = GenNerfModel::new(ModelConfig::fast());
        let hidden = model.config.hidden;
        let strong: Vec<usize> = (0..hidden).step_by(4).collect();
        {
            let (l1, l2, _) = model.point_mlp.layers_mut();
            for j in 0..hidden {
                let scale = if strong.contains(&j) { 10.0 } else { 0.01 };
                for r in 0..l1.w.value.rows() {
                    l1.w.value[(r, j)] = scale;
                }
                for c in 0..l2.w.value.cols() {
                    l2.w.value[(j, c)] *= scale;
                }
            }
        }
        let keep = strong.len();
        let sparsity = 1.0 - keep as f32 / hidden as f32;
        let pruned = prune_point_mlp(&model, sparsity);
        assert_eq!(pruned.config.hidden, keep);
        // The surviving first-layer columns are the strong ones: their
        // values are ~10.
        let mut p = pruned;
        let (l1, _, _) = p.point_mlp.layers_mut();
        for c in 0..keep {
            assert!(l1.w.value[(0, c)] > 5.0, "weak unit survived at column {c}");
        }
    }

    #[test]
    fn pruned_output_close_to_original_for_mild_sparsity() {
        // With 25% of (near-random) units removed the function changes,
        // but outputs should remain finite and broadly similar in scale.
        let ds = Dataset::build(DatasetKind::DeepVoxels, "vase", 0.04, 4, 1, 16, 6);
        let sources = prepare_sources(&ds.source_views);
        let model = GenNerfModel::new(ModelConfig::fast());
        let pruned = prune_point_mlp(&model, 0.25);
        let cam = &ds.eval_views[0].camera;
        let ray = cam.pixel_center_ray(cam.intrinsics.width / 2, cam.intrinsics.height / 2);
        let aggs: Vec<_> = [2.5f32, 3.5, 4.5]
            .iter()
            .map(|&t| aggregate_point(ray.at(t), ray.direction, &sources, 12))
            .collect();
        let a = model.forward_ray(&aggs);
        let b = pruned.forward_ray(&aggs);
        for (x, y) in a.densities.iter().zip(&b.densities) {
            assert!(y.is_finite());
            let _ = x;
        }
    }
}
