//! Algorithm → hardware glue: converts a model + sampling
//! configuration into an `accel::WorkloadSpec` the cycle-level
//! simulator and the GPU roofline models consume.

use crate::config::{ModelConfig, RayModuleChoice, SamplingStrategy};
use gen_nerf_accel::workload::{RayModuleKind, WorkloadSpec};

/// Builds the hardware workload description for rendering a
/// `width × height` frame with `s_views` source views under the given
/// model and sampling strategy.
///
/// Mapping notes:
///
/// * `Hierarchical { n_coarse, n_fine }` runs the *full* model twice
///   (coarse pass + union pass), so its hardware point count is
///   `2·n_coarse + n_fine` in a single stage — there is no lightweight
///   coarse stage to map.
/// * The Ray-Mixer's cost is constant in the actual point count (it
///   always runs over `N_max` padded tokens); the spec's quadratic
///   form is evaluated at the stage's nominal `n`, which matches when
///   `n ≈ N_max` and upper-bounds the error otherwise.
pub fn workload_spec(
    cfg: &ModelConfig,
    strategy: &SamplingStrategy,
    width: u32,
    height: u32,
    s_views: usize,
) -> WorkloadSpec {
    let (n_coarse, n_focused, s_coarse, channel_scale) = match *strategy {
        SamplingStrategy::Uniform { n } => (0, n, 0, 1.0),
        SamplingStrategy::Hierarchical { n_coarse, n_fine } => (0, 2 * n_coarse + n_fine, 0, 1.0),
        SamplingStrategy::CoarseThenFocus {
            n_coarse,
            n_focused,
            s_coarse,
            ..
        } => (
            n_coarse,
            n_focused,
            s_coarse.min(s_views),
            cfg.coarse_channels as f32 / cfg.d_features as f32,
        ),
    };

    let d_sigma = cfg.d_sigma as f64;
    let (ray_module, quad, lin) = match cfg.ray_module {
        RayModuleChoice::Transformer => (
            RayModuleKind::Transformer,
            2.0 * cfg.attn_head as f64,
            4.0 * d_sigma * cfg.attn_head as f64,
        ),
        RayModuleChoice::Mixer => (RayModuleKind::Mixer, d_sigma, d_sigma * d_sigma + d_sigma),
        RayModuleChoice::None => (RayModuleKind::None, 0.0, 0.0),
    };

    WorkloadSpec {
        width,
        height,
        s_views,
        s_coarse,
        n_coarse,
        n_focused,
        d_channels: cfg.d_features,
        coarse_channel_scale: channel_scale,
        bytes_per_channel: 1,
        taps_per_fetch: 4,
        mlp_macs_per_point: cfg.mlp_macs_per_point(),
        coarse_mlp_macs_per_point: cfg.coarse_mlp_macs_per_point(),
        ray_macs_quadratic: quad,
        ray_macs_linear: lin,
        ray_module,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_nerf_accel::config::AcceleratorConfig;
    use gen_nerf_accel::simulator::Simulator;
    use gen_nerf_accel::workload::Stage;

    #[test]
    fn ctf_maps_to_two_stages() {
        let cfg = ModelConfig::fast();
        let spec = workload_spec(
            &cfg,
            &SamplingStrategy::coarse_then_focus(16, 64),
            128,
            128,
            6,
        );
        assert_eq!(spec.n_coarse, 16);
        assert_eq!(spec.n_focused, 64);
        assert_eq!(spec.s_coarse, 4);
        assert!(spec.coarse_channel_scale < 0.5);
        assert_eq!(spec.stages().len(), 2);
    }

    #[test]
    fn uniform_maps_to_single_stage() {
        let cfg = ModelConfig::fast();
        let spec = workload_spec(&cfg, &SamplingStrategy::Uniform { n: 64 }, 128, 128, 6);
        assert_eq!(spec.stages(), vec![Stage::Focused]);
    }

    #[test]
    fn hierarchical_counts_double_coarse() {
        let cfg = ModelConfig::fast().with_ray_module(RayModuleChoice::Transformer);
        let spec = workload_spec(
            &cfg,
            &SamplingStrategy::Hierarchical {
                n_coarse: 32,
                n_fine: 64,
            },
            128,
            128,
            10,
        );
        assert_eq!(spec.n_focused, 128);
        assert_eq!(spec.ray_module, RayModuleKind::Transformer);
    }

    #[test]
    fn macs_match_model_config() {
        let cfg = ModelConfig::fast();
        let spec = workload_spec(
            &cfg,
            &SamplingStrategy::coarse_then_focus(16, 64),
            64,
            64,
            6,
        );
        assert_eq!(spec.mlp_macs_per_point, cfg.mlp_macs_per_point());
        assert_eq!(
            spec.coarse_mlp_macs_per_point,
            cfg.coarse_mlp_macs_per_point()
        );
    }

    #[test]
    fn spec_runs_on_simulator() {
        let cfg = ModelConfig::fast();
        let spec = workload_spec(&cfg, &SamplingStrategy::coarse_then_focus(8, 16), 64, 64, 4);
        let sim = Simulator::new(AcceleratorConfig::paper());
        let report = sim.simulate(&spec);
        assert!(report.fps > 0.0);
    }

    #[test]
    fn none_module_has_zero_ray_macs() {
        let cfg = ModelConfig::fast().with_ray_module(RayModuleChoice::None);
        let spec = workload_spec(&cfg, &SamplingStrategy::Uniform { n: 32 }, 64, 64, 4);
        assert_eq!(spec.ray_macs(32), 0);
    }
}
