//! INT8 execution fidelity.
//!
//! The Gen-NeRF PE pool executes INT8 systolic-array GEMMs (Sec. 5.1);
//! the algorithm experiments run in `f32`. This module bridges the two:
//! it re-executes the point MLP with symmetric per-tensor INT8
//! quantization (`gen_nerf_nn::quant`) — the same arithmetic the
//! accelerator performs — and measures how far the quantized densities
//! drift from the float reference. Tests pin the drift small enough
//! that the algorithm-level PSNR results transfer to the INT8 hardware.

use crate::features::{AggregateArena, PointAggregate};
use crate::model::{density_from_logit, GenNerfModel, RayModule};
use gen_nerf_nn::quant::QuantTensor;
use gen_nerf_nn::Tensor2;

/// Runs the point MLP in INT8 (weights *and* activations quantized per
/// layer, f32 bias add and ReLU — the usual integer-accumulate /
/// float-rescale flow) over a batch of aggregation stats.
///
/// Returns the `n × (d_sigma + 3)` output like the float path.
pub fn quantized_point_mlp(model: &GenNerfModel, x: &Tensor2) -> Tensor2 {
    let (l1, l2, l3) = model.point_mlp.layers();
    let mut h = quant_linear(x, &l1.w.value, &l1.b.value);
    h.relu_in_place();
    let mut h2 = quant_linear(&h, &l2.w.value, &l2.b.value);
    h2.relu_in_place();
    quant_linear(&h2, &l3.w.value, &l3.b.value)
}

fn quant_linear(x: &Tensor2, w: &Tensor2, b: &Tensor2) -> Tensor2 {
    let qx = QuantTensor::quantize(x);
    let qw = QuantTensor::quantize(w);
    qx.matmul(&qw).add_row_broadcast(b)
}

/// The drift comparison core: float vs INT8 point MLP over one stats
/// matrix (`n × point_input_dim`), densities through a float ray
/// module on both sides.
fn density_drift_of(model: &GenNerfModel, x: &Tensor2) -> (f32, f32) {
    let n = x.rows();
    let d_sigma = model.config.d_sigma;
    let mut float_model = model.clone();
    let y_float = float_model.point_mlp.forward(x);
    let y_quant = quantized_point_mlp(model, x);

    let run_ray = |y: &Tensor2, module: &mut RayModule| -> Vec<f32> {
        let f_sigma = Tensor2::from_fn(n, d_sigma, |r, c| y[(r, c)]);
        let logits = module.forward(&f_sigma);
        (0..n).map(|k| density_from_logit(logits[(k, 0)])).collect()
    };
    let mut module_a = model.ray_module.clone();
    let mut module_b = model.ray_module.clone();
    let d_float = run_ray(&y_float, &mut module_a);
    let d_quant = run_ray(&y_quant, &mut module_b);

    let mut max_err = 0.0f32;
    let mut sum_err = 0.0f32;
    for (a, b) in d_float.iter().zip(&d_quant) {
        let e = (a - b).abs();
        max_err = max_err.max(e);
        sum_err += e;
    }
    (max_err, sum_err / n as f32)
}

/// Compares float vs INT8 densities for one ray's aggregates.
///
/// Returns `(max_abs_density_error, mean_abs_density_error)` over the
/// points. The ray module itself is executed in float for both paths
/// (its inputs are the quantized-vs-float `f^σ` features), isolating
/// the point-MLP quantization effect the systolic arrays introduce.
pub fn density_drift(model: &GenNerfModel, aggs: &[PointAggregate]) -> (f32, f32) {
    if aggs.is_empty() {
        return (0.0, 0.0);
    }
    let x = Tensor2::from_fn(aggs.len(), model.config.point_input_dim(), |r, c| {
        aggs[r].stats[c]
    });
    density_drift_of(model, &x)
}

/// [`density_drift`] over every point of an [`AggregateArena`]: the
/// arena's stats matrix feeds both the float and the INT8 point MLP
/// **in place** (the quantizer reads the same SoA rows the fused GEMM
/// consumes — no AoS staging copy).
///
/// # Panics
///
/// Panics when the arena's stats width differs from the point-MLP
/// input width.
pub fn density_drift_arena(model: &GenNerfModel, arena: &AggregateArena) -> (f32, f32) {
    if arena.total_points() == 0 {
        return (0.0, 0.0);
    }
    assert_eq!(
        arena.stats().cols(),
        model.config.point_input_dim(),
        "arena stats width is not the point-MLP input width"
    );
    density_drift_of(model, arena.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::{aggregate_point, prepare_sources};
    use crate::trainer::{TrainConfig, Trainer};
    use gen_nerf_scene::{Dataset, DatasetKind};

    fn trained_setup() -> (Dataset, Vec<crate::features::SourceViewData>, GenNerfModel) {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 4, 1, 24, 5);
        let sources = prepare_sources(&ds.source_views);
        let mut model = GenNerfModel::new(ModelConfig::fast());
        let mut trainer = Trainer::new(TrainConfig {
            steps: 150,
            ..TrainConfig::fast()
        });
        trainer.pretrain(&mut model, &[&ds]);
        (ds, sources, model)
    }

    fn center_ray_aggs(
        ds: &Dataset,
        sources: &[crate::features::SourceViewData],
        n: usize,
    ) -> Vec<PointAggregate> {
        let cam = &ds.eval_views[0].camera;
        let ray = cam.pixel_center_ray(cam.intrinsics.width / 2, cam.intrinsics.height / 2);
        let (t0, t1) = ds.scene.bounds.intersect_ray(&ray).unwrap();
        gen_nerf_geometry::Ray::uniform_depths(t0, t1, n)
            .into_iter()
            .map(|t| aggregate_point(ray.at(t), ray.direction, sources, 12))
            .collect()
    }

    #[test]
    fn quantized_mlp_matches_shape() {
        let (ds, sources, model) = trained_setup();
        let aggs = center_ray_aggs(&ds, &sources, 8);
        let x = Tensor2::from_fn(8, 26, |r, c| aggs[r].stats[c]);
        let y = quantized_point_mlp(&model, &x);
        assert_eq!((y.rows(), y.cols()), (8, 19));
        assert!(y.is_finite());
    }

    #[test]
    fn int8_density_drift_is_small() {
        // The headline fidelity check: INT8 systolic execution changes
        // trained densities only slightly relative to their magnitude.
        let (ds, sources, model) = trained_setup();
        let aggs = center_ray_aggs(&ds, &sources, 16);
        let (max_err, mean_err) = density_drift(&model, &aggs);
        // Densities in these scenes reach ~50; demand sub-10% worst-case
        // and small mean drift. The exact drift depends on the trained
        // weights and therefore on the RNG stream behind the training
        // seed, so the mean bound carries slack for stream changes.
        assert!(max_err < 5.0, "max INT8 density drift {max_err}");
        assert!(mean_err < 2.0, "mean INT8 density drift {mean_err}");
    }

    #[test]
    fn drift_of_empty_ray_is_zero() {
        let model = GenNerfModel::new(ModelConfig::fast());
        assert_eq!(density_drift(&model, &[]), (0.0, 0.0));
        assert_eq!(
            density_drift_arena(&model, &AggregateArena::default()),
            (0.0, 0.0)
        );
    }

    #[test]
    fn arena_drift_matches_aos_drift_bitwise() {
        use crate::features::aggregate_points_into;
        let (ds, sources, model) = trained_setup();
        let cam = &ds.eval_views[0].camera;
        let ray = cam.pixel_center_ray(cam.intrinsics.width / 2, cam.intrinsics.height / 2);
        let (t0, t1) = ds.scene.bounds.intersect_ray(&ray).unwrap();
        let depths = gen_nerf_geometry::Ray::uniform_depths(t0, t1, 16);
        let pts: Vec<_> = depths.iter().map(|&t| ray.at(t)).collect();
        let dirs = vec![ray.direction; pts.len()];
        let mut arena = AggregateArena::default();
        arena.reset(sources.len(), 12);
        aggregate_points_into(&pts, &dirs, &sources, 12, &mut arena);
        let aggs = arena.export_ray(0);
        let (ma, ea) = density_drift_arena(&model, &arena);
        let (mb, eb) = density_drift(&model, &aggs);
        assert_eq!((ma.to_bits(), ea.to_bits()), (mb.to_bits(), eb.to_bits()));
    }

    #[test]
    fn quantized_close_to_float_elementwise() {
        let (ds, sources, model) = trained_setup();
        let aggs = center_ray_aggs(&ds, &sources, 12);
        let x = Tensor2::from_fn(12, 26, |r, c| aggs[r].stats[c]);
        let mut fm = model.clone();
        let y_float = fm.point_mlp.forward(&x);
        let y_quant = quantized_point_mlp(&model, &x);
        let rel = (&y_quant - &y_float).norm() / y_float.norm().max(1e-6);
        assert!(rel < 0.1, "relative INT8 output error {rel}");
    }
}
