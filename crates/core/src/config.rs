//! Model and sampling configuration.

use serde::{Deserialize, Serialize};

/// Which cross-point ray module the model uses (Tab. 2's ablation
/// axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RayModuleChoice {
    /// Attention ray transformer (vanilla IBRNet).
    Transformer,
    /// The proposed Ray-Mixer (Sec. 3.3).
    Mixer,
    /// No cross-point module ("- ray transformer" row).
    None,
}

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Scene-feature channels per source view (`D`).
    pub d_features: usize,
    /// Point-MLP hidden width.
    pub hidden: usize,
    /// Density-feature width (`d_σ`, the ray module's token width).
    pub d_sigma: usize,
    /// Attention head width for the transformer variant.
    pub attn_head: usize,
    /// Maximum points per ray the Ray-Mixer is built for (`N_max`;
    /// shorter rays are padded, Sec. 3.2).
    pub n_max: usize,
    /// Coarse-stage hidden width (channel-scaled coarse MLP).
    pub coarse_hidden: usize,
    /// Coarse-stage feature channels (`⌈D · 0.25⌉` per the paper).
    pub coarse_channels: usize,
    /// Ray module variant.
    pub ray_module: RayModuleChoice,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl ModelConfig {
    /// The configuration used by the quality experiments: small enough
    /// to train and render in-process within seconds, structured
    /// exactly like the paper's model.
    pub fn fast() -> Self {
        Self {
            d_features: 12,
            hidden: 48,
            d_sigma: 16,
            attn_head: 8,
            n_max: 64,
            coarse_hidden: 16,
            coarse_channels: 3,
            ray_module: RayModuleChoice::Mixer,
            seed: 17,
        }
    }

    /// `fast()` with a different ray module.
    pub fn with_ray_module(mut self, m: RayModuleChoice) -> Self {
        self.ray_module = m;
        self
    }

    /// Point-MLP input width: mean + variance per channel, mean
    /// direction similarity, valid-view fraction.
    pub fn point_input_dim(&self) -> usize {
        2 * self.d_features + 2
    }

    /// Coarse-MLP input width.
    pub fn coarse_input_dim(&self) -> usize {
        2 * self.coarse_channels + 2
    }

    /// Point-MLP output width: density feature + RGB residual.
    pub fn point_output_dim(&self) -> usize {
        self.d_sigma + 3
    }

    /// MACs of one point-MLP evaluation.
    pub fn mlp_macs_per_point(&self) -> u64 {
        (self.point_input_dim() * self.hidden
            + self.hidden * self.hidden
            + self.hidden * self.point_output_dim()) as u64
    }

    /// MACs of one coarse-MLP evaluation.
    pub fn coarse_mlp_macs_per_point(&self) -> u64 {
        (self.coarse_input_dim() * self.coarse_hidden
            + self.coarse_hidden * self.coarse_hidden
            + self.coarse_hidden) as u64
    }

    /// Ray-module MACs for an `n`-point ray.
    pub fn ray_module_macs(&self, n: usize) -> u64 {
        let d = self.d_sigma;
        match self.ray_module {
            RayModuleChoice::Transformer => {
                let dk = self.attn_head;
                (2 * n * n * dk + 4 * n * d * dk + n * d) as u64
            }
            RayModuleChoice::Mixer => {
                // Zero-padded tokens contribute nothing to the token FC
                // (their features are zero), so the hardware only
                // computes the n×n block: cost is dynamic in `n`.
                (n * n * d + n * d * d + n * d) as u64
            }
            RayModuleChoice::None => (n * d) as u64,
        }
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// A point-sampling strategy (Sec. 3.2 and baselines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// `n` uniform samples per ray.
    Uniform {
        /// Samples per ray.
        n: usize,
    },
    /// IBRNet/NeRF hierarchical sampling: `n_coarse` uniform samples
    /// with the full model, then `n_fine` importance samples; the union
    /// is composited. Every ray gets the same count.
    Hierarchical {
        /// Uniform samples in the first pass.
        n_coarse: usize,
        /// Importance samples in the second pass.
        n_fine: usize,
    },
    /// The proposed coarse-then-focus sampling: a lightweight coarse
    /// pass (`n_coarse` samples, `s_coarse` views, channel-scaled MLP)
    /// estimates hitting probabilities; focused samples are allocated
    /// *across* rays by `P(j) ∝ N^cr_j` with an image-wide budget of
    /// `n_focused` per ray on average.
    CoarseThenFocus {
        /// Coarse samples per ray (`N_c`).
        n_coarse: usize,
        /// Average focused samples per ray (`N_f`).
        n_focused: usize,
        /// Hitting-probability threshold `τ` for critical points.
        tau: f32,
        /// Source views used by the coarse pass (`S_c`).
        s_coarse: usize,
    },
}

impl SamplingStrategy {
    /// The paper's coarse-then-focus defaults (`τ = 0.01`,
    /// `S_c = 4`).
    pub fn coarse_then_focus(n_coarse: usize, n_focused: usize) -> Self {
        SamplingStrategy::CoarseThenFocus {
            n_coarse,
            n_focused,
            tau: 0.01,
            s_coarse: 4,
        }
    }

    /// Average sampled points per ray (the Fig. 9 x-axis).
    pub fn avg_points_per_ray(&self) -> usize {
        match *self {
            SamplingStrategy::Uniform { n } => n,
            SamplingStrategy::Hierarchical { n_coarse, n_fine } => n_coarse + n_fine,
            SamplingStrategy::CoarseThenFocus {
                n_coarse,
                n_focused,
                ..
            } => n_coarse + n_focused,
        }
    }

    /// Whether the strategy produces non-uniform per-ray counts.
    pub fn is_nonuniform(&self) -> bool {
        matches!(self, SamplingStrategy::CoarseThenFocus { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_config_dims_consistent() {
        let c = ModelConfig::fast();
        assert_eq!(c.point_input_dim(), 26);
        assert_eq!(c.point_output_dim(), 19);
        assert_eq!(c.coarse_input_dim(), 8);
    }

    #[test]
    fn mlp_macs_formula() {
        let c = ModelConfig::fast();
        let expect = (26 * 48 + 48 * 48 + 48 * 19) as u64;
        assert_eq!(c.mlp_macs_per_point(), expect);
    }

    #[test]
    fn transformer_macs_grow_quadratically() {
        let c = ModelConfig::fast().with_ray_module(RayModuleChoice::Transformer);
        // 2n²dk dominates but the linear projection term tempers the ratio.
        assert!(c.ray_module_macs(64) as f64 > 2.5 * c.ray_module_macs(32) as f64);
    }

    #[test]
    fn mixer_macs_dynamic_in_point_count() {
        // Zero-padding means only the n×n token-FC block is computed.
        let c = ModelConfig::fast();
        assert!(c.ray_module_macs(8) < c.ray_module_macs(64));
    }

    #[test]
    fn none_module_is_cheapest() {
        let base = ModelConfig::fast();
        let none = base.with_ray_module(RayModuleChoice::None);
        assert!(none.ray_module_macs(64) < base.ray_module_macs(64));
    }

    #[test]
    fn strategy_point_counts() {
        assert_eq!(SamplingStrategy::Uniform { n: 24 }.avg_points_per_ray(), 24);
        assert_eq!(
            SamplingStrategy::Hierarchical {
                n_coarse: 8,
                n_fine: 16
            }
            .avg_points_per_ray(),
            24
        );
        assert_eq!(
            SamplingStrategy::coarse_then_focus(8, 16).avg_points_per_ray(),
            24
        );
    }

    #[test]
    fn only_ctf_is_nonuniform() {
        assert!(SamplingStrategy::coarse_then_focus(8, 8).is_nonuniform());
        assert!(!SamplingStrategy::Uniform { n: 8 }.is_nonuniform());
        assert!(!SamplingStrategy::Hierarchical {
            n_coarse: 4,
            n_fine: 4
        }
        .is_nonuniform());
    }
}
