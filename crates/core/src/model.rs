//! The generalizable NeRF model (Steps 3–4 of Sec. 2.2).
//!
//! [`GenNerfModel`] bundles:
//!
//! * the **point MLP** `f` mapping cross-view aggregation statistics to
//!   a density feature `f^σ` and an RGB residual,
//! * a **ray module** contextualizing density along the ray — the
//!   attention *ray transformer* baseline, the proposed *Ray-Mixer*
//!   (Sec. 3.3) or none (Tab. 2 row 3),
//! * a **blend head** producing per-source-view color weights
//!   (IBRNet-style image-based color prediction),
//! * a channel-scaled **coarse MLP** used only by the lightweight
//!   coarse sampling pass (Sec. 3.2, Step ①).
//!
//! Densities are predicted in `log1p` space: the model outputs
//! `z ≈ ln(1 + σ)`, decoded by [`density_from_logit`]. All modules are
//! trainable in-process ([`crate::trainer`]).

use crate::config::{ModelConfig, RayModuleChoice};
use crate::features::{AggregateArena, AggregateView, PointAggregate};
use gen_nerf_geometry::Vec3;
use gen_nerf_nn::attention::{AttnScratch, SelfAttention};
use gen_nerf_nn::init::Rng;
use gen_nerf_nn::layers::{mse_loss, Linear, Param, Relu};
use gen_nerf_nn::mixer::RayMixer;
use gen_nerf_nn::Tensor2;
use serde::{Deserialize, Serialize};

/// Decodes a density logit: `σ = exp(z) − 1`, clamped to `[0, ∞)`.
pub fn density_from_logit(z: f32) -> f32 {
    (z.clamp(-8.0, 8.0).exp() - 1.0).max(0.0)
}

/// Encodes a ground-truth density as a training target:
/// `z = ln(1 + σ)`.
pub fn logit_from_density(sigma: f32) -> f32 {
    (sigma.max(0.0) + 1.0).ln()
}

/// A three-layer ReLU MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    l1: Linear,
    a1: Relu,
    l2: Linear,
    a2: Relu,
    l3: Linear,
}

impl Mlp {
    /// Creates `in_dim → hidden → hidden → out_dim`.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Self {
            l1: Linear::new(in_dim, hidden, rng),
            a1: Relu::new(),
            l2: Linear::new(hidden, hidden, rng),
            a2: Relu::new(),
            l3: Linear::new(hidden, out_dim, rng),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.l1.in_dim()
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.l1.out_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.l3.out_dim()
    }

    /// Forward pass (caches for backward).
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let h1 = self.a1.forward(&self.l1.forward(x));
        let h2 = self.a2.forward(&self.l2.forward(&h1));
        self.l3.forward(&h2)
    }

    /// Forward pass without caching (inference only) — usable through
    /// `&self` so render workers can share one model across threads.
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let h1 = self.a1.forward_inference(&self.l1.forward_inference(x));
        let h2 = self.a2.forward_inference(&self.l2.forward_inference(&h1));
        self.l3.forward_inference(&h2)
    }

    /// Inference forward through reusable scratch buffers; the result
    /// lands in `scratch.out`. Bit-identical to
    /// [`Mlp::forward_inference`] (the layers' `_into`/in-place
    /// variants share its arithmetic) while allocating nothing once the
    /// scratch buffers have grown to size.
    pub fn forward_inference_into(&self, x: &Tensor2, scratch: &mut MlpScratch) {
        self.l1.forward_into(x, &mut scratch.h1);
        self.a1.forward_inference_in_place(&mut scratch.h1);
        self.l2.forward_into(&scratch.h1, &mut scratch.h2);
        self.a2.forward_inference_in_place(&mut scratch.h2);
        self.l3.forward_into(&scratch.h2, &mut scratch.out);
    }

    /// Backward pass; accumulates gradients, returns `∂L/∂x`.
    pub fn backward(&mut self, grad_out: &Tensor2) -> Tensor2 {
        let g2 = self.a2.backward(&self.l3.backward(grad_out));
        let g1 = self.a1.backward(&self.l2.backward(&g2));
        self.l1.backward(&g1)
    }

    /// Trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        out.extend(self.l1.params_mut());
        out.extend(self.l2.params_mut());
        out.extend(self.l3.params_mut());
        out
    }

    /// Shared access to the three layers (used by INT8 re-execution).
    pub fn layers(&self) -> (&Linear, &Linear, &Linear) {
        (&self.l1, &self.l2, &self.l3)
    }

    /// Direct access to the three layers (used by channel pruning).
    pub fn layers_mut(&mut self) -> (&mut Linear, &mut Linear, &mut Linear) {
        (&mut self.l1, &mut self.l2, &mut self.l3)
    }

    /// Replaces the three layers (used by channel pruning).
    pub fn replace_layers(&mut self, l1: Linear, l2: Linear, l3: Linear) {
        self.l1 = l1;
        self.l2 = l2;
        self.l3 = l3;
    }
}

/// The cross-point density module.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)] // one module lives per model; size is irrelevant
pub enum RayModule {
    /// Attention ray transformer + density projection.
    Transformer {
        /// Self-attention over the ray's density features.
        attn: SelfAttention,
        /// Projection from contextualized features to a density logit.
        proj: Linear,
    },
    /// The Ray-Mixer (projection built in, Eq. 5's `W₃`).
    Mixer(RayMixer),
    /// Per-point projection only.
    None {
        /// Density projection.
        proj: Linear,
    },
}

impl RayModule {
    fn new(cfg: &ModelConfig, rng: &mut Rng) -> Self {
        match cfg.ray_module {
            RayModuleChoice::Transformer => RayModule::Transformer {
                attn: SelfAttention::new(cfg.d_sigma, cfg.attn_head, rng),
                proj: Linear::new(cfg.d_sigma, 1, rng),
            },
            RayModuleChoice::Mixer => RayModule::Mixer(RayMixer::new(cfg.n_max, cfg.d_sigma, rng)),
            RayModuleChoice::None => RayModule::None {
                proj: Linear::new(cfg.d_sigma, 1, rng),
            },
        }
    }

    /// Density logits for an `n × d_σ` feature sequence. The mixer pads
    /// to its fixed `N_max` (paper Sec. 3.2); `n` must not exceed it.
    ///
    /// # Panics
    ///
    /// Panics when `n > N_max` for the mixer variant.
    pub fn forward(&mut self, f_sigma: &Tensor2) -> Tensor2 {
        let n = f_sigma.rows();
        match self {
            RayModule::Transformer { attn, proj } => {
                let y = attn.forward(f_sigma);
                proj.forward(&y)
            }
            RayModule::Mixer(mixer) => {
                let nm = mixer.n_points();
                assert!(n <= nm, "ray has {n} points, mixer supports {nm}");
                let padded = if n == nm {
                    f_sigma.clone()
                } else {
                    Tensor2::vstack(&[f_sigma.clone(), Tensor2::zeros(nm - n, f_sigma.cols())])
                };
                mixer.forward(&padded).slice_rows(0, n)
            }
            RayModule::None { proj } => proj.forward(f_sigma),
        }
    }

    /// Density logits through `&self` (no caching; inference only).
    ///
    /// The mixer variant runs its dynamic-`n` inference path (only the
    /// live `n × n` token block — no padding work), matching the
    /// dynamic cost `ModelConfig::ray_module_macs` accounts.
    ///
    /// # Panics
    ///
    /// Panics when `n > N_max` for the mixer variant.
    pub fn forward_inference(&self, f_sigma: &Tensor2) -> Tensor2 {
        match self {
            RayModule::Transformer { attn, proj } => {
                let y = attn.forward_inference(f_sigma);
                proj.forward_inference(&y)
            }
            RayModule::Mixer(mixer) => mixer.forward_inference(f_sigma),
            RayModule::None { proj } => proj.forward_inference(f_sigma),
        }
    }

    /// Fused inference over many rays' feature slices at once.
    ///
    /// Cross-point mixing never crosses rays, so only the per-ray
    /// phases run per ray (the mixer's `n × n` token mix, the
    /// transformer's softmax attention core); every row-independent
    /// phase — the mixer's channel FC + projection, the transformer's
    /// q/k/v input projections and output projection + density
    /// projection, the `None` projection — runs as **one** GEMM over
    /// the stacked chunk. Per-ray outputs are bit-identical to
    /// [`RayModule::forward_inference`] on each slice — the GEMM
    /// kernel's row-independence contract again. Empty rays yield
    /// empty logit vectors.
    ///
    /// # Panics
    ///
    /// Panics when any ray exceeds `N_max` for the mixer variant.
    pub fn forward_inference_batch(&self, rays_f_sigma: &[Tensor2]) -> Vec<Vec<f32>> {
        let mut scratch = RayModuleScratch::default();
        self.forward_inference_batch_scratch(rays_f_sigma, &mut scratch)
    }

    /// [`RayModule::forward_inference_batch`] with caller-owned
    /// scratch buffers (reused across chunks by long-lived render
    /// workers).
    pub fn forward_inference_batch_scratch(
        &self,
        rays_f_sigma: &[Tensor2],
        scratch: &mut RayModuleScratch,
    ) -> Vec<Vec<f32>> {
        let live: Vec<usize> = (0..rays_f_sigma.len())
            .filter(|&i| rays_f_sigma[i].rows() > 0)
            .collect();
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); rays_f_sigma.len()];
        if live.is_empty() {
            return out;
        }
        match self {
            RayModule::Transformer { attn, proj } => {
                // The softmax attention core is intrinsically per-ray
                // (the very cost the Ray-Mixer exists to remove,
                // Sec. 3.3), but the q/k/v/o projections are
                // row-independent: batch them across the chunk's rays
                // and chain the density projection as one more fused
                // GEMM over the stacked output.
                let refs: Vec<&Tensor2> = live.iter().map(|&i| &rays_f_sigma[i]).collect();
                attn.forward_inference_batch_into(&refs, &mut scratch.attn);
                proj.forward_into(&scratch.attn.out, &mut scratch.logits);
                let mut offset = 0;
                for &i in &live {
                    let n = rays_f_sigma[i].rows();
                    out[i] = (0..n).map(|k| scratch.logits[(offset + k, 0)]).collect();
                    offset += n;
                }
            }
            RayModule::Mixer(mixer) => {
                // Token phase: one GEMM per distinct ray length (a
                // uniform chunk is a single group), preserving ray
                // order for the fused channel/projection phase.
                let mut by_len: std::collections::BTreeMap<usize, Vec<usize>> =
                    std::collections::BTreeMap::new();
                for (slot, &i) in live.iter().enumerate() {
                    by_len.entry(rays_f_sigma[i].rows()).or_default().push(slot);
                }
                let mut fs: Vec<Option<Tensor2>> = vec![None; live.len()];
                for (_, slots) in by_len {
                    let group: Vec<&Tensor2> =
                        slots.iter().map(|&s| &rays_f_sigma[live[s]]).collect();
                    for (slot, f) in slots.iter().zip(mixer.mix_tokens_inference_group(&group)) {
                        fs[*slot] = Some(f);
                    }
                }
                let fs: Vec<Tensor2> = fs.into_iter().map(|f| f.unwrap()).collect();
                let logits = mixer.finish_inference(&Tensor2::vstack(&fs));
                let mut offset = 0;
                for (&i, f) in live.iter().zip(&fs) {
                    let n = f.rows();
                    out[i] = (0..n).map(|k| logits[(offset + k, 0)]).collect();
                    offset += n;
                }
            }
            RayModule::None { proj } => {
                // Stack the live rays' rows into the reusable scratch
                // tensor and project the whole chunk in one GEMM.
                let total: usize = live.iter().map(|&i| rays_f_sigma[i].rows()).sum();
                let d = rays_f_sigma[live[0]].cols();
                scratch.stacked.reset_zeroed(total, d);
                let mut r = 0;
                for &i in &live {
                    let t = &rays_f_sigma[i];
                    for row in 0..t.rows() {
                        scratch.stacked.row_mut(r).copy_from_slice(t.row(row));
                        r += 1;
                    }
                }
                proj.forward_into(&scratch.stacked, &mut scratch.logits);
                let mut offset = 0;
                for &i in &live {
                    let n = rays_f_sigma[i].rows();
                    out[i] = (0..n).map(|k| scratch.logits[(offset + k, 0)]).collect();
                    offset += n;
                }
            }
        }
        out
    }

    /// Backward pass from per-point logit gradients; returns the
    /// gradient w.r.t. the input features.
    pub fn backward(&mut self, grad_logits: &Tensor2, n: usize) -> Tensor2 {
        match self {
            RayModule::Transformer { attn, proj } => {
                let g_y = proj.backward(grad_logits);
                attn.backward(&g_y)
            }
            RayModule::Mixer(mixer) => {
                let nm = mixer.n_points();
                let padded = if n == nm {
                    grad_logits.clone()
                } else {
                    Tensor2::vstack(&[grad_logits.clone(), Tensor2::zeros(nm - n, 1)])
                };
                mixer.backward(&padded).slice_rows(0, n)
            }
            RayModule::None { proj } => proj.backward(grad_logits),
        }
    }

    /// Trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            RayModule::Transformer { attn, proj } => {
                let mut p = attn.params_mut();
                p.extend(proj.params_mut());
                p
            }
            RayModule::Mixer(mixer) => mixer.params_mut(),
            RayModule::None { proj } => proj.params_mut(),
        }
    }
}

/// Reusable activation buffers for one [`Mlp`]'s inference forward.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    h1: Tensor2,
    h2: Tensor2,
    /// The MLP output of the latest [`Mlp::forward_inference_into`].
    pub out: Tensor2,
}

/// Reusable buffers for [`RayModule::forward_inference_batch_scratch`]
/// (the attention temporaries of the transformer variant and the
/// stacked projection inputs/outputs).
#[derive(Debug, Clone, Default)]
pub struct RayModuleScratch {
    /// Attention temporaries (transformer variant).
    attn: AttnScratch,
    /// Stacked density logits of the chunk.
    logits: Tensor2,
    /// Stacked feature rows (`None` variant).
    stacked: Tensor2,
}

/// Chunk-level scratch buffers for the fused cross-ray inference path
/// ([`GenNerfModel::forward_rays_arena`] /
/// [`GenNerfModel::forward_rays_scratch`]). One instance per render
/// worker replaces the per-ray/per-point tensor allocations of the
/// per-ray path (notably `blend_color`'s three `Vec`s + `Tensor2` per
/// point) and, within the fused path, the per-chunk attention and
/// `f^σ` slice temporaries.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    /// SoA staging arena for the AoS compat entry points
    /// ([`GenNerfModel::forward_rays`]): `&[&[PointAggregate]]` inputs
    /// are copied here once, then ride the arena implementation. The
    /// arena-native path never touches it.
    staging: AggregateArena,
    /// The fused-phase buffers proper.
    fused: FusedScratch,
}

/// The buffers of one fused forward (shared by the arena-native and
/// staged entry points).
#[derive(Debug, Clone, Default)]
struct FusedScratch {
    /// Point-MLP activations.
    mlp: MlpScratch,
    /// Fused blend-head input (one row per valid (point, view) pair).
    blend_in: Tensor2,
    /// Blend-head activations.
    blend: MlpScratch,
    /// Per-point softmax weights.
    weights: Vec<f32>,
    /// Per-ray `f^σ` slices of the fused activations (buffers reused
    /// across chunks).
    f_sigma: Vec<Tensor2>,
    /// Ray-module temporaries.
    ray_module: RayModuleScratch,
}

/// Inference output for one ray.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RayOutput {
    /// Per-point densities (σ ≥ 0).
    pub densities: Vec<f32>,
    /// Per-point view-blended colors.
    pub colors: Vec<Vec3>,
}

/// Per-ray training losses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RayLosses {
    /// Density-logit MSE.
    pub sigma: f32,
    /// Masked color MSE.
    pub color: f32,
}

/// The full generalizable NeRF model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenNerfModel {
    /// Hyperparameters.
    pub config: ModelConfig,
    /// Point MLP `f` (stats → density feature + RGB residual).
    pub point_mlp: Mlp,
    /// Lightweight coarse MLP (coarse stats → density logit).
    pub coarse_mlp: Mlp,
    /// Per-view color blend head (`[dir_sim, deviation] → logit`).
    pub blend: Mlp,
    /// Cross-point density module.
    pub ray_module: RayModule,
}

impl GenNerfModel {
    /// Creates a model with seeded initialization.
    pub fn new(config: ModelConfig) -> Self {
        let mut rng = Rng::seed_from(config.seed);
        Self {
            point_mlp: Mlp::new(
                config.point_input_dim(),
                config.hidden,
                config.point_output_dim(),
                &mut rng,
            ),
            coarse_mlp: Mlp::new(config.coarse_input_dim(), config.coarse_hidden, 1, &mut rng),
            blend: Mlp::new(2, 8, 1, &mut rng),
            ray_module: RayModule::new(&config, &mut rng),
            config,
        }
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.point_mlp.params_mut();
        p.extend(self.coarse_mlp.params_mut());
        p.extend(self.blend.params_mut());
        p.extend(self.ray_module.params_mut());
        p
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    fn stats_tensor<V: AggregateView + ?Sized>(aggs: &V, dim: usize) -> Tensor2 {
        Tensor2::from_fn(aggs.n_points(), dim, |r, c| aggs.stats_row(r)[c])
    }

    /// Full-model inference over the points of one ray.
    ///
    /// Points seen by no source view get zero density and color.
    ///
    /// Takes `&self` (no activation caching), so one model can be
    /// shared by every render worker thread — `GenNerfModel` contains
    /// no interior mutability and is therefore `Sync`. Training uses
    /// the separate caching paths in [`GenNerfModel::train_ray`].
    pub fn forward_ray(&self, aggs: &[PointAggregate]) -> RayOutput {
        if aggs.is_empty() {
            return RayOutput {
                densities: Vec::new(),
                colors: Vec::new(),
            };
        }
        let n = aggs.len();
        let d_sigma = self.config.d_sigma;
        let x = Self::stats_tensor(aggs, self.config.point_input_dim());
        let y = self.point_mlp.forward_inference(&x);
        let f_sigma = Tensor2::from_fn(n, d_sigma, |r, c| y[(r, c)]);
        let logits = self.ray_module.forward_inference(&f_sigma);

        let mut densities = Vec::with_capacity(n);
        let mut colors = Vec::with_capacity(n);
        for (k, agg) in aggs.iter().enumerate() {
            if agg.n_valid == 0 {
                densities.push(0.0);
                colors.push(Vec3::ZERO);
                continue;
            }
            densities.push(density_from_logit(logits[(k, 0)]));
            let resid = Vec3::new(
                0.1 * y[(k, d_sigma)].tanh(),
                0.1 * y[(k, d_sigma + 1)].tanh(),
                0.1 * y[(k, d_sigma + 2)].tanh(),
            );
            colors.push((self.blend_color(agg) + resid).clamp(0.0, 1.0));
        }
        RayOutput { densities, colors }
    }

    /// Fused inference over the points of a whole chunk of rays — the
    /// software analog of the paper's PE pool amortizing the point-MLP
    /// GEMM across many rays' samples at once.
    ///
    /// Where [`GenNerfModel::forward_ray`] issues one sub-16-row GEMM
    /// chain per ray plus one tiny blend GEMM per *point*, this path
    /// concatenates every point of every ray into a single input
    /// tensor, runs **one** point-MLP GEMM chain, one ray-module pass
    /// per ray over slices of the fused activations, and **one** blend
    /// GEMM over all valid (point, view) pairs of the chunk.
    ///
    /// # Bit-exactness contract
    ///
    /// The output is **bit-for-bit identical** to calling
    /// [`GenNerfModel::forward_ray`] on each slice, for any grouping of
    /// rays into chunks. This holds because the dense `matmul` kernel
    /// in `gen-nerf-nn` accumulates every output element over the
    /// shared dimension `k` in ascending order with one `f32`
    /// accumulator (register blocking tiles `i`/`j` only), making GEMM
    /// rows independent of which other rows share the batch; ray
    /// modules run per ray on identical inputs; and the fused blend
    /// head replays `blend_color`'s softmax reduction in the same
    /// order. `tests/fused_forward_regression.rs` pins the contract.
    pub fn forward_rays(&self, rays: &[&[PointAggregate]]) -> Vec<RayOutput> {
        let mut scratch = ForwardScratch::default();
        self.forward_rays_scratch(rays, &mut scratch)
    }

    /// [`GenNerfModel::forward_rays`] with caller-owned scratch buffers
    /// (reused across chunks by long-lived render workers).
    ///
    /// This is the AoS compat entry point: the aggregates are staged
    /// into the scratch's SoA arena once (the copy the arena-native
    /// path deletes), then both paths share one implementation — so
    /// compat ≡ arena bitwise by construction.
    ///
    /// # Panics
    ///
    /// All aggregates of a chunk must share one view count and stats
    /// width (they always do when aggregated against one prepared
    /// source set — every workspace caller): the SoA planes are
    /// rectangular, so the staging asserts per-point heterogeneous
    /// `valid` lengths instead of silently misaligning them.
    pub fn forward_rays_scratch(
        &self,
        rays: &[&[PointAggregate]],
        scratch: &mut ForwardScratch,
    ) -> Vec<RayOutput> {
        let total: usize = rays.iter().map(|r| r.len()).sum();
        if total == 0 {
            return rays
                .iter()
                .map(|_| RayOutput {
                    densities: Vec::new(),
                    colors: Vec::new(),
                })
                .collect();
        }
        let n_views = rays
            .iter()
            .flat_map(|r| r.iter())
            .next()
            .map(|a| a.valid.len())
            .expect("non-zero total implies a point");
        let ForwardScratch { staging, fused } = scratch;
        staging.reset(n_views, self.config.d_features);
        for ray in rays {
            for agg in ray.iter() {
                staging.push_aggregate(agg);
            }
            staging.seal_ray();
        }
        self.forward_fused(staging, fused)
    }

    /// Fused inference straight off an [`AggregateArena`] — the
    /// zero-copy fast path of the render schedule. The arena's stats
    /// matrix (one row per point, ray-major) **is** the point-MLP GEMM
    /// operand; no staging copy exists on this path.
    ///
    /// Output is bit-for-bit what [`GenNerfModel::forward_ray`] would
    /// produce on each ray's exported aggregates (same GEMM inputs in
    /// the same order; the kernel row-independence contract does the
    /// rest — pinned by `tests/arena_regression.rs`).
    ///
    /// # Panics
    ///
    /// Panics when the arena's stats width differs from the point-MLP
    /// input width (it was filled with the wrong channel count).
    pub fn forward_rays_arena(
        &self,
        arena: &AggregateArena,
        scratch: &mut ForwardScratch,
    ) -> Vec<RayOutput> {
        self.forward_fused(arena, &mut scratch.fused)
    }

    /// The single fused-forward implementation behind both entry
    /// points: one point-MLP GEMM chain over the arena stats matrix in
    /// place, per-ray ray-module passes over slices of the fused
    /// activations, one blend GEMM over all valid (point, view) pairs,
    /// per-ray assembly in `blend_color`'s reduction order.
    fn forward_fused(&self, points: &AggregateArena, scratch: &mut FusedScratch) -> Vec<RayOutput> {
        let n_rays = points.n_rays();
        let total = points.total_points();
        if total == 0 {
            return (0..n_rays)
                .map(|_| RayOutput {
                    densities: Vec::new(),
                    colors: Vec::new(),
                })
                .collect();
        }
        let d_sigma = self.config.d_sigma;
        assert_eq!(
            points.stats().cols(),
            self.config.point_input_dim(),
            "arena stats width is not the point-MLP input width"
        );
        let FusedScratch {
            mlp,
            blend_in,
            blend,
            weights,
            f_sigma,
            ray_module,
        } = scratch;

        // One point-MLP GEMM chain for the whole chunk, reading the
        // arena's stats matrix directly.
        self.point_mlp.forward_inference_into(points.stats(), mlp);
        let y = &mlp.out;

        // Ray module over per-ray slices of the fused activations:
        // per-ray phases stay per ray (mixing never crosses rays), but
        // the row-independent phases run once for the whole chunk. The
        // per-ray slice tensors reuse the scratch buffers across
        // chunks.
        if f_sigma.len() < n_rays {
            f_sigma.resize_with(n_rays, Tensor2::default);
        }
        for i in 0..n_rays {
            let range = points.ray_range(i);
            let slice = &mut f_sigma[i];
            slice.reset_zeroed(range.len(), d_sigma);
            for (r, k) in range.enumerate() {
                slice.row_mut(r).copy_from_slice(&y.row(k)[..d_sigma]);
            }
        }
        let logits_per_ray = self
            .ray_module
            .forward_inference_batch_scratch(&f_sigma[..n_rays], ray_module);

        // One blend-head GEMM over every valid (point, view) pair of
        // the chunk (ray-major, point-major, view-ascending), replacing
        // one 3-layer MLP call *per point* in the per-ray path.
        blend_in.reset_zeroed(points.valid_pairs().max(1), 2);
        let mut pr = 0;
        for k in 0..total {
            let inputs = points.blend_inputs_row(k);
            for (i, &ok) in points.valid_row(k).iter().enumerate() {
                if ok {
                    let row = blend_in.row_mut(pr);
                    row[0] = inputs[i][0];
                    row[1] = inputs[i][1];
                    pr += 1;
                }
            }
        }
        self.blend.forward_inference_into(blend_in, blend);
        let blend_logits = &blend.out;

        // Per-ray assembly: softmax each point's pair range (same
        // reduction order as `blend_color`), add the RGB residual.
        let mut outputs = Vec::with_capacity(n_rays);
        let mut pair = 0;
        for (i, logits) in logits_per_ray.iter().enumerate() {
            let range = points.ray_range(i);
            let mut densities = Vec::with_capacity(range.len());
            let mut colors = Vec::with_capacity(range.len());
            for (kk, k) in range.enumerate() {
                let m = points.n_valid(k);
                if m == 0 {
                    densities.push(0.0);
                    colors.push(Vec3::ZERO);
                    continue;
                }
                densities.push(density_from_logit(logits[kk]));
                let max = (pair..pair + m)
                    .map(|p| blend_logits[(p, 0)])
                    .fold(f32::NEG_INFINITY, f32::max);
                weights.clear();
                weights.extend((pair..pair + m).map(|p| (blend_logits[(p, 0)] - max).exp()));
                let total_w: f32 = weights.iter().sum();
                weights.iter_mut().for_each(|w| *w /= total_w);
                let mut blended = Vec3::ZERO;
                let mut wi = 0;
                for (v, &ok) in points.valid_row(k).iter().enumerate() {
                    if ok {
                        blended += points.view_colors_row(k)[v] * weights[wi];
                        wi += 1;
                    }
                }
                pair += m;
                let resid = Vec3::new(
                    0.1 * y[(k, d_sigma)].tanh(),
                    0.1 * y[(k, d_sigma + 1)].tanh(),
                    0.1 * y[(k, d_sigma + 2)].tanh(),
                );
                colors.push((blended + resid).clamp(0.0, 1.0));
            }
            outputs.push(RayOutput { densities, colors });
        }
        outputs
    }

    /// Blends source colors with softmax weights from the blend head.
    fn blend_color(&self, agg: &PointAggregate) -> Vec3 {
        let valid_idx: Vec<usize> = (0..agg.valid.len()).filter(|&i| agg.valid[i]).collect();
        if valid_idx.is_empty() {
            return Vec3::ZERO;
        }
        let input = Tensor2::from_fn(valid_idx.len(), 2, |r, c| agg.blend_inputs[valid_idx[r]][c]);
        let logits = self.blend.forward_inference(&input);
        let max = (0..valid_idx.len())
            .map(|r| logits[(r, 0)])
            .fold(f32::NEG_INFINITY, f32::max);
        let mut weights: Vec<f32> = (0..valid_idx.len())
            .map(|r| (logits[(r, 0)] - max).exp())
            .collect();
        let total: f32 = weights.iter().sum();
        weights.iter_mut().for_each(|w| *w /= total);
        let mut color = Vec3::ZERO;
        for (w, &i) in weights.iter().zip(&valid_idx) {
            color += agg.view_colors[i] * *w;
        }
        color
    }

    /// Coarse-pass density estimation (lightweight MLP, no ray module).
    /// `&self` for the same reason as [`GenNerfModel::forward_ray`].
    pub fn coarse_densities(&self, aggs: &[PointAggregate]) -> Vec<f32> {
        if aggs.is_empty() {
            return Vec::new();
        }
        let x = Self::stats_tensor(aggs, self.config.coarse_input_dim());
        let z = self.coarse_mlp.forward_inference(&x);
        aggs.iter()
            .enumerate()
            .map(|(k, agg)| {
                if agg.n_valid == 0 {
                    0.0
                } else {
                    density_from_logit(z[(k, 0)])
                }
            })
            .collect()
    }

    /// Fused coarse-pass density estimation for a chunk of rays: one
    /// coarse-MLP GEMM chain over every point of every ray, sliced back
    /// per ray. Bit-for-bit identical to per-ray
    /// [`GenNerfModel::coarse_densities`] for any chunking (same GEMM
    /// row-independence argument as [`GenNerfModel::forward_rays`]).
    pub fn coarse_densities_batch(&self, rays: &[&[PointAggregate]]) -> Vec<Vec<f32>> {
        let total: usize = rays.iter().map(|r| r.len()).sum();
        if total == 0 {
            return rays.iter().map(|_| Vec::new()).collect();
        }
        let in_dim = self.config.coarse_input_dim();
        let mut x = Tensor2::zeros(total, in_dim);
        let mut r = 0;
        for ray in rays {
            for agg in ray.iter() {
                x.row_mut(r).copy_from_slice(&agg.stats[..in_dim]);
                r += 1;
            }
        }
        let z = self.coarse_mlp.forward_inference(&x);
        let mut out = Vec::with_capacity(rays.len());
        let mut offset = 0;
        for ray in rays {
            out.push(
                ray.iter()
                    .enumerate()
                    .map(|(k, agg)| {
                        if agg.n_valid == 0 {
                            0.0
                        } else {
                            density_from_logit(z[(offset + k, 0)])
                        }
                    })
                    .collect(),
            );
            offset += ray.len();
        }
        out
    }

    /// Coarse-pass density estimation straight off an
    /// [`AggregateArena`] (filled at `coarse_channels` against the
    /// coarse source subset): one coarse-MLP GEMM chain over the
    /// arena's stats matrix **in place**, sliced back per ray. Bitwise
    /// equal to [`GenNerfModel::coarse_densities_batch`] over the
    /// exported aggregates.
    ///
    /// # Panics
    ///
    /// Panics when the arena's stats width differs from the coarse-MLP
    /// input width.
    pub fn coarse_densities_arena(
        &self,
        arena: &AggregateArena,
        scratch: &mut MlpScratch,
    ) -> Vec<Vec<f32>> {
        if arena.total_points() == 0 {
            return (0..arena.n_rays()).map(|_| Vec::new()).collect();
        }
        assert_eq!(
            arena.stats().cols(),
            self.config.coarse_input_dim(),
            "arena stats width is not the coarse-MLP input width"
        );
        self.coarse_mlp
            .forward_inference_into(arena.stats(), scratch);
        let z = &scratch.out;
        (0..arena.n_rays())
            .map(|r| {
                arena
                    .ray_range(r)
                    .map(|k| {
                        if arena.n_valid(k) == 0 {
                            0.0
                        } else {
                            density_from_logit(z[(k, 0)])
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// One training step's forward+backward for a ray: supervises
    /// density logits everywhere and blended colors at points where
    /// `color_mask[k]` holds. Gradients accumulate into the parameters;
    /// the caller runs the optimizer.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree.
    pub fn train_ray(
        &mut self,
        aggs: &[PointAggregate],
        gt_logits: &[f32],
        gt_colors: &[Vec3],
        color_mask: &[bool],
    ) -> RayLosses {
        self.train_ray_view(aggs, gt_logits, gt_colors, color_mask)
    }

    /// [`GenNerfModel::train_ray`] on ray `ray` of a step arena — the
    /// trainer's zero-copy acquisition path. Identical arithmetic
    /// (both entry points share one layout-generic implementation).
    pub fn train_ray_arena(
        &mut self,
        arena: &AggregateArena,
        ray: usize,
        gt_logits: &[f32],
        gt_colors: &[Vec3],
        color_mask: &[bool],
    ) -> RayLosses {
        self.train_ray_view(&arena.ray_view(ray), gt_logits, gt_colors, color_mask)
    }

    /// The layout-generic training step behind
    /// [`GenNerfModel::train_ray`] / [`GenNerfModel::train_ray_arena`].
    fn train_ray_view<V: AggregateView + ?Sized>(
        &mut self,
        aggs: &V,
        gt_logits: &[f32],
        gt_colors: &[Vec3],
        color_mask: &[bool],
    ) -> RayLosses {
        let n = aggs.n_points();
        assert_eq!(n, gt_logits.len(), "target length mismatch");
        assert_eq!(n, gt_colors.len(), "target length mismatch");
        assert_eq!(n, color_mask.len(), "target length mismatch");
        let d_sigma = self.config.d_sigma;

        // Forward.
        let x = Self::stats_tensor(aggs, self.config.point_input_dim());
        let y = self.point_mlp.forward(&x);
        let f_sigma = Tensor2::from_fn(n, d_sigma, |r, c| y[(r, c)]);
        let logits = self.ray_module.forward(&f_sigma);
        let target = Tensor2::from_fn(n, 1, |r, _| gt_logits[r]);
        let (sigma_loss, g_logits) = mse_loss(&logits, &target);

        // Density path backward.
        let g_fsigma = self.ray_module.backward(&g_logits, n);

        // Color path: blend + residual at masked points.
        let mut g_y = Tensor2::zeros(n, self.config.point_output_dim());
        for r in 0..n {
            for c in 0..d_sigma {
                g_y[(r, c)] = g_fsigma[(r, c)];
            }
        }
        let mut color_loss = 0.0f32;
        let mut color_count = 0usize;
        for k in 0..n {
            if !color_mask[k] || aggs.n_valid(k) == 0 {
                continue;
            }
            let (loss, g_resid) = self.train_point_color(
                aggs.valid_row(k),
                aggs.blend_inputs_row(k),
                aggs.view_colors_row(k),
                gt_colors[k],
                &y,
                k,
                d_sigma,
            );
            color_loss += loss;
            color_count += 1;
            for c in 0..3 {
                g_y[(k, d_sigma + c)] += g_resid[c];
            }
        }
        if color_count > 0 {
            color_loss /= color_count as f32;
        }

        self.point_mlp.backward(&g_y);
        RayLosses {
            sigma: sigma_loss,
            color: color_loss,
        }
    }

    /// Color loss + backward for one point; returns
    /// `(loss, ∂L/∂resid_pre_tanh)`.
    #[allow(clippy::too_many_arguments)] // one point's SoA rows, spelled out
    fn train_point_color(
        &mut self,
        valid: &[bool],
        blend_inputs: &[[f32; 2]],
        view_colors: &[Vec3],
        gt: Vec3,
        y: &Tensor2,
        k: usize,
        d_sigma: usize,
    ) -> (f32, [f32; 3]) {
        let valid_idx: Vec<usize> = (0..valid.len()).filter(|&i| valid[i]).collect();
        let input = Tensor2::from_fn(valid_idx.len(), 2, |r, c| blend_inputs[valid_idx[r]][c]);
        let logits = self.blend.forward(&input);
        let max = (0..valid_idx.len())
            .map(|r| logits[(r, 0)])
            .fold(f32::NEG_INFINITY, f32::max);
        let mut s: Vec<f32> = (0..valid_idx.len())
            .map(|r| (logits[(r, 0)] - max).exp())
            .collect();
        let total: f32 = s.iter().sum();
        s.iter_mut().for_each(|w| *w /= total);

        let mut blended = Vec3::ZERO;
        for (w, &i) in s.iter().zip(&valid_idx) {
            blended += view_colors[i] * *w;
        }
        let pre = [y[(k, d_sigma)], y[(k, d_sigma + 1)], y[(k, d_sigma + 2)]];
        let resid = Vec3::new(
            0.1 * pre[0].tanh(),
            0.1 * pre[1].tanh(),
            0.1 * pre[2].tanh(),
        );
        let out = blended + resid;
        let diff = out - gt;
        let loss = diff.length_squared() / 3.0;
        let g_out = diff * (2.0 / 3.0);

        // Blend-logit gradients: dL/dl_i = s_i (c_i − blended)·g_out.
        let g_logits = Tensor2::from_fn(valid_idx.len(), 1, |r, _| {
            s[r] * (view_colors[valid_idx[r]] - blended).dot(g_out)
        });
        self.blend.backward(&g_logits);

        // Residual gradients through 0.1·tanh.
        let mut g_resid = [0.0f32; 3];
        let g_arr = [g_out.x, g_out.y, g_out.z];
        for c in 0..3 {
            let t = pre[c].tanh();
            g_resid[c] = g_arr[c] * 0.1 * (1.0 - t * t);
        }
        (loss, g_resid)
    }

    /// Coarse-MLP training step for a batch of coarse aggregates.
    pub fn train_coarse(&mut self, aggs: &[PointAggregate], gt_logits: &[f32]) -> f32 {
        self.train_coarse_view(aggs, gt_logits)
    }

    /// [`GenNerfModel::train_coarse`] on ray `ray` of a coarse step
    /// arena (the trainer's zero-copy acquisition path).
    pub fn train_coarse_arena(
        &mut self,
        arena: &AggregateArena,
        ray: usize,
        gt_logits: &[f32],
    ) -> f32 {
        self.train_coarse_view(&arena.ray_view(ray), gt_logits)
    }

    fn train_coarse_view<V: AggregateView + ?Sized>(&mut self, aggs: &V, gt_logits: &[f32]) -> f32 {
        let n = aggs.n_points();
        assert_eq!(n, gt_logits.len(), "target length mismatch");
        if n == 0 {
            return 0.0;
        }
        let x = Self::stats_tensor(aggs, self.config.coarse_input_dim());
        let z = self.coarse_mlp.forward(&x);
        let target = Tensor2::from_fn(n, 1, |r, _| gt_logits[r]);
        let (loss, g) = mse_loss(&z, &target);
        self.coarse_mlp.backward(&g);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{aggregate_point, prepare_sources};
    use gen_nerf_nn::optim::Adam;
    use gen_nerf_scene::datasets::{Dataset, DatasetKind};

    fn tiny_setup() -> (Dataset, Vec<crate::features::SourceViewData>) {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 4, 1, 24, 5);
        let sources = prepare_sources(&ds.source_views);
        (ds, sources)
    }

    fn ray_aggs(
        ds: &Dataset,
        sources: &[crate::features::SourceViewData],
        n: usize,
    ) -> (Vec<PointAggregate>, Vec<f32>, Vec<Vec3>) {
        let cam = &ds.eval_views[0].camera;
        let ray = cam.pixel_center_ray(cam.intrinsics.width / 2, cam.intrinsics.height / 2);
        let (t0, t1) = ds.scene.bounds.intersect_ray(&ray).unwrap();
        let depths = gen_nerf_geometry::Ray::uniform_depths(t0, t1, n);
        let mut aggs = Vec::new();
        let mut gt_z = Vec::new();
        let mut gt_c = Vec::new();
        for &t in &depths {
            let p = ray.at(t);
            aggs.push(aggregate_point(p, ray.direction, sources, 12));
            gt_z.push(logit_from_density(ds.scene.density(p)));
            gt_c.push(ds.scene.color(p, ray.direction));
        }
        (aggs, gt_z, gt_c)
    }

    #[test]
    fn density_logit_roundtrip() {
        for sigma in [0.0f32, 0.5, 3.0, 40.0] {
            let z = logit_from_density(sigma);
            let back = density_from_logit(z);
            assert!(
                (back - sigma).abs() < sigma * 0.01 + 1e-4,
                "{sigma} -> {back}"
            );
        }
    }

    #[test]
    fn forward_ray_shapes() {
        let (ds, sources) = tiny_setup();
        let model = GenNerfModel::new(ModelConfig::fast());
        let (aggs, _, _) = ray_aggs(&ds, &sources, 12);
        let out = model.forward_ray(&aggs);
        assert_eq!(out.densities.len(), 12);
        assert_eq!(out.colors.len(), 12);
        assert!(out.densities.iter().all(|&d| d >= 0.0 && d.is_finite()));
        for c in &out.colors {
            assert!(c.x >= 0.0 && c.x <= 1.0);
        }
    }

    #[test]
    fn forward_rays_matches_forward_ray_bitwise() {
        let (ds, sources) = tiny_setup();
        for choice in [
            RayModuleChoice::Mixer,
            RayModuleChoice::Transformer,
            RayModuleChoice::None,
        ] {
            let model = GenNerfModel::new(ModelConfig::fast().with_ray_module(choice));
            let (a12, _, _) = ray_aggs(&ds, &sources, 12);
            let (a5, _, _) = ray_aggs(&ds, &sources, 5);
            let invisible = aggregate_point(Vec3::new(1000.0, 0.0, 0.0), Vec3::X, &sources, 12);
            let mixed = vec![invisible, a5[0].clone(), a5[1].clone()];
            let rays: Vec<&[PointAggregate]> = vec![&a12, &[], &a5, &mixed];
            let fused = model.forward_rays(&rays);
            assert_eq!(fused.len(), rays.len());
            for (ray, out) in rays.iter().zip(&fused) {
                let per_ray = model.forward_ray(ray);
                let fb: Vec<u32> = out.densities.iter().map(|v| v.to_bits()).collect();
                let pb: Vec<u32> = per_ray.densities.iter().map(|v| v.to_bits()).collect();
                assert_eq!(fb, pb, "{choice:?} densities diverged");
                for (cf, cp) in out.colors.iter().zip(&per_ray.colors) {
                    assert_eq!(
                        [cf.x.to_bits(), cf.y.to_bits(), cf.z.to_bits()],
                        [cp.x.to_bits(), cp.y.to_bits(), cp.z.to_bits()],
                        "{choice:?} colors diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn coarse_densities_batch_matches_per_ray_bitwise() {
        let (ds, sources) = tiny_setup();
        let model = GenNerfModel::new(ModelConfig::fast());
        let cam = &ds.eval_views[0].camera;
        let ray = cam.pixel_center_ray(2, 2);
        let mk = |ts: &[f32]| -> Vec<PointAggregate> {
            ts.iter()
                .map(|&t| aggregate_point(ray.at(t), ray.direction, &sources, 3))
                .collect()
        };
        let a = mk(&[2.0, 2.5, 3.0, 3.5]);
        let b = mk(&[2.2]);
        let rays: Vec<&[PointAggregate]> = vec![&a, &[], &b];
        let fused = model.coarse_densities_batch(&rays);
        for (ray_aggs, out) in rays.iter().zip(&fused) {
            let per_ray = model.coarse_densities(ray_aggs);
            let fb: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = per_ray.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, pb);
        }
    }

    #[test]
    fn forward_rays_arena_matches_forward_ray_bitwise() {
        use crate::features::{aggregate_points_into, AggregateArena};
        let (ds, sources) = tiny_setup();
        let cam = &ds.eval_views[0].camera;
        let ray = cam.pixel_center_ray(cam.intrinsics.width / 2, cam.intrinsics.height / 2);
        let (t0, t1) = ds.scene.bounds.intersect_ray(&ray).unwrap();
        for choice in [
            RayModuleChoice::Mixer,
            RayModuleChoice::Transformer,
            RayModuleChoice::None,
        ] {
            let model = GenNerfModel::new(ModelConfig::fast().with_ray_module(choice));
            let mut arena = AggregateArena::default();
            arena.reset(sources.len(), 12);
            // Ray 0: 12 points; ray 1: empty; ray 2: 5 points with one
            // invisible point mixed in.
            let depths12 = gen_nerf_geometry::Ray::uniform_depths(t0, t1, 12);
            let pts12: Vec<Vec3> = depths12.iter().map(|&t| ray.at(t)).collect();
            let dirs12 = vec![ray.direction; 12];
            aggregate_points_into(&pts12, &dirs12, &sources, 12, &mut arena);
            arena.seal_ray();
            let mut pts5: Vec<Vec3> = gen_nerf_geometry::Ray::uniform_depths(t0, t1, 4)
                .iter()
                .map(|&t| ray.at(t))
                .collect();
            pts5.insert(1, Vec3::new(1000.0, 0.0, 0.0));
            let dirs5 = vec![ray.direction; 5];
            aggregate_points_into(&pts5, &dirs5, &sources, 12, &mut arena);

            let mut scratch = ForwardScratch::default();
            let fused = model.forward_rays_arena(&arena, &mut scratch);
            assert_eq!(fused.len(), 3);
            for (r, out) in fused.iter().enumerate() {
                let exported = arena.export_ray(r);
                let per_ray = model.forward_ray(&exported);
                let fb: Vec<u32> = out.densities.iter().map(|v| v.to_bits()).collect();
                let pb: Vec<u32> = per_ray.densities.iter().map(|v| v.to_bits()).collect();
                assert_eq!(fb, pb, "{choice:?} ray {r} densities diverged");
                for (cf, cp) in out.colors.iter().zip(&per_ray.colors) {
                    assert_eq!(
                        [cf.x.to_bits(), cf.y.to_bits(), cf.z.to_bits()],
                        [cp.x.to_bits(), cp.y.to_bits(), cp.z.to_bits()],
                        "{choice:?} ray {r} colors diverged"
                    );
                }
                // The compat entry point rides the same implementation.
                let refs: Vec<&[PointAggregate]> = vec![&exported];
                let staged = model.forward_rays(&refs);
                assert_eq!(&staged[0], &per_ray, "{choice:?} staged path diverged");
            }
        }
    }

    #[test]
    fn coarse_densities_arena_matches_batch_bitwise() {
        use crate::features::{aggregate_points_into, AggregateArena};
        let (ds, sources) = tiny_setup();
        let model = GenNerfModel::new(ModelConfig::fast());
        let cam = &ds.eval_views[0].camera;
        let ray = cam.pixel_center_ray(2, 2);
        let coarse = &sources[..3];
        let mut arena = AggregateArena::default();
        arena.reset(coarse.len(), 3);
        let pts: Vec<Vec3> = [2.0f32, 2.5, 3.0, 3.5].iter().map(|&t| ray.at(t)).collect();
        let dirs = vec![ray.direction; pts.len()];
        aggregate_points_into(&pts, &dirs, coarse, 3, &mut arena);
        arena.seal_ray(); // empty ray
        aggregate_points_into(&[ray.at(2.2)], &[ray.direction], coarse, 3, &mut arena);

        let mut scratch = MlpScratch::default();
        let fused = model.coarse_densities_arena(&arena, &mut scratch);
        assert_eq!(fused.len(), 3);
        for (r, out) in fused.iter().enumerate() {
            let exported = arena.export_ray(r);
            let per_ray = model.coarse_densities(&exported);
            let fb: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = per_ray.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, pb, "ray {r}");
        }
    }

    #[test]
    fn train_arena_matches_train_aos_bitwise() {
        use crate::features::{aggregate_points_into, AggregateArena};
        let (ds, sources) = tiny_setup();
        let cam = &ds.eval_views[0].camera;
        let ray = cam.pixel_center_ray(cam.intrinsics.width / 2, cam.intrinsics.height / 2);
        let (t0, t1) = ds.scene.bounds.intersect_ray(&ray).unwrap();
        let depths = gen_nerf_geometry::Ray::uniform_depths(t0, t1, 10);
        let pts: Vec<Vec3> = depths.iter().map(|&t| ray.at(t)).collect();
        let dirs = vec![ray.direction; pts.len()];
        let gt_z: Vec<f32> = pts
            .iter()
            .map(|&p| logit_from_density(ds.scene.density(p)))
            .collect();
        let gt_c: Vec<Vec3> = pts
            .iter()
            .map(|&p| ds.scene.color(p, ray.direction))
            .collect();
        let mask = vec![true; pts.len()];

        let mut arena = AggregateArena::default();
        arena.reset(sources.len(), 12);
        aggregate_points_into(&pts, &dirs, &sources, 12, &mut arena);
        let aggs = arena.export_ray(0);

        let mut a = GenNerfModel::new(ModelConfig::fast());
        let mut b = GenNerfModel::new(ModelConfig::fast());
        let la = a.train_ray(&aggs, &gt_z, &gt_c, &mask);
        let lb = b.train_ray_arena(&arena, 0, &gt_z, &gt_c, &mask);
        assert_eq!(la, lb);
        // Coarse step on the same stats rows through both layouts.
        let coarse_aggs: Vec<PointAggregate> = pts[..3]
            .iter()
            .map(|&p| aggregate_point(p, ray.direction, &sources[..3], 3))
            .collect();
        let mut coarse_arena = AggregateArena::default();
        coarse_arena.reset(3, 3);
        aggregate_points_into(&pts[..3], &dirs[..3], &sources[..3], 3, &mut coarse_arena);
        let ca = a.train_coarse(&coarse_aggs, &gt_z[..3]);
        let cb = b.train_coarse_arena(&coarse_arena, 0, &gt_z[..3]);
        assert_eq!(ca.to_bits(), cb.to_bits());
        // Accumulated gradients must agree bitwise across layouts.
        for (ga, gb) in a.params_mut().iter().zip(b.params_mut().iter()) {
            let ba: Vec<u32> = ga.grad.as_slice().iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = gb.grad.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn forward_rays_of_nothing_is_empty() {
        let model = GenNerfModel::new(ModelConfig::fast());
        assert!(model.forward_rays(&[]).is_empty());
        let empty: Vec<&[PointAggregate]> = vec![&[], &[]];
        let out = model.forward_rays(&empty);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|o| o.densities.is_empty()));
    }

    #[test]
    fn empty_ray_is_empty() {
        let model = GenNerfModel::new(ModelConfig::fast());
        let out = model.forward_ray(&[]);
        assert!(out.densities.is_empty());
    }

    #[test]
    fn invisible_points_get_zero_density() {
        let (_, sources) = tiny_setup();
        let model = GenNerfModel::new(ModelConfig::fast());
        let agg = aggregate_point(Vec3::new(1000.0, 0.0, 0.0), Vec3::X, &sources, 12);
        let out = model.forward_ray(&[agg]);
        assert_eq!(out.densities[0], 0.0);
        assert_eq!(out.colors[0], Vec3::ZERO);
    }

    #[test]
    fn train_ray_reduces_sigma_loss() {
        let (ds, sources) = tiny_setup();
        for choice in [
            RayModuleChoice::Mixer,
            RayModuleChoice::Transformer,
            RayModuleChoice::None,
        ] {
            let mut model = GenNerfModel::new(ModelConfig::fast().with_ray_module(choice));
            let (aggs, gt_z, gt_c) = ray_aggs(&ds, &sources, 16);
            let mask: Vec<bool> = gt_z.iter().map(|&z| z > 0.3).collect();
            let mut adam = Adam::new(3e-3);
            let first = model.train_ray(&aggs, &gt_z, &gt_c, &mask).sigma;
            model.zero_grad();
            let mut last = first;
            for _ in 0..80 {
                model.zero_grad();
                last = model.train_ray(&aggs, &gt_z, &gt_c, &mask).sigma;
                adam.step(&mut model.params_mut());
            }
            assert!(
                last < first * 0.5,
                "{choice:?}: sigma loss {first} -> {last}"
            );
        }
    }

    #[test]
    fn train_ray_reduces_color_loss() {
        let (ds, sources) = tiny_setup();
        let mut model = GenNerfModel::new(ModelConfig::fast());
        let (aggs, gt_z, gt_c) = ray_aggs(&ds, &sources, 16);
        let mask = vec![true; aggs.len()];
        let mut adam = Adam::new(3e-3);
        let first = model.train_ray(&aggs, &gt_z, &gt_c, &mask).color;
        for _ in 0..60 {
            model.zero_grad();
            model.train_ray(&aggs, &gt_z, &gt_c, &mask);
            adam.step(&mut model.params_mut());
        }
        model.zero_grad();
        let last = model.train_ray(&aggs, &gt_z, &gt_c, &mask).color;
        assert!(last <= first, "color loss {first} -> {last}");
    }

    #[test]
    fn coarse_training_reduces_loss() {
        let (ds, sources) = tiny_setup();
        let mut model = GenNerfModel::new(ModelConfig::fast());
        let cam = &ds.eval_views[0].camera;
        let ray = cam.pixel_center_ray(cam.intrinsics.width / 2, cam.intrinsics.height / 2);
        let (t0, t1) = ds.scene.bounds.intersect_ray(&ray).unwrap();
        let depths = gen_nerf_geometry::Ray::uniform_depths(t0, t1, 12);
        let aggs: Vec<_> = depths
            .iter()
            .map(|&t| aggregate_point(ray.at(t), ray.direction, &sources, 3))
            .collect();
        let gt: Vec<f32> = depths
            .iter()
            .map(|&t| logit_from_density(ds.scene.density(ray.at(t))))
            .collect();
        let mut adam = Adam::new(5e-3);
        let first = model.train_coarse(&aggs, &gt);
        let mut last = first;
        for _ in 0..100 {
            model.zero_grad();
            last = model.train_coarse(&aggs, &gt);
            adam.step(&mut model.params_mut());
        }
        assert!(last < first * 0.7, "coarse loss {first} -> {last}");
    }

    #[test]
    fn coarse_densities_nonnegative() {
        let (ds, sources) = tiny_setup();
        let model = GenNerfModel::new(ModelConfig::fast());
        let (aggs, _, _) = ray_aggs(&ds, &sources, 8);
        let coarse_aggs: Vec<_> = aggs
            .iter()
            .map(|a| {
                // Rebuild with 3 channels for the coarse head.
                a.clone()
            })
            .collect();
        // Proper coarse aggregates have 8-wide stats; build them afresh.
        let _ = coarse_aggs;
        let cam = &ds.eval_views[0].camera;
        let ray = cam.pixel_center_ray(2, 2);
        let aggs3: Vec<_> = [2.0f32, 3.0, 4.0]
            .iter()
            .map(|&t| aggregate_point(ray.at(t), ray.direction, &sources, 3))
            .collect();
        let d = model.coarse_densities(&aggs3);
        assert!(d.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn mixer_rejects_overlong_rays() {
        let mut cfg = ModelConfig::fast();
        cfg.n_max = 4;
        let model = GenNerfModel::new(cfg);
        let (ds, sources) = tiny_setup();
        let (aggs, _, _) = ray_aggs(&ds, &sources, 8);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.forward_ray(&aggs)));
        assert!(result.is_err());
    }

    #[test]
    fn models_with_same_seed_identical() {
        let a = GenNerfModel::new(ModelConfig::fast());
        let b = GenNerfModel::new(ModelConfig::fast());
        let (ds, sources) = tiny_setup();
        let (aggs, _, _) = ray_aggs(&ds, &sources, 6);
        let a = a;
        let b = b;
        let oa = a.forward_ray(&aggs);
        let ob = b.forward_ray(&aggs);
        assert_eq!(oa, ob);
    }
}
