//! End-to-end rendering pipeline (Steps 1–5 of Sec. 2.2 with the
//! sampling strategies of Sec. 3.2) plus FLOPs/fetch instrumentation.
//!
//! # The ray-batch engine
//!
//! The accelerator the paper builds exists to exploit one fact: rays
//! are independent, so a frame is a bag of identical per-ray programs
//! whose compute can be overlapped. The software pipeline mirrors that
//! structure. [`RayBatch`] lays a camera's rays out structure-of-arrays
//! (directions and clip ranges in parallel vectors, indexed by the
//! row-major pixel id), and [`Renderer`] maps a per-ray shading program
//! over the batch with [`gen_nerf_parallel`]'s deterministic fork–join:
//! contiguous ray chunks go to worker threads, each worker accumulates
//! a private [`RenderStats`], and chunk results are merged in ray
//! order.
//!
//! Parallel safety comes from [`GenNerfModel`]'s `&self` inference path
//! (no activation caching), so all workers share one model borrow.
//! Determinism comes from two rules:
//!
//! * every per-ray random stream is seeded from `(render seed, ray
//!   index)` — never shared across rays — so a ray's samples do not
//!   depend on which thread ran it or in what order;
//! * per-chunk stats are plain integer sums merged in chunk order.
//!
//! Together these make the output bit-for-bit identical for any worker
//! count, including one; `tests/batch_parallel_regression.rs` pins
//! this. The worker count defaults to [`gen_nerf_parallel::num_threads`]
//! (the `GEN_NERF_THREADS` environment variable) and can be pinned per
//! renderer with [`Renderer::with_threads`].
//!
//! # The fused chunk schedule (default)
//!
//! Within each worker's chunk, shading runs as a two-phase schedule
//! instead of a per-ray program: **aggregate** every ray of the chunk
//! into the worker's SoA [`AggregateArena`] (zero heap allocations in
//! steady state; see `crate::features`), then **one fused forward**
//! ([`GenNerfModel::forward_rays_arena`] — a single point-MLP GEMM and
//! a single blend-head GEMM for the whole chunk, the software analog
//! of the paper's PE pool, reading the arena's stats matrix as the
//! GEMM operand **in place**), then a per-ray **composite** through
//! per-worker scratch buffers. The arena, the forward scratch and the
//! composite buffers live in a thread-local worker scratch, so a
//! persistent [`Pool`] worker keeps them warm across frames. Because
//! the dense GEMM kernel makes output rows independent of their batch
//! (k-order accumulation, see `gen_nerf_nn::tensor` — a contract every
//! SIMD kernel backend upholds; see `gen_nerf_nn::kernels`), the fused
//! schedule is bit-for-bit identical to the per-ray path for any
//! chunking — which is also what keeps the thread-count determinism
//! above intact. The per-ray reference path survives behind
//! [`Renderer::with_fused`]`(false)` for regression pinning
//! (`tests/fused_forward_regression.rs`) and perf comparison
//! (`gen-nerf-bench`'s `perf_report`).
//!
//! # Multi-frame rendering (the serving substrate)
//!
//! The same batch-independence contract lifts the fused schedule from
//! one frame to *many*: [`Renderer::render_frames`] concatenates the
//! ray domains of several cameras and chunks the union, so rays of
//! small concurrent frames share fused GEMMs that a single small frame
//! could not fill. Each ray keeps its frame-local index for RNG
//! seeding and each frame keeps a private [`RenderStats`], so the
//! output of every frame is bit-for-bit what a solo
//! [`Renderer::render`] call would produce — `gen-nerf-serve` builds
//! its cross-session admission batching directly on this guarantee,
//! and `tests/serve_regression.rs` pins it.
//!
//! Two more serving hooks live here:
//!
//! * [`Renderer::render_frames_cached`] exports the coarse-then-focus
//!   Step ① outcome as a [`CoarseFrame`] and accepts one back for any
//!   frame, re-running only the focus pass — the temporal-coherence
//!   cache of the render server. An imported coarse pass from the
//!   *same* pose reproduces the full render bitwise (Step ① is
//!   deterministic); a nearby pose reuses the previous probing as an
//!   approximation.
//! * [`Renderer::with_pool`] swaps the per-call scoped-thread fan-out
//!   for a persistent [`gen_nerf_parallel::Pool`], sparing a
//!   steady-state serving loop the spawn/join tax per frame. Chunk
//!   geometry is identical either way, so the executor never changes
//!   pixels.
//!
//! # Output integrity
//!
//! With `GEN_NERF_INTEGRITY` set (see `gen_nerf_nn::kernels::
//! integrity`), every dispatched GEMM is ABFT-checksummed and this
//! module adds **stage-boundary sentinels**: finite-value scans after
//! each fused forward (densities through the active kernel's
//! `is_finite_all`, AVX2 where available) and over the composited
//! pixels right before they become images. Trips are recorded in
//! process-wide counters; the fallible entry points
//! ([`Renderer::try_render_frames_cached`], [`Renderer::try_render`],
//! [`Renderer::try_render_into`]) snapshot the counters around the
//! render and return [`RenderError::Corrupt`] instead of publishing a
//! frame whose window saw a fault. The infallible entry points are
//! unchanged — with integrity off (the default) no scan runs and
//! behavior is bit-for-bit what it always was. [`CoarseFrame`]s are
//! additionally sealed with an FNV-1a payload digest at export so a
//! serving cache can reject an anchor that was corrupted at rest
//! ([`CoarseFrame::integrity_ok`]) as a miss instead of shading from
//! it.

use crate::config::SamplingStrategy;
use crate::features::{
    aggregate_point, aggregate_ray_into, assert_channels, AggregateArena, AggregateView,
    PointAggregate, SourceViewData,
};
use crate::model::{ForwardScratch, GenNerfModel, MlpScratch, RayOutput};
use crate::sampling;
use gen_nerf_geometry::{Aabb, Camera, Ray, Vec3};
use gen_nerf_nn::flops::{self, FlopsCounter};
use gen_nerf_nn::init::Rng;
use gen_nerf_nn::kernels::{self, integrity};
use gen_nerf_parallel::{par_chunk_ranges, CancelToken, Pool};
use gen_nerf_scene::renderer::{composite, composite_into};
use gen_nerf_scene::Image;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Reusable buffers for the per-ray composite phase of the fused chunk
/// schedule: one instance per worker replaces the interval-widths and
/// hitting-weights `Vec`s the allocating [`composite`] pays per ray.
#[derive(Debug, Clone, Default)]
struct CompositeScratch {
    deltas: Vec<f32>,
    weights: Vec<f32>,
}

/// One render worker's reusable state: the SoA aggregation arena (the
/// zero-allocation acquisition buffer), the fused-forward buffers, the
/// coarse-MLP activations and the composite buffers.
///
/// Lives in a thread-local, so a persistent [`Pool`] worker keeps its
/// buffers warm **across frames** — the steady-state serving loop stops
/// paying acquisition allocations entirely — while a scoped-thread
/// render gets fresh ones per spawn, exactly as before. Scratch
/// contents never influence results (every buffer is reset or fully
/// overwritten before use), so the executor choice stays invisible to
/// pixels.
#[derive(Default)]
struct WorkerScratch {
    arena: AggregateArena,
    forward: ForwardScratch,
    coarse: MlpScratch,
    composite: CompositeScratch,
}

thread_local! {
    static WORKER_SCRATCH: RefCell<WorkerScratch> = RefCell::new(WorkerScratch::default());
}

/// Runs `f` with the calling worker's persistent scratch.
fn with_worker_scratch<R>(f: impl FnOnce(&mut WorkerScratch) -> R) -> R {
    WORKER_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

// ---- registry handles (cold registration, cached forever) ------------

/// Per-stage render-time histogram (`stage` ∈ coarse | focus |
/// composite). Timings are recorded per *chunk* (hundreds of rays), so
/// the observation cost disappears into the chunk's work; with
/// telemetry disabled the `Instant` reads are skipped entirely.
fn stage_hist(stage: &'static str) -> gen_nerf_telemetry::Histogram {
    use std::sync::OnceLock;
    static COARSE: OnceLock<gen_nerf_telemetry::Histogram> = OnceLock::new();
    static FOCUS: OnceLock<gen_nerf_telemetry::Histogram> = OnceLock::new();
    static COMPOSITE: OnceLock<gen_nerf_telemetry::Histogram> = OnceLock::new();
    let cell = match stage {
        "coarse" => &COARSE,
        "focus" => &FOCUS,
        _ => &COMPOSITE,
    };
    *cell.get_or_init(|| gen_nerf_telemetry::histogram("render_stage_ns", &[("stage", stage)]))
}

/// Fused-schedule chunk counter (chunks executed across all workers).
fn chunks_counter() -> gen_nerf_telemetry::Counter {
    use std::sync::OnceLock;
    static C: OnceLock<gen_nerf_telemetry::Counter> = OnceLock::new();
    *C.get_or_init(|| gen_nerf_telemetry::counter("core_render_chunks_total", &[]))
}

/// Arena fill stats: total points aggregated into worker arenas, plus
/// a per-chunk fill-size histogram.
fn arena_points_counter() -> gen_nerf_telemetry::Counter {
    use std::sync::OnceLock;
    static C: OnceLock<gen_nerf_telemetry::Counter> = OnceLock::new();
    *C.get_or_init(|| gen_nerf_telemetry::counter("core_arena_points_total", &[]))
}

fn arena_fill_hist() -> gen_nerf_telemetry::Histogram {
    use std::sync::OnceLock;
    static H: OnceLock<gen_nerf_telemetry::Histogram> = OnceLock::new();
    *H.get_or_init(|| gen_nerf_telemetry::histogram("core_arena_fill_points", &[]))
}

/// Ceiling on steady-state fused-schedule heap allocations per frame
/// on the canonical `perf_report` workload (32×32 frame, uniform
/// n = 12, one inline thread). The arena acquisition path landed at
/// ~22 k (from 114,349 pre-arena); two gates enforce the ceiling —
/// `tests/arena_regression.rs` in the test suite and `perf_report`
/// (which exits non-zero past it) in CI — both reading this constant,
/// so they can never drift apart.
pub const STEADY_STATE_ALLOC_CEILING: u64 = 40_000;

/// Instrumentation collected while rendering one image.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RenderStats {
    /// FLOPs by bucket: `acquire`, `mlp`, `ray_module`, `others`.
    pub flops: FlopsCounter,
    /// Camera rays traced.
    pub rays: u64,
    /// Points evaluated by the full model.
    pub points: u64,
    /// Points evaluated by the coarse pass.
    pub coarse_points: u64,
    /// Feature-map texel fetches (4 bilinear taps × valid views ×
    /// points).
    pub feature_fetches: u64,
}

impl RenderStats {
    /// Total MFLOPs per rendered pixel (the Tab. 2/3 efficiency
    /// metric).
    pub fn mflops_per_pixel(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.flops.total() as f64 / self.rays as f64 / 1e6
        }
    }

    /// Average full-model points per ray (the Fig. 9 x-axis, measured).
    pub fn avg_points_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            (self.points + self.coarse_points) as f64 / self.rays as f64
        }
    }

    /// Adds another accumulator's counts into this one (used to fold
    /// per-worker stats; all fields are order-independent sums).
    pub fn merge(&mut self, other: &Self) {
        self.flops.merge(&other.flops);
        self.rays += other.rays;
        self.points += other.points;
        self.coarse_points += other.coarse_points;
        self.feature_fetches += other.feature_fetches;
    }
}

/// A camera's rays in structure-of-arrays layout, indexed by row-major
/// pixel id: `rays[j]` and `ranges[j]` describe pixel
/// `(j % width, j / width)`.
#[derive(Debug, Clone)]
pub struct RayBatch {
    /// Per-pixel camera rays.
    pub rays: Vec<Ray>,
    /// Per-ray `[t_near, t_far]` against the scene bounds; `None` for
    /// rays that miss entirely.
    pub ranges: Vec<Option<(f32, f32)>>,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl RayBatch {
    /// Builds the batch for every pixel of `camera`, clipping against
    /// `bounds`.
    pub fn from_camera(camera: &Camera, bounds: &Aabb) -> Self {
        let (w, h) = (camera.intrinsics.width, camera.intrinsics.height);
        let n = (w as usize) * (h as usize);
        let mut rays = Vec::with_capacity(n);
        let mut ranges = Vec::with_capacity(n);
        for y in 0..h {
            for x in 0..w {
                let ray = camera.pixel_center_ray(x, y);
                ranges.push(bounds.intersect_ray(&ray));
                rays.push(ray);
            }
        }
        Self {
            rays,
            ranges,
            width: w,
            height: h,
        }
    }

    /// Number of rays (pixels).
    pub fn len(&self) -> usize {
        self.rays.len()
    }

    /// `true` when the camera has no pixels.
    pub fn is_empty(&self) -> bool {
        self.rays.is_empty()
    }

    /// Writes per-ray colors (in batch order) into `image`, reshaping
    /// it to this batch's dimensions and reusing its allocation.
    fn write_image(&self, pixels: &[Vec3], image: &mut Image) {
        debug_assert_eq!(pixels.len(), self.len());
        image.reset(self.width, self.height);
        for (j, &rgb) in pixels.iter().enumerate() {
            image.set(j as u32 % self.width, j as u32 / self.width, rgb);
        }
    }
}

/// SplitMix64 finalizer: decorrelates per-ray seeds derived from
/// `(base seed, ray index)`.
fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A render whose output failed an integrity check and must not be
/// published (see the "Output integrity" section of the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderError {
    /// A GEMM checksum (`gen_nerf_nn::kernels::integrity`) or a
    /// stage-boundary sentinel tripped during the render: the frame's
    /// pixels are untrustworthy and the caller should discard the
    /// output buffers and retry (re-rendering is deterministic, so a
    /// transient fault does not recur).
    Corrupt {
        /// Which guard detected the corruption: `"gemm"` for the ABFT
        /// checksum, `"sentinel"` for a stage-boundary finite scan.
        stage: &'static str,
        /// Human-readable description of the first recorded fault
        /// (best-effort under concurrent renders: the detail slot is
        /// process-wide, the detection itself is not).
        detail: String,
    },
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::Corrupt { stage, detail } => {
                write!(f, "corrupt render output ({stage}): {detail}")
            }
        }
    }
}

impl std::error::Error for RenderError {}

/// Stage-boundary sentinel sink. Sentinels run on worker threads deep
/// inside chunk fan-outs, so they report through a process-wide
/// monotonic counter instead of threading `Result`s through every
/// join: a fallible render snapshots the counter on entry and fails
/// the frame when it advanced by exit. Counter deltas can only
/// over-report under concurrent renders (a clean frame overlapping a
/// corrupt one fails spuriously and succeeds on retry) — a corrupt
/// frame can never under-report, because its own trip lands inside
/// its own window.
static SENTINEL_TRIPS: AtomicU64 = AtomicU64::new(0);
/// First-trip detail, first write wins until drained (best-effort
/// attribution only; `SENTINEL_TRIPS` is the ground truth).
static SENTINEL_DETAIL: Mutex<Option<String>> = Mutex::new(None);
/// Armed single-pixel corruption for the chaos harness (see
/// [`arm_pixel_corruption`]); consumed by the next multi-frame render.
static ARMED_PIXEL: Mutex<Option<u64>> = Mutex::new(None);

/// Records one sentinel trip (worker-thread safe).
fn trip_sentinel(detail: String) {
    SENTINEL_TRIPS.fetch_add(1, Ordering::Relaxed);
    {
        use std::sync::OnceLock;
        static C: OnceLock<gen_nerf_telemetry::Counter> = OnceLock::new();
        C.get_or_init(|| gen_nerf_telemetry::counter("core_sentinel_trips_total", &[]))
            .inc();
    }
    let mut slot = SENTINEL_DETAIL.lock().unwrap();
    if slot.is_none() {
        *slot = Some(detail);
    }
}

/// Total stage-boundary sentinel trips since process start (for
/// serving-layer observability; monotonic).
pub fn sentinel_trips() -> u64 {
    SENTINEL_TRIPS.load(Ordering::Relaxed)
}

/// Whether the stage-boundary sentinels are live. They ride the same
/// switch as the GEMM checksums (`GEN_NERF_INTEGRITY`): `off` skips
/// every scan, so the default render path pays nothing.
fn sentinels_enabled() -> bool {
    integrity::mode() != integrity::IntegrityMode::Off
}

/// Scans a fused forward's outputs for non-finite densities or colors
/// and trips the sentinel naming `stage` on the first bad ray. The
/// density scan goes through the active kernel's `is_finite_all`
/// (AVX2 on hosts that have it), so the guard costs one pass over
/// data the composite is about to read anyway.
fn scan_forward_outputs(outs: &[RayOutput], stage: &str) {
    let kernel = kernels::active();
    for (i, out) in outs.iter().enumerate() {
        let ok = kernel.is_finite_all(&out.densities)
            && out
                .colors
                .iter()
                .all(|c| c.x.is_finite() && c.y.is_finite() && c.z.is_finite());
        if !ok {
            trip_sentinel(format!("{stage}: non-finite model output at chunk ray {i}"));
            return;
        }
    }
}

/// Arms the corruption-chaos pixel fault: the next multi-frame render
/// poisons one composited pixel (chosen deterministically from `seed`)
/// with NaN *before* the composite-boundary sentinel runs, so the
/// chaos harness can prove corrupt pixels are caught at the publish
/// boundary rather than served. Process-wide, consumed exactly once.
pub fn arm_pixel_corruption(seed: u64) {
    *ARMED_PIXEL.lock().unwrap() = Some(seed);
}

/// Disarms a still-armed pixel fault; `true` when one was pending
/// (i.e. no render consumed it).
pub fn disarm_pixel_corruption() -> bool {
    ARMED_PIXEL.lock().unwrap().take().is_some()
}

/// Applies an armed pixel fault to the composited (not yet published)
/// pixels. The poison is injected whether or not the sentinels are
/// enabled — injection simulates the corruption, detection is the
/// integrity subsystem's job.
fn apply_armed_pixel_fault(pixels: &mut [Vec<Vec3>]) {
    let Some(seed) = ARMED_PIXEL.lock().unwrap().take() else {
        return;
    };
    let frames: Vec<usize> = (0..pixels.len())
        .filter(|&f| !pixels[f].is_empty())
        .collect();
    if frames.is_empty() {
        return;
    }
    let f = frames[(seed as usize) % frames.len()];
    let j = ((seed >> 17) as usize) % pixels[f].len();
    pixels[f][j].x = f32::NAN;
}

/// The exported outcome of one frame's coarse-then-focus Step ①
/// (coarse probing): per-ray hitting weights and critical-sample
/// counts, everything Steps ②/③ consume.
///
/// Produced by [`Renderer::render_frames_cached`] and importable back
/// into it, this is the unit of the render server's temporal-coherence
/// cache: when the next head pose is close enough to the one that
/// produced this probing, the serving layer re-runs only the focus
/// pass against these weights. Step ① is a pure function of the pose,
/// so importing a `CoarseFrame` from the *identical* pose reproduces
/// the uncached render bit-for-bit.
#[derive(Debug, Clone)]
pub struct CoarseFrame {
    /// Per-ray hitting weights from the coarse composite.
    weights: Vec<Vec<f32>>,
    /// Per-ray critical sample counts (Step ② input).
    criticals: Vec<usize>,
    /// FNV-1a digest over the weights' bit patterns and the critical
    /// counts, sealed at export. A cached frame sits in the serving
    /// tier's memory for seconds; the digest lets the cache importer
    /// reject a frame whose payload no longer matches what Step ①
    /// produced (treated as a miss, never as pixels).
    checksum: u64,
}

impl CoarseFrame {
    /// Rays covered (must match the batch it is imported into).
    pub fn n_rays(&self) -> usize {
        self.weights.len()
    }

    /// Approximate heap footprint in bytes (for cache budgeting).
    pub fn approx_bytes(&self) -> usize {
        self.weights.iter().map(|w| w.len() * 4).sum::<usize>()
            + self.criticals.len() * std::mem::size_of::<usize>()
    }

    /// FNV-1a over the payload: per ray, the weight count then each
    /// weight's IEEE-754 bits, then every critical count. Bit-exact by
    /// construction — any single flipped payload bit changes it.
    fn fnv1a(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |word: u64| {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for w in &self.weights {
            eat(w.len() as u64);
            for &v in w {
                eat(v.to_bits() as u64);
            }
        }
        for &c in &self.criticals {
            eat(c as u64);
        }
        h
    }

    /// Seals the digest over the current payload (export time).
    fn seal(&mut self) {
        self.checksum = self.fnv1a();
    }

    /// The sealed payload digest.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recomputes the digest and compares it to the seal. `false`
    /// means the payload was altered since export — the frame must be
    /// discarded, not imported.
    pub fn integrity_ok(&self) -> bool {
        self.fnv1a() == self.checksum
    }

    /// Fault-injection hook for the corruption chaos harness: poisons
    /// one stored weight (NaN, chosen deterministically from `seed`)
    /// *without* resealing, so [`CoarseFrame::integrity_ok`] fails. A
    /// frame with no weights at all gets its seal flipped instead.
    pub fn corrupt_for_chaos(&mut self, seed: u64) {
        if !self.weights.is_empty() {
            let r = (seed as usize) % self.weights.len();
            for off in 0..self.weights.len() {
                let i = (r + off) % self.weights.len();
                if let Some(w) = self.weights[i].first_mut() {
                    *w = f32::NAN;
                    return;
                }
            }
        }
        self.checksum ^= 1;
    }
}

/// Several frames' ray batches concatenated into one parallel domain:
/// global ray id `g` maps to `(frame, frame-local ray)` so chunks can
/// span frame boundaries while every per-ray decision (RNG stream,
/// clip range, stats bucket) stays frame-local.
struct FrameSet<'b> {
    batches: &'b [RayBatch],
    /// `offsets[f]..offsets[f + 1]` is frame `f`'s global id range.
    offsets: Vec<usize>,
}

impl<'b> FrameSet<'b> {
    fn new(batches: &'b [RayBatch]) -> Self {
        let mut offsets = Vec::with_capacity(batches.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for b in batches {
            acc += b.len();
            offsets.push(acc);
        }
        Self { batches, offsets }
    }

    fn total(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    fn n_frames(&self) -> usize {
        self.batches.len()
    }

    /// Maps a global ray id to `(frame index, frame-local ray index)`.
    fn locate(&self, g: usize) -> (usize, usize) {
        let f = self.offsets.partition_point(|&o| o <= g) - 1;
        (f, g - self.offsets[f])
    }
}

/// The end-to-end renderer: a model + prepared source views + a
/// sampling strategy, rendering novel views inside known scene bounds.
///
/// Holds the model by shared reference — inference never mutates it —
/// so the renderer can fan ray chunks out across threads (see the
/// module docs for the determinism contract).
pub struct Renderer<'a> {
    model: &'a GenNerfModel,
    sources: &'a [SourceViewData],
    strategy: SamplingStrategy,
    bounds: Aabb,
    background: Vec3,
    base_seed: u64,
    threads: usize,
    fused: bool,
    pool: Option<&'a Pool>,
    cancel: Option<&'a CancelToken>,
}

impl<'a> Renderer<'a> {
    /// Creates a renderer using the default worker count
    /// ([`gen_nerf_parallel::num_threads`]).
    ///
    /// `bounds` clip each camera ray to `[t_near, t_far]`; `background`
    /// fills rays that miss or terminate without saturating.
    ///
    /// # Panics
    ///
    /// Panics when any source view's feature map carries fewer channels
    /// than the model's `d_features` (or `coarse_channels`): the old
    /// per-point clamp silently zero-padded the trailing aggregation
    /// stats; the mismatch now fails once, loudly, at construction.
    pub fn new(
        model: &'a GenNerfModel,
        sources: &'a [SourceViewData],
        strategy: SamplingStrategy,
        bounds: Aabb,
        background: Vec3,
    ) -> Self {
        assert_channels(sources, model.config.d_features, "Renderer");
        assert_channels(
            sources,
            model.config.coarse_channels,
            "Renderer coarse pass",
        );
        let base_seed = model.config.seed ^ 0x5eed_5a3e;
        Self {
            model,
            sources,
            strategy,
            bounds,
            background,
            base_seed,
            threads: gen_nerf_parallel::num_threads(),
            fused: true,
            pool: None,
            cancel: None,
        }
    }

    /// Pins the worker count (1 = fully sequential). The rendered
    /// image and stats are identical for every value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the inference schedule: `true` (the default) renders
    /// through the fused chunk schedule
    /// ([`GenNerfModel::forward_rays`]); `false` selects the per-ray
    /// reference path. Output and stats are bit-for-bit identical
    /// either way — the flag exists for regression pinning and
    /// benchmarking, not as a results knob.
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Runs chunk fan-outs on a persistent worker pool instead of
    /// spawning scoped threads per call — the steady-state executor of
    /// the render server. Chunk geometry matches the scoped-thread
    /// path, so output is bit-for-bit identical either way.
    pub fn with_pool(mut self, pool: &'a Pool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a cooperative [`CancelToken`]: render workers poll it
    /// at every per-ray boundary of every chunk and, once it fires,
    /// stop evaluating the model — remaining rays resolve to the
    /// background color, so output buffers keep their full shape but
    /// the fan-out (and the [`Pool`] slice running it) drains within
    /// one ray's work. This is how a serving supervisor reclaims a
    /// worker from a render whose deadline already passed: the partial
    /// image is garbage by construction and must be discarded by the
    /// caller.
    ///
    /// A token that never fires changes nothing: the checks are pure
    /// reads, so cancellable and plain renders are bit-for-bit
    /// identical (the serve regression suite pins this).
    pub fn with_cancel(mut self, cancel: &'a CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Whether an attached token has fired (`false` when none is
    /// attached — the hot-path check every per-ray loop performs).
    fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Renders a full image from `camera`.
    pub fn render(&self, camera: &Camera) -> (Image, RenderStats) {
        let mut image = Image::new(0, 0);
        let mut stats = RenderStats::default();
        self.render_into(camera, &mut image, &mut stats);
        (image, stats)
    }

    /// [`Renderer::render`] into caller-owned buffers: `image` is
    /// reshaped (reusing its allocation) and `stats` overwritten, so a
    /// serving loop recycling frame buffers stops paying an image
    /// allocation per frame. Output is identical to [`Renderer::render`].
    pub fn render_into(&self, camera: &Camera, image: &mut Image, stats: &mut RenderStats) {
        if self.fused {
            self.render_frames_cached(
                std::slice::from_ref(camera),
                &[None],
                std::slice::from_mut(image),
                std::slice::from_mut(stats),
            );
            return;
        }
        *stats = RenderStats::default();
        let batch = RayBatch::from_camera(camera, &self.bounds);
        stats.rays = batch.len() as u64;
        let pixels = match self.strategy {
            SamplingStrategy::Uniform { n } => self.render_uniform(&batch, n, stats),
            SamplingStrategy::Hierarchical { n_coarse, n_fine } => {
                self.render_hierarchical(&batch, n_coarse, n_fine, stats)
            }
            SamplingStrategy::CoarseThenFocus {
                n_coarse,
                n_focused,
                tau,
                s_coarse,
            } => self.render_ctf(&batch, n_coarse, n_focused, tau, s_coarse, stats),
        };
        batch.write_image(&pixels, image);
    }

    /// Renders several cameras as **one** fused workload: the frames'
    /// ray domains are concatenated and chunked together, so
    /// concurrent small frames fill fused GEMM batches a lone frame
    /// could not. Every frame's image and stats are bit-for-bit
    /// identical to a solo [`Renderer::render`] of that camera (the
    /// kernel batch-independence contract; pinned by
    /// `tests/serve_regression.rs`).
    pub fn render_frames(&self, cameras: &[Camera]) -> Vec<(Image, RenderStats)> {
        let mut images: Vec<Image> = cameras.iter().map(|_| Image::new(0, 0)).collect();
        let mut stats = vec![RenderStats::default(); cameras.len()];
        let cached: Vec<Option<&CoarseFrame>> = vec![None; cameras.len()];
        self.render_frames_cached(cameras, &cached, &mut images, &mut stats);
        images.into_iter().zip(stats).collect()
    }

    /// [`Renderer::render_frames`] with coarse-pass import/export and
    /// caller-owned frame buffers — the render server's workhorse.
    ///
    /// For the coarse-then-focus strategy, `cached[f] = Some(coarse)`
    /// re-uses that frame's imported Step ① probing (only the focus
    /// pass runs; `coarse.n_rays()` must match the camera's pixel
    /// count) and the return value carries a fresh [`CoarseFrame`] for
    /// every frame that ran Step ① itself (`None` where an import was
    /// used). Other strategies have no coarse pass: imports are
    /// rejected and every export is `None`.
    ///
    /// `images`/`stats` are overwritten per frame, reusing buffer
    /// allocations. With the per-ray reference schedule
    /// ([`Renderer::with_fused`]`(false)`) frames render one at a time
    /// and no imports are accepted.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths differ from `cameras.len()`, when an
    /// import's ray count mismatches its camera, or when an import is
    /// supplied for a strategy or schedule that cannot honor it.
    pub fn render_frames_cached(
        &self,
        cameras: &[Camera],
        cached: &[Option<&CoarseFrame>],
        images: &mut [Image],
        stats: &mut [RenderStats],
    ) -> Vec<Option<CoarseFrame>> {
        let n_frames = cameras.len();
        assert_eq!(cached.len(), n_frames, "one cached slot per camera");
        assert_eq!(images.len(), n_frames, "one image buffer per camera");
        assert_eq!(stats.len(), n_frames, "one stats buffer per camera");
        if n_frames == 0 {
            return Vec::new();
        }
        if !self.fused {
            assert!(
                cached.iter().all(|c| c.is_none()),
                "imported coarse passes require the fused schedule"
            );
            for f in 0..n_frames {
                self.render_into(&cameras[f], &mut images[f], &mut stats[f]);
            }
            return vec![None; n_frames];
        }

        let batches: Vec<RayBatch> = cameras
            .iter()
            .map(|c| RayBatch::from_camera(c, &self.bounds))
            .collect();
        for (st, b) in stats.iter_mut().zip(&batches) {
            *st = RenderStats::default();
            st.rays = b.len() as u64;
        }
        let set = FrameSet::new(&batches);

        let (mut pixels, fresh) = match self.strategy {
            SamplingStrategy::Uniform { n } => {
                assert!(
                    cached.iter().all(|c| c.is_none()),
                    "uniform sampling has no coarse pass to import"
                );
                let px = self.shade_frames_fused(
                    &set,
                    |f, j| set.batches[f].ranges[j].map(|(t0, t1)| Ray::uniform_depths(t0, t1, n)),
                    stats,
                );
                (px, vec![None; n_frames])
            }
            SamplingStrategy::Hierarchical { n_coarse, n_fine } => {
                assert!(
                    cached.iter().all(|c| c.is_none()),
                    "hierarchical sampling has no exportable coarse pass"
                );
                let px = self.render_hierarchical_frames(&set, n_coarse, n_fine, stats);
                (px, vec![None; n_frames])
            }
            SamplingStrategy::CoarseThenFocus {
                n_coarse,
                n_focused,
                tau,
                s_coarse,
            } => self.render_ctf_frames(&set, n_coarse, n_focused, tau, s_coarse, cached, stats),
        };
        // Corruption-chaos injection point (no-op unless armed), then
        // the composite-boundary sentinel: the last integrity gate
        // before pixels become publishable images.
        apply_armed_pixel_fault(&mut pixels);
        if sentinels_enabled() {
            'frames: for (f, px) in pixels.iter().enumerate() {
                for (j, c) in px.iter().enumerate() {
                    if !(c.x.is_finite() && c.y.is_finite() && c.z.is_finite()) {
                        trip_sentinel(format!(
                            "composite boundary: non-finite pixel {j} of frame {f}"
                        ));
                        break 'frames;
                    }
                }
            }
        }
        for ((batch, px), image) in batches.iter().zip(&pixels).zip(images.iter_mut()) {
            batch.write_image(px, image);
        }
        fresh
    }

    /// Snapshot of the process-wide corruption counters (GEMM checksum
    /// faults, sentinel trips) for a delta check around one render.
    fn integrity_epoch() -> (u64, u64) {
        (integrity::check_stats().1, sentinel_trips())
    }

    /// Maps a counter delta since `(faults0, trips0)` to the frame
    /// verdict, draining the best-effort detail slots on failure.
    fn corruption_since(faults0: u64, trips0: u64) -> Result<(), RenderError> {
        let (faults1, trips1) = Self::integrity_epoch();
        if faults1 != faults0 {
            let detail = integrity::take_fault().map_or_else(
                || "GEMM checksum mismatch (detail drained concurrently)".to_string(),
                |e| e.to_string(),
            );
            return Err(RenderError::Corrupt {
                stage: "gemm",
                detail,
            });
        }
        if trips1 != trips0 {
            let detail = SENTINEL_DETAIL.lock().unwrap().take().unwrap_or_else(|| {
                "non-finite stage output (detail drained concurrently)".to_string()
            });
            return Err(RenderError::Corrupt {
                stage: "sentinel",
                detail,
            });
        }
        Ok(())
    }

    /// [`Renderer::render_frames_cached`] with the integrity verdict:
    /// when any GEMM checksum or stage-boundary sentinel tripped
    /// during this render, returns [`RenderError::Corrupt`] — the
    /// caller must treat `images`/`stats` as garbage (they were
    /// overwritten before the verdict) and retry or fail the frames.
    ///
    /// The check is a counter delta over the render window, so under
    /// concurrent renders a clean frame overlapping a corrupt one can
    /// fail spuriously (and succeed on retry) — but a corrupt frame
    /// can never pass. With integrity checking off (the default) this
    /// never fails and is identical to the infallible call.
    pub fn try_render_frames_cached(
        &self,
        cameras: &[Camera],
        cached: &[Option<&CoarseFrame>],
        images: &mut [Image],
        stats: &mut [RenderStats],
    ) -> Result<Vec<Option<CoarseFrame>>, RenderError> {
        let (faults0, trips0) = Self::integrity_epoch();
        let fresh = self.render_frames_cached(cameras, cached, images, stats);
        Self::corruption_since(faults0, trips0)?;
        Ok(fresh)
    }

    /// [`Renderer::render_into`] with the integrity verdict (see
    /// [`Renderer::try_render_frames_cached`] for the semantics).
    pub fn try_render_into(
        &self,
        camera: &Camera,
        image: &mut Image,
        stats: &mut RenderStats,
    ) -> Result<(), RenderError> {
        let (faults0, trips0) = Self::integrity_epoch();
        self.render_into(camera, image, stats);
        Self::corruption_since(faults0, trips0)
    }

    /// [`Renderer::render`] with the integrity verdict (see
    /// [`Renderer::try_render_frames_cached`] for the semantics).
    pub fn try_render(&self, camera: &Camera) -> Result<(Image, RenderStats), RenderError> {
        let mut image = Image::new(0, 0);
        let mut stats = RenderStats::default();
        self.try_render_into(camera, &mut image, &mut stats)?;
        Ok((image, stats))
    }

    fn d_channels(&self) -> usize {
        self.model.config.d_features
    }

    /// Derives the decorrelated random stream of ray `j` — a pure
    /// function of the render seed and the (frame-local) ray index, so
    /// results depend on neither thread scheduling nor on which other
    /// frames share the fused workload.
    fn ray_rng(&self, j: usize) -> Rng {
        Rng::seed_from(mix_seed(self.base_seed, j as u64))
    }

    /// Fans `f` out over contiguous chunks of `0..n`, in chunk order —
    /// via the attached persistent [`Pool`] when present, otherwise
    /// scoped threads. Both executors use identical chunk geometry, so
    /// the choice never changes results.
    fn fan_out<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        match self.pool {
            Some(pool) => pool.run_chunks(n, self.threads, f),
            None => par_chunk_ranges(n, self.threads, f),
        }
    }

    /// Maps `shade` over every ray of the batch, fanning contiguous
    /// chunks out to worker threads. Returns per-ray colors in batch
    /// order plus merged stats.
    fn shade_batch<F>(&self, n_rays: usize, shade: F) -> (Vec<Vec3>, RenderStats)
    where
        F: Fn(usize, &mut RenderStats) -> Vec3 + Sync,
    {
        let chunks = self.fan_out(n_rays, |start, end| {
            let mut local = RenderStats::default();
            let colors: Vec<Vec3> = (start..end)
                .map(|j| {
                    if self.is_cancelled() {
                        // Cancelled mid-chunk: keep the output shape,
                        // skip the model work for the remaining rays.
                        self.background
                    } else {
                        shade(j, &mut local)
                    }
                })
                .collect();
            (colors, local)
        });
        let mut pixels = Vec::with_capacity(n_rays);
        let mut stats = RenderStats::default();
        for (colors, local) in chunks {
            pixels.extend(colors);
            stats.merge(&local);
        }
        (pixels, stats)
    }

    /// Splits per-chunk `(colors, per-frame stats)` results back into
    /// per-frame pixel vectors (frame-local ray order) and folds the
    /// stats, chunk-major — the join side of every multi-frame fan-out.
    fn merge_frame_chunks(
        set: &FrameSet,
        chunks: Vec<(Vec<Vec3>, Vec<RenderStats>)>,
        stats: &mut [RenderStats],
    ) -> Vec<Vec<Vec3>> {
        let mut pixels: Vec<Vec<Vec3>> = set
            .batches
            .iter()
            .map(|b| Vec::with_capacity(b.len()))
            .collect();
        let mut g = 0usize;
        for (colors, local) in chunks {
            for c in colors {
                let (f, _) = set.locate(g);
                pixels[f].push(c);
                g += 1;
            }
            for (f, l) in local.iter().enumerate() {
                stats[f].merge(l);
            }
        }
        pixels
    }

    /// The fused two-phase chunk schedule over a whole frame set:
    /// per chunk (which may span frames), `depths_for(frame, ray)`
    /// picks each ray's samples (`None` → background), phase 1
    /// aggregates every ray of the chunk, phase 2 runs **one** fused
    /// forward for the whole chunk, phase 3 composites per ray.
    /// Bit-identical to shading each frame alone (GEMM rows are
    /// batch-independent) and to [`Renderer::shade_batch`] over
    /// [`Renderer::eval_points`] with the same depth choice.
    fn shade_frames_fused<D>(
        &self,
        set: &FrameSet,
        depths_for: D,
        stats: &mut [RenderStats],
    ) -> Vec<Vec<Vec3>>
    where
        D: Fn(usize, usize) -> Option<Vec<f32>> + Sync,
    {
        let d = self.d_channels();
        let chunks = self.fan_out(set.total(), |start, end| {
            with_worker_scratch(|ws| {
                let telemetry = gen_nerf_telemetry::enabled();
                let t_chunk = telemetry.then(std::time::Instant::now);
                let mut local = vec![RenderStats::default(); set.n_frames()];
                // Phase 1: depth selection + SoA aggregation for the
                // chunk, straight into the worker's arena (zero heap
                // allocations once its buffers have grown).
                ws.arena.reset(self.sources.len(), d);
                let mut depths_per: Vec<Option<Vec<f32>>> = Vec::with_capacity(end - start);
                for g in start..end {
                    let (f, j) = set.locate(g);
                    // Cancellation checkpoint: a fired token turns the
                    // rest of the chunk into background rays, so the
                    // fused forward below shrinks to the work already
                    // aggregated and the worker drains promptly.
                    let depths = if self.is_cancelled() {
                        None
                    } else {
                        depths_for(f, j)
                    };
                    match &depths {
                        Some(dep) => {
                            aggregate_ray_into(
                                &set.batches[f].rays[j],
                                dep,
                                self.sources,
                                d,
                                &mut ws.arena,
                            );
                            if !dep.is_empty() {
                                self.account_full_eval_arena(&ws.arena, g - start, &mut local[f]);
                            }
                        }
                        None => ws.arena.seal_ray(),
                    }
                    depths_per.push(depths);
                }
                // Phase 2: one fused forward for every ray of the chunk
                // — the arena's stats matrix is the GEMM operand, no
                // staging copy.
                let WorkerScratch {
                    arena,
                    forward,
                    composite: cscratch,
                    ..
                } = ws;
                let outs = self.model.forward_rays_arena(arena, forward);
                // Stage-boundary sentinel: catch non-finite forward
                // outputs before the composite folds them into pixels.
                if sentinels_enabled() {
                    scan_forward_outputs(&outs, "fused forward");
                }
                let t_composite = if let Some(t0) = t_chunk {
                    // Aggregation + fused forward = the focus stage.
                    stage_hist("focus").observe(t0.elapsed().as_nanos() as u64);
                    chunks_counter().inc();
                    let pts = arena.total_points() as u64;
                    arena_points_counter().add(pts);
                    arena_fill_hist().observe(pts);
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                // Phase 3: per-ray composite through the worker's
                // scratch buffers.
                let colors: Vec<Vec3> = (start..end)
                    .map(|g| {
                        let idx = g - start;
                        let (f, j) = set.locate(g);
                        match (&depths_per[idx], set.batches[f].ranges[j]) {
                            (Some(depths), Some((_, t1))) if !depths.is_empty() => self
                                .composite_ray_scratch(
                                    depths,
                                    &outs[idx].densities,
                                    &outs[idx].colors,
                                    t1,
                                    cscratch,
                                ),
                            _ => self.background,
                        }
                    })
                    .collect();
                if let Some(t0) = t_composite {
                    stage_hist("composite").observe(t0.elapsed().as_nanos() as u64);
                }
                (colors, local)
            })
        });
        Self::merge_frame_chunks(set, chunks, stats)
    }

    /// Aggregates every depth sample of a ray against the full source
    /// set.
    fn aggregate_ray(&self, ray: &Ray, depths: &[f32]) -> Vec<PointAggregate> {
        let d = self.d_channels();
        depths
            .iter()
            .map(|&t| aggregate_point(ray.at(t), ray.direction, self.sources, d))
            .collect()
    }

    /// FLOPs/fetch accounting for one ray's full-model evaluation,
    /// from per-point valid-view counts. Shared by the per-ray and
    /// fused schedules, so both report identical counts (every field
    /// is an order-independent sum; the fused regression test asserts
    /// the equality).
    fn account_full_eval_counts(
        &self,
        n: usize,
        valid_counts: impl Iterator<Item = usize>,
        stats: &mut RenderStats,
    ) {
        let d = self.d_channels();
        for m in valid_counts {
            stats.feature_fetches += 4 * m as u64;
            stats
                .flops
                .add("acquire", m as u64 * flops::bilinear_fetch(1, d));
            // Blend head runs per valid view.
            stats
                .flops
                .add("mlp", m as u64 * 2 * (2 * 8 + 8 * 8 + 8) as u64);
        }
        stats.points += n as u64;
        stats
            .flops
            .add("mlp", n as u64 * 2 * self.model.config.mlp_macs_per_point());
        stats
            .flops
            .add("ray_module", 2 * self.model.config.ray_module_macs(n));
        stats.flops.add("others", flops::volume_render(n));
    }

    /// [`Renderer::account_full_eval_counts`] over an AoS aggregate
    /// run (the per-ray reference schedule).
    fn account_full_eval(&self, aggs: &[PointAggregate], stats: &mut RenderStats) {
        self.account_full_eval_counts(aggs.len(), aggs.iter().map(|a| a.n_valid), stats);
    }

    /// [`Renderer::account_full_eval_counts`] over ray `ray` of an
    /// arena (the fused schedule).
    fn account_full_eval_arena(&self, arena: &AggregateArena, ray: usize, stats: &mut RenderStats) {
        let range = arena.ray_range(ray);
        self.account_full_eval_counts(range.len(), range.clone().map(|k| arena.n_valid(k)), stats);
    }

    /// Aggregates + full-model forward + accounting for a ray's points
    /// (the per-ray reference path: one GEMM chain per ray).
    fn eval_points(
        &self,
        ray: &Ray,
        depths: &[f32],
        stats: &mut RenderStats,
    ) -> (Vec<f32>, Vec<Vec3>) {
        let aggs = self.aggregate_ray(ray, depths);
        self.account_full_eval(&aggs, stats);
        let out = self.model.forward_ray(&aggs);
        (out.densities, out.colors)
    }

    fn composite_ray(
        &self,
        depths: &[f32],
        densities: &[f32],
        colors: &[Vec3],
        t_far: f32,
    ) -> Vec3 {
        let deltas = Ray::interval_widths(depths, t_far);
        composite(densities, colors, &deltas, self.background).color
    }

    /// [`Renderer::composite_ray`] through per-worker scratch buffers —
    /// identical arithmetic (the fused regression suite pins the
    /// equality), zero allocations once the buffers have grown.
    fn composite_ray_scratch(
        &self,
        depths: &[f32],
        densities: &[f32],
        colors: &[Vec3],
        t_far: f32,
        scratch: &mut CompositeScratch,
    ) -> Vec3 {
        Ray::interval_widths_into(depths, t_far, &mut scratch.deltas);
        let (color, _) = composite_into(
            densities,
            colors,
            &scratch.deltas,
            self.background,
            &mut scratch.weights,
        );
        color
    }

    fn render_uniform(&self, batch: &RayBatch, n: usize, stats: &mut RenderStats) -> Vec<Vec3> {
        let (pixels, shaded) = self.shade_batch(batch.len(), |j, local| {
            let Some((t0, t1)) = batch.ranges[j] else {
                return self.background;
            };
            let depths = Ray::uniform_depths(t0, t1, n);
            let (densities, colors) = self.eval_points(&batch.rays[j], &depths, local);
            self.composite_ray(&depths, &densities, &colors, t1)
        });
        stats.merge(&shaded);
        pixels
    }

    /// IBRNet-style hierarchical sampling: `n_coarse` uniform samples
    /// with the full model, importance-resample `n_fine` more, then
    /// composite the union (all evaluated points are counted).
    fn render_hierarchical(
        &self,
        batch: &RayBatch,
        n_coarse: usize,
        n_fine: usize,
        stats: &mut RenderStats,
    ) -> Vec<Vec3> {
        let (pixels, shaded) = self.shade_batch(batch.len(), |j, local| {
            let Some((t0, t1)) = batch.ranges[j] else {
                return self.background;
            };
            let ray = &batch.rays[j];
            let coarse_depths = Ray::uniform_depths(t0, t1, n_coarse);
            let (coarse_densities, coarse_colors) = self.eval_points(ray, &coarse_depths, local);
            // Hitting probabilities from the coarse pass drive the
            // importance resampling.
            let deltas = Ray::interval_widths(&coarse_depths, t1);
            let comp = composite(&coarse_densities, &coarse_colors, &deltas, self.background);
            let edges = sampling::uniform_edges(t0, t1, n_coarse);
            let mut rng = self.ray_rng(j);
            let fine_depths = sampling::importance_sample(&edges, &comp.weights, n_fine, &mut rng);
            let (fine_densities, fine_colors) = self.eval_points(ray, &fine_depths, local);

            // Merge-sort the union by depth.
            let mut merged: Vec<(f32, f32, Vec3)> = coarse_depths
                .iter()
                .zip(&coarse_densities)
                .zip(&coarse_colors)
                .map(|((&t, &d), &c)| (t, d, c))
                .chain(
                    fine_depths
                        .iter()
                        .zip(&fine_densities)
                        .zip(&fine_colors)
                        .map(|((&t, &d), &c)| (t, d, c)),
                )
                .collect();
            merged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let depths: Vec<f32> = merged.iter().map(|m| m.0).collect();
            let densities: Vec<f32> = merged.iter().map(|m| m.1).collect();
            let colors: Vec<Vec3> = merged.iter().map(|m| m.2).collect();
            self.composite_ray(&depths, &densities, &colors, t1)
        });
        stats.merge(&shaded);
        pixels
    }

    /// Hierarchical sampling on the fused chunk schedule over a frame
    /// set: two fused forwards per chunk (coarse then fine) instead of
    /// two GEMM chains per ray, with chunks free to span frames.
    fn render_hierarchical_frames(
        &self,
        set: &FrameSet,
        n_coarse: usize,
        n_fine: usize,
        stats: &mut [RenderStats],
    ) -> Vec<Vec<Vec3>> {
        let d = self.d_channels();
        let chunks = self.fan_out(set.total(), |start, end| {
            with_worker_scratch(|ws| {
                let mut local = vec![RenderStats::default(); set.n_frames()];
                // Coarse phase: SoA-aggregate the chunk into the
                // worker's arena, one fused forward off it.
                ws.arena.reset(self.sources.len(), d);
                let mut coarse_depths_per: Vec<Vec<f32>> = Vec::with_capacity(end - start);
                for g in start..end {
                    let (f, j) = set.locate(g);
                    let batch = &set.batches[f];
                    let range = if self.is_cancelled() {
                        None // cancellation checkpoint: drain as a miss
                    } else {
                        batch.ranges[j]
                    };
                    match range {
                        Some((t0, t1)) => {
                            let depths = Ray::uniform_depths(t0, t1, n_coarse);
                            aggregate_ray_into(
                                &batch.rays[j],
                                &depths,
                                self.sources,
                                d,
                                &mut ws.arena,
                            );
                            self.account_full_eval_arena(&ws.arena, g - start, &mut local[f]);
                            coarse_depths_per.push(depths);
                        }
                        None => {
                            ws.arena.seal_ray();
                            coarse_depths_per.push(Vec::new());
                        }
                    }
                }
                let coarse_outs = {
                    let WorkerScratch { arena, forward, .. } = &mut *ws;
                    self.model.forward_rays_arena(arena, forward)
                };
                if sentinels_enabled() {
                    scan_forward_outputs(&coarse_outs, "hierarchical coarse forward");
                }

                // Importance resampling per ray, then the fine fused
                // pass through the same (reset) arena.
                ws.arena.reset(self.sources.len(), d);
                let mut fine_depths_per: Vec<Vec<f32>> = Vec::with_capacity(end - start);
                for g in start..end {
                    let idx = g - start;
                    let (f, j) = set.locate(g);
                    let batch = &set.batches[f];
                    let Some((t0, t1)) = batch.ranges[j] else {
                        ws.arena.seal_ray();
                        fine_depths_per.push(Vec::new());
                        continue;
                    };
                    // Cancellation checkpoint; also covers rays whose
                    // coarse pass was itself cancelled above (the token
                    // is sticky, so those always land here).
                    if self.is_cancelled() {
                        ws.arena.seal_ray();
                        fine_depths_per.push(Vec::new());
                        continue;
                    }
                    let deltas = Ray::interval_widths(&coarse_depths_per[idx], t1);
                    let comp = composite(
                        &coarse_outs[idx].densities,
                        &coarse_outs[idx].colors,
                        &deltas,
                        self.background,
                    );
                    let edges = sampling::uniform_edges(t0, t1, n_coarse);
                    let mut rng = self.ray_rng(j);
                    let fine_depths =
                        sampling::importance_sample(&edges, &comp.weights, n_fine, &mut rng);
                    aggregate_ray_into(
                        &batch.rays[j],
                        &fine_depths,
                        self.sources,
                        d,
                        &mut ws.arena,
                    );
                    self.account_full_eval_arena(&ws.arena, idx, &mut local[f]);
                    fine_depths_per.push(fine_depths);
                }
                let WorkerScratch {
                    arena,
                    forward,
                    composite: cscratch,
                    ..
                } = ws;
                let fine_outs = self.model.forward_rays_arena(arena, forward);
                if sentinels_enabled() {
                    scan_forward_outputs(&fine_outs, "hierarchical fine forward");
                }

                // Merge-sort the union by depth and composite, per ray.
                let colors: Vec<Vec3> = (start..end)
                    .map(|g| {
                        let idx = g - start;
                        let (f, j) = set.locate(g);
                        let Some((_, t1)) = set.batches[f].ranges[j] else {
                            return self.background;
                        };
                        let mut merged: Vec<(f32, f32, Vec3)> = coarse_depths_per[idx]
                            .iter()
                            .zip(&coarse_outs[idx].densities)
                            .zip(&coarse_outs[idx].colors)
                            .map(|((&t, &d), &c)| (t, d, c))
                            .chain(
                                fine_depths_per[idx]
                                    .iter()
                                    .zip(&fine_outs[idx].densities)
                                    .zip(&fine_outs[idx].colors)
                                    .map(|((&t, &d), &c)| (t, d, c)),
                            )
                            .collect();
                        merged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                        let depths: Vec<f32> = merged.iter().map(|m| m.0).collect();
                        let densities: Vec<f32> = merged.iter().map(|m| m.1).collect();
                        let colors: Vec<Vec3> = merged.iter().map(|m| m.2).collect();
                        self.composite_ray_scratch(&depths, &densities, &colors, t1, cscratch)
                    })
                    .collect();
                (colors, local)
            })
        });
        Self::merge_frame_chunks(set, chunks, stats)
    }

    /// The proposed coarse-then-focus pipeline (Sec. 3.2) over a frame
    /// set, with coarse import/export.
    ///
    /// Step ① (coarse probing) runs fused across every frame *without*
    /// an imported [`CoarseFrame`]; Step ② (the cross-ray budget
    /// allocation) is a per-frame sequential barrier, exactly like the
    /// workload scheduler sitting between the accelerator's two
    /// stages; Step ③ (focused shading) runs fused across all frames.
    /// Returns per-frame pixels plus the freshly computed coarse
    /// passes (`None` where an import was used).
    #[allow(clippy::too_many_arguments)] // internal dispatch target
    fn render_ctf_frames(
        &self,
        set: &FrameSet,
        n_coarse: usize,
        n_focused: usize,
        tau: f32,
        s_coarse: usize,
        cached: &[Option<&CoarseFrame>],
        stats: &mut [RenderStats],
    ) -> (Vec<Vec<Vec3>>, Vec<Option<CoarseFrame>>) {
        let coarse_sources = &self.sources[..s_coarse.min(self.sources.len())];
        let dc = self.model.config.coarse_channels;
        for (f, c) in cached.iter().enumerate() {
            if let Some(c) = c {
                assert_eq!(
                    c.n_rays(),
                    set.batches[f].len(),
                    "imported coarse pass of frame {f} covers {} rays, batch has {}",
                    c.n_rays(),
                    set.batches[f].len()
                );
            }
        }

        // Step ①: lightweight coarse sampling, fused across every
        // frame that did not import a coarse pass. All of a chunk's
        // rays go through one coarse GEMM chain.
        let needs: Vec<usize> = (0..set.n_frames())
            .filter(|&f| cached[f].is_none())
            .collect();
        let mut sub_off = Vec::with_capacity(needs.len() + 1);
        sub_off.push(0usize);
        for &f in &needs {
            sub_off.push(sub_off.last().unwrap() + set.batches[f].len());
        }
        let sub_total = *sub_off.last().unwrap();
        let locate_sub = |g: usize| -> (usize, usize) {
            let i = sub_off.partition_point(|&o| o <= g) - 1;
            (needs[i], g - sub_off[i])
        };
        let t_coarse = gen_nerf_telemetry::enabled().then(std::time::Instant::now);
        let coarse_chunks = self.fan_out(sub_total, |start, end| {
            with_worker_scratch(|ws| {
                let mut local = vec![RenderStats::default(); set.n_frames()];
                // Coarse SoA aggregation into the worker arena (the
                // channel-scaled coarse stats matrix feeds the coarse
                // MLP in place).
                ws.arena.reset(coarse_sources.len(), dc);
                let mut depths_per: Vec<Vec<f32>> = Vec::with_capacity(end - start);
                for g in start..end {
                    let (f, j) = locate_sub(g);
                    let batch = &set.batches[f];
                    // Second pattern is the cancellation checkpoint: a
                    // cancelled ray probes nothing (weights empty,
                    // critical count 0) and Step ③ shades it as
                    // background.
                    let range = batch.ranges[j].filter(|_| !self.is_cancelled());
                    let Some((t0, t1)) = range else {
                        ws.arena.seal_ray();
                        depths_per.push(Vec::new());
                        continue;
                    };
                    let depths = Ray::uniform_depths(t0, t1, n_coarse);
                    aggregate_ray_into(&batch.rays[j], &depths, coarse_sources, dc, &mut ws.arena);
                    let range = ws.arena.ray_range(g - start);
                    for k in range.clone() {
                        let m = ws.arena.n_valid(k) as u64;
                        local[f].feature_fetches += 4 * m;
                        local[f]
                            .flops
                            .add("acquire", m * flops::bilinear_fetch(1, dc));
                    }
                    local[f].coarse_points += range.len() as u64;
                    local[f].flops.add(
                        "mlp",
                        range.len() as u64 * 2 * self.model.config.coarse_mlp_macs_per_point(),
                    );
                    depths_per.push(depths);
                }
                let densities_per = {
                    let WorkerScratch { arena, coarse, .. } = &mut *ws;
                    self.model.coarse_densities_arena(arena, coarse)
                };
                // Stage-boundary sentinel: a non-finite coarse density
                // would silently skew every weight Steps ②/③ consume.
                if sentinels_enabled() {
                    let kernel = kernels::active();
                    for (i, densities) in densities_per.iter().enumerate() {
                        if !kernel.is_finite_all(densities) {
                            trip_sentinel(format!(
                                "coarse forward: non-finite density at chunk ray {i}"
                            ));
                            break;
                        }
                    }
                }
                let per_ray: Vec<(Vec<f32>, usize)> = (start..end)
                    .map(|g| {
                        let idx = g - start;
                        let (f, j) = locate_sub(g);
                        let Some((_, t1)) = set.batches[f].ranges[j] else {
                            return (Vec::new(), 0);
                        };
                        let densities = &densities_per[idx];
                        let deltas = Ray::interval_widths(&depths_per[idx], t1);
                        let dummy_colors = vec![Vec3::ZERO; densities.len()];
                        let comp = composite(densities, &dummy_colors, &deltas, Vec3::ZERO);
                        local[f]
                            .flops
                            .add("others", flops::volume_render(densities.len()));
                        let critical = sampling::critical_count(&comp.weights, tau);
                        (comp.weights, critical)
                    })
                    .collect();
                (per_ray, local)
            })
        });
        let mut fresh: Vec<Option<CoarseFrame>> = (0..set.n_frames())
            .map(|f| {
                cached[f].is_none().then(|| CoarseFrame {
                    weights: Vec::with_capacity(set.batches[f].len()),
                    criticals: Vec::with_capacity(set.batches[f].len()),
                    checksum: 0,
                })
            })
            .collect();
        let mut g = 0usize;
        for (per_ray, local) in coarse_chunks {
            for (weights, critical) in per_ray {
                let (f, _) = locate_sub(g);
                let cf = fresh[f].as_mut().expect("fresh frame");
                cf.weights.push(weights);
                cf.criticals.push(critical);
                g += 1;
            }
            for (f, l) in local.iter().enumerate() {
                stats[f].merge(l);
            }
        }
        // Seal every freshly probed frame's digest at export.
        for cf in fresh.iter_mut().flatten() {
            cf.seal();
        }
        if let Some(t0) = t_coarse {
            stage_hist("coarse").observe(t0.elapsed().as_nanos() as u64);
        }

        // Per-frame coarse view: imported or freshly probed.
        let coarse_ref: Vec<&CoarseFrame> = (0..set.n_frames())
            .map(|f| cached[f].unwrap_or_else(|| fresh[f].as_ref().expect("fresh frame")))
            .collect();

        // Step ②: per-frame cross-ray allocation P(j) ∝ N^cr_j.
        let n_cap = self.model.config.n_max;
        let counts: Vec<Vec<usize>> = (0..set.n_frames())
            .map(|f| {
                let budget = n_focused * set.batches[f].len();
                sampling::allocate_focused(&coarse_ref[f].criticals, budget, n_cap)
            })
            .collect();

        // Step ③: sparse focused sampling + full pipeline, fused
        // across every frame.
        let pixels = self.shade_frames_fused(
            set,
            |f, j| {
                let (t0, t1) = set.batches[f].ranges[j]?;
                if counts[f][j] == 0 {
                    // Nothing critical along the ray: empty/occluded
                    // region, background shows through.
                    return None;
                }
                let edges = sampling::uniform_edges(t0, t1, n_coarse);
                let mut rng = self.ray_rng(j);
                Some(sampling::importance_sample(
                    &edges,
                    &coarse_ref[f].weights[j],
                    counts[f][j],
                    &mut rng,
                ))
            },
            stats,
        );
        (pixels, fresh_without_imports(fresh, cached))
    }

    /// The per-ray reference coarse-then-focus pipeline (Sec. 3.2):
    /// Step ① probes with one coarse GEMM chain per ray, Step ② is the
    /// sequential cross-ray barrier, Step ③ shades per ray.
    fn render_ctf(
        &self,
        batch: &RayBatch,
        n_coarse: usize,
        n_focused: usize,
        tau: f32,
        s_coarse: usize,
        stats: &mut RenderStats,
    ) -> Vec<Vec3> {
        let n_rays = batch.len();
        let coarse_sources = &self.sources[..s_coarse.min(self.sources.len())];
        let dc = self.model.config.coarse_channels;

        // Step ①: lightweight coarse sampling for every ray.
        let coarse_chunks = self.fan_out(n_rays, |start, end| {
            let mut local = RenderStats::default();
            let mut depths_per: Vec<Vec<f32>> = Vec::with_capacity(end - start);
            let mut aggs_per: Vec<Vec<PointAggregate>> = Vec::with_capacity(end - start);
            for j in start..end {
                // The filter is the cancellation checkpoint of the
                // per-ray reference schedule's coarse pass.
                let range = batch.ranges[j].filter(|_| !self.is_cancelled());
                let Some((t0, t1)) = range else {
                    depths_per.push(Vec::new());
                    aggs_per.push(Vec::new());
                    continue;
                };
                let ray = &batch.rays[j];
                let depths = Ray::uniform_depths(t0, t1, n_coarse);
                let aggs: Vec<PointAggregate> = depths
                    .iter()
                    .map(|&t| aggregate_point(ray.at(t), ray.direction, coarse_sources, dc))
                    .collect();
                for a in &aggs {
                    local.feature_fetches += 4 * a.n_valid as u64;
                    local
                        .flops
                        .add("acquire", a.n_valid as u64 * flops::bilinear_fetch(1, dc));
                }
                local.coarse_points += aggs.len() as u64;
                local.flops.add(
                    "mlp",
                    aggs.len() as u64 * 2 * self.model.config.coarse_mlp_macs_per_point(),
                );
                depths_per.push(depths);
                aggs_per.push(aggs);
            }
            let densities_per: Vec<Vec<f32>> = aggs_per
                .iter()
                .map(|aggs| self.model.coarse_densities(aggs))
                .collect();
            let per_ray: Vec<(Vec<f32>, usize)> = (start..end)
                .map(|j| {
                    let idx = j - start;
                    let Some((_, t1)) = batch.ranges[j] else {
                        return (Vec::new(), 0);
                    };
                    let densities = &densities_per[idx];
                    let deltas = Ray::interval_widths(&depths_per[idx], t1);
                    let dummy_colors = vec![Vec3::ZERO; densities.len()];
                    let comp = composite(densities, &dummy_colors, &deltas, Vec3::ZERO);
                    local
                        .flops
                        .add("others", flops::volume_render(densities.len()));
                    let critical = sampling::critical_count(&comp.weights, tau);
                    (comp.weights, critical)
                })
                .collect();
            (per_ray, local)
        });
        let mut ray_weights: Vec<Vec<f32>> = Vec::with_capacity(n_rays);
        let mut criticals: Vec<usize> = Vec::with_capacity(n_rays);
        for (per_ray, local) in coarse_chunks {
            for (weights, critical) in per_ray {
                ray_weights.push(weights);
                criticals.push(critical);
            }
            stats.merge(&local);
        }

        // Step ②: cross-ray allocation P(j) ∝ N^cr_j.
        let budget = n_focused * n_rays;
        let n_cap = self.model.config.n_max;
        let counts = sampling::allocate_focused(&criticals, budget, n_cap);

        // Step ③: sparse focused sampling + full pipeline.
        let (pixels, shaded) = self.shade_batch(n_rays, |j, local| {
            let Some((t0, t1)) = batch.ranges[j] else {
                return self.background;
            };
            if counts[j] == 0 {
                return self.background;
            }
            let edges = sampling::uniform_edges(t0, t1, n_coarse);
            let mut rng = self.ray_rng(j);
            let depths = sampling::importance_sample(&edges, &ray_weights[j], counts[j], &mut rng);
            let (densities, colors) = self.eval_points(&batch.rays[j], &depths, local);
            self.composite_ray(&depths, &densities, &colors, t1)
        });
        stats.merge(&shaded);
        pixels
    }
}

/// Keeps only the coarse frames that were freshly probed this call
/// (imported slots stay `None` so the caller keeps its own copy).
fn fresh_without_imports(
    fresh: Vec<Option<CoarseFrame>>,
    cached: &[Option<&CoarseFrame>],
) -> Vec<Option<CoarseFrame>> {
    fresh
        .into_iter()
        .zip(cached)
        .map(|(f, c)| if c.is_some() { None } else { f })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::prepare_sources;
    use gen_nerf_scene::datasets::{Dataset, DatasetKind};
    use gen_nerf_scene::metrics::psnr;

    fn setup() -> (Dataset, Vec<SourceViewData>, GenNerfModel) {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 4, 1, 24, 5);
        let sources = prepare_sources(&ds.source_views);
        let model = GenNerfModel::new(ModelConfig::fast());
        (ds, sources, model)
    }

    fn render(
        ds: &Dataset,
        sources: &[SourceViewData],
        model: &GenNerfModel,
        strategy: SamplingStrategy,
    ) -> (Image, RenderStats) {
        let bounds = ds.scene.bounds;
        let bg = ds.scene.background;
        let r = Renderer::new(model, sources, strategy, bounds, bg);
        r.render(&ds.eval_views[0].camera)
    }

    #[test]
    fn uniform_render_produces_finite_image() {
        let (ds, sources, model) = setup();
        let (img, stats) = render(&ds, &sources, &model, SamplingStrategy::Uniform { n: 8 });
        assert!(img.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(stats.rays, (img.width() * img.height()) as u64);
        assert!(stats.points > 0);
        assert!(stats.flops.total() > 0);
    }

    #[test]
    fn hierarchical_counts_both_passes() {
        let (ds, sources, model) = setup();
        let (_, stats) = render(
            &ds,
            &sources,
            &model,
            SamplingStrategy::Hierarchical {
                n_coarse: 4,
                n_fine: 4,
            },
        );
        // Coarse + fine points both evaluated by the full model.
        let expected_min = stats.rays * 6; // misses may sample fewer
        assert!(
            stats.points >= expected_min,
            "points = {}, rays = {}",
            stats.points,
            stats.rays
        );
    }

    #[test]
    fn ctf_renders_and_is_sparse() {
        let (ds, sources, model) = setup();
        let (img, stats) = render(
            &ds,
            &sources,
            &model,
            SamplingStrategy::coarse_then_focus(8, 8),
        );
        assert!(img.as_slice().iter().all(|v| v.is_finite()));
        // Focused points stay within the budget (plus the min-1 slack).
        assert!(
            stats.points <= stats.rays * 8 + stats.rays,
            "points = {} rays = {}",
            stats.points,
            stats.rays
        );
        // Coarse pass points are accounted separately.
        assert!(stats.coarse_points > 0);
        // The coarse pass is cheap: its FLOPs bucket share stays small.
        assert!(stats.flops.get("mlp") > 0);
    }

    #[test]
    fn ctf_allocation_is_nonuniform() {
        // The focused budget is *redistributed*, not uniformly spread:
        // rays whose coarse pass finds nothing critical get zero
        // focused samples and render as exact background.
        let (ds, sources, model) = setup();
        let (img, stats) = render(
            &ds,
            &sources,
            &model,
            SamplingStrategy::coarse_then_focus(8, 8),
        );
        // Budget respected (± the minimum-one slack).
        assert!(stats.points <= stats.rays * 8 + stats.rays);
        // With an untrained coarse head the exact pixel set varies, but
        // the image must be valid either way.
        let bg = ds.scene.background;
        let exact_bg = (0..img.height())
            .flat_map(|y| (0..img.width()).map(move |x| (x, y)))
            .filter(|&(x, y)| (img.get(x, y) - bg).length() < 1e-6)
            .count();
        // Report-style sanity: some pixels may be exact background
        // (zero-allocation rays); the count is bounded by the frame.
        assert!(exact_bg <= img.pixel_count());
    }

    #[test]
    fn stats_mflops_positive_and_bucketized() {
        let (ds, sources, model) = setup();
        let (_, stats) = render(&ds, &sources, &model, SamplingStrategy::Uniform { n: 8 });
        assert!(stats.mflops_per_pixel() > 0.0);
        for bucket in ["acquire", "mlp", "ray_module", "others"] {
            assert!(stats.flops.get(bucket) > 0, "missing bucket {bucket}");
        }
    }

    #[test]
    fn rays_missing_bounds_get_background() {
        let (ds, sources, model) = setup();
        let (img, _) = render(&ds, &sources, &model, SamplingStrategy::Uniform { n: 4 });
        // Corner pixels look past the object; with an untrained model
        // they may not match gt, but rays that miss the bounds entirely
        // must be exactly background.
        let corner = img.get(0, 0);
        let bg = ds.scene.background;
        // The corner ray may still hit the bounds; just check validity.
        assert!(corner.x >= 0.0 && corner.x <= 1.0);
        let _ = bg;
    }

    #[test]
    fn trained_model_renders_better_than_untrained() {
        use crate::trainer::{TrainConfig, Trainer};
        let (ds, sources, mut model) = setup();
        let strategy = SamplingStrategy::Uniform { n: 12 };
        let (img_untrained, _) = render(&ds, &sources, &model, strategy);
        let mut trainer = Trainer::new(TrainConfig::fast());
        trainer.pretrain(&mut model, &[&ds]);
        let (img_trained, _) = render(&ds, &sources, &model, strategy);
        let gt = &ds.eval_views[0].image;
        let p_untrained = psnr(gt, &img_untrained);
        let p_trained = psnr(gt, &img_trained);
        assert!(
            p_trained > p_untrained,
            "training did not help: {p_untrained} -> {p_trained}"
        );
    }

    #[test]
    fn ray_batch_matches_pixel_grid() {
        let (ds, _, _) = setup();
        let cam = &ds.eval_views[0].camera;
        let batch = RayBatch::from_camera(cam, &ds.scene.bounds);
        assert_eq!(
            batch.len(),
            (cam.intrinsics.width * cam.intrinsics.height) as usize
        );
        // Row-major indexing: ray j corresponds to pixel (j % w, j / w).
        let j = (batch.width + 1) as usize; // pixel (1, 1)
        let expect = cam.pixel_center_ray(1, 1);
        assert_eq!(batch.rays[j].direction, expect.direction);
    }

    #[test]
    fn worker_count_does_not_change_output() {
        // The determinism contract of the batch engine, on every
        // strategy (the cross-crate regression test covers the trained
        // path at larger scale).
        let (ds, sources, model) = setup();
        for strategy in [
            SamplingStrategy::Uniform { n: 6 },
            SamplingStrategy::Hierarchical {
                n_coarse: 4,
                n_fine: 4,
            },
            SamplingStrategy::coarse_then_focus(6, 6),
        ] {
            let run = |threads: usize| {
                let r = Renderer::new(
                    &model,
                    &sources,
                    strategy,
                    ds.scene.bounds,
                    ds.scene.background,
                )
                .with_threads(threads);
                r.render(&ds.eval_views[0].camera)
            };
            let (img1, stats1) = run(1);
            let (img4, stats4) = run(4);
            assert_eq!(img1.as_slice(), img4.as_slice(), "{strategy:?}");
            assert_eq!(stats1.flops.total(), stats4.flops.total(), "{strategy:?}");
            assert_eq!(stats1.points, stats4.points, "{strategy:?}");
            assert_eq!(
                stats1.feature_fetches, stats4.feature_fetches,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn fused_schedule_matches_per_ray_reference() {
        // The cross-crate regression test pins this at scale on a
        // trained model; this is the fast in-crate guard.
        let (ds, sources, model) = setup();
        for strategy in [
            SamplingStrategy::Uniform { n: 6 },
            SamplingStrategy::Hierarchical {
                n_coarse: 4,
                n_fine: 4,
            },
            SamplingStrategy::coarse_then_focus(6, 6),
        ] {
            let run = |fused: bool| {
                let r = Renderer::new(
                    &model,
                    &sources,
                    strategy,
                    ds.scene.bounds,
                    ds.scene.background,
                )
                .with_fused(fused)
                .with_threads(2);
                r.render(&ds.eval_views[0].camera)
            };
            let (img_f, stats_f) = run(true);
            let (img_p, stats_p) = run(false);
            let fb: Vec<u32> = img_f.as_slice().iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = img_p.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, pb, "{strategy:?} fused image diverged");
            assert_eq!(stats_f.points, stats_p.points, "{strategy:?}");
            assert_eq!(stats_f.flops.total(), stats_p.flops.total(), "{strategy:?}");
        }
    }

    #[test]
    fn per_ray_streams_are_decorrelated() {
        // Neighbouring rays must not share a random stream.
        let (ds, sources, model) = setup();
        let r = Renderer::new(
            &model,
            &sources,
            SamplingStrategy::Uniform { n: 4 },
            ds.scene.bounds,
            ds.scene.background,
        );
        let mut a = r.ray_rng(0);
        let mut b = r.ray_rng(1);
        let same = (0..32)
            .filter(|_| (a.uniform(0.0, 1.0) - b.uniform(0.0, 1.0)).abs() < 1e-9)
            .count();
        assert!(same < 4, "streams look identical: {same}/32 draws equal");
    }

    #[test]
    fn render_into_matches_render_and_reuses_buffers() {
        let (ds, sources, model) = setup();
        for strategy in [
            SamplingStrategy::Uniform { n: 6 },
            SamplingStrategy::coarse_then_focus(6, 6),
        ] {
            let r = Renderer::new(
                &model,
                &sources,
                strategy,
                ds.scene.bounds,
                ds.scene.background,
            );
            let cam = &ds.eval_views[0].camera;
            let (img, stats) = r.render(cam);
            // A dirty, differently sized buffer must come out identical.
            let mut reused = Image::from_fn(3, 7, |_, _| Vec3::ONE);
            let mut rstats = RenderStats::default();
            r.render_into(cam, &mut reused, &mut rstats);
            assert_eq!(img.as_slice(), reused.as_slice(), "{strategy:?}");
            assert_eq!(stats.points, rstats.points, "{strategy:?}");
            assert_eq!(stats.flops.total(), rstats.flops.total(), "{strategy:?}");
            // Rendering again into the same buffer stays stable.
            r.render_into(cam, &mut reused, &mut rstats);
            assert_eq!(
                img.as_slice(),
                reused.as_slice(),
                "{strategy:?} second fill"
            );
        }
    }

    #[test]
    fn multi_frame_render_matches_solo_renders() {
        // The serving contract: co-scheduling frames in one fused
        // workload changes nothing about any frame's output.
        let (ds, sources, model) = setup();
        for strategy in [
            SamplingStrategy::Uniform { n: 6 },
            SamplingStrategy::Hierarchical {
                n_coarse: 4,
                n_fine: 4,
            },
            SamplingStrategy::coarse_then_focus(6, 6),
        ] {
            let r = Renderer::new(
                &model,
                &sources,
                strategy,
                ds.scene.bounds,
                ds.scene.background,
            )
            .with_threads(2);
            let cameras: Vec<Camera> = ds.eval_views.iter().map(|v| v.camera).collect();
            let joint = r.render_frames(&cameras);
            for (cam, (img, stats)) in cameras.iter().zip(&joint) {
                let (solo_img, solo_stats) = r.render(cam);
                assert_eq!(solo_img.as_slice(), img.as_slice(), "{strategy:?}");
                assert_eq!(solo_stats.points, stats.points, "{strategy:?}");
                assert_eq!(
                    solo_stats.flops.total(),
                    stats.flops.total(),
                    "{strategy:?}"
                );
            }
        }
    }

    #[test]
    fn imported_coarse_from_same_pose_is_bitwise_stable() {
        // Importing the exported Step ① of the *same* pose must
        // reproduce the uncached render exactly, while skipping the
        // coarse probing work.
        let (ds, sources, model) = setup();
        let r = Renderer::new(
            &model,
            &sources,
            SamplingStrategy::coarse_then_focus(6, 6),
            ds.scene.bounds,
            ds.scene.background,
        );
        let cam = ds.eval_views[0].camera;
        let cameras = [cam];
        let mut images = [Image::new(0, 0)];
        let mut stats = [RenderStats::default()];
        let exported = r.render_frames_cached(&cameras, &[None], &mut images, &mut stats);
        let coarse = exported[0].as_ref().expect("fresh coarse exported");
        assert_eq!(coarse.n_rays(), images[0].pixel_count());
        assert!(coarse.approx_bytes() > 0);

        let mut images2 = [Image::new(0, 0)];
        let mut stats2 = [RenderStats::default()];
        let exported2 =
            r.render_frames_cached(&cameras, &[Some(coarse)], &mut images2, &mut stats2);
        assert!(exported2[0].is_none(), "import must not re-export");
        assert_eq!(images[0].as_slice(), images2[0].as_slice());
        // The cached pass really skipped Step ①.
        assert_eq!(stats2[0].coarse_points, 0);
        assert!(stats[0].coarse_points > 0);
        assert!(stats2[0].flops.total() < stats[0].flops.total());
    }

    #[test]
    fn pool_backed_renderer_matches_scoped_threads() {
        let (ds, sources, model) = setup();
        let pool = gen_nerf_parallel::Pool::new(2);
        for strategy in [
            SamplingStrategy::Uniform { n: 6 },
            SamplingStrategy::coarse_then_focus(6, 6),
        ] {
            let base = || {
                Renderer::new(
                    &model,
                    &sources,
                    strategy,
                    ds.scene.bounds,
                    ds.scene.background,
                )
                .with_threads(2)
            };
            let (img_scoped, stats_scoped) = base().render(&ds.eval_views[0].camera);
            let (img_pool, stats_pool) = base().with_pool(&pool).render(&ds.eval_views[0].camera);
            assert_eq!(img_scoped.as_slice(), img_pool.as_slice(), "{strategy:?}");
            assert_eq!(stats_scoped.points, stats_pool.points, "{strategy:?}");
        }
    }
}
