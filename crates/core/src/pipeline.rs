//! End-to-end rendering pipeline (Steps 1–5 of Sec. 2.2 with the
//! sampling strategies of Sec. 3.2) plus FLOPs/fetch instrumentation.
//!
//! # The ray-batch engine
//!
//! The accelerator the paper builds exists to exploit one fact: rays
//! are independent, so a frame is a bag of identical per-ray programs
//! whose compute can be overlapped. The software pipeline mirrors that
//! structure. [`RayBatch`] lays a camera's rays out structure-of-arrays
//! (directions and clip ranges in parallel vectors, indexed by the
//! row-major pixel id), and [`Renderer`] maps a per-ray shading program
//! over the batch with [`gen_nerf_parallel`]'s deterministic fork–join:
//! contiguous ray chunks go to worker threads, each worker accumulates
//! a private [`RenderStats`], and chunk results are merged in ray
//! order.
//!
//! Parallel safety comes from [`GenNerfModel`]'s `&self` inference path
//! (no activation caching), so all workers share one model borrow.
//! Determinism comes from two rules:
//!
//! * every per-ray random stream is seeded from `(render seed, ray
//!   index)` — never shared across rays — so a ray's samples do not
//!   depend on which thread ran it or in what order;
//! * per-chunk stats are plain integer sums merged in chunk order.
//!
//! Together these make the output bit-for-bit identical for any worker
//! count, including one; `tests/batch_parallel_regression.rs` pins
//! this. The worker count defaults to [`gen_nerf_parallel::num_threads`]
//! (the `GEN_NERF_THREADS` environment variable) and can be pinned per
//! renderer with [`Renderer::with_threads`].
//!
//! # The fused chunk schedule (default)
//!
//! Within each worker's chunk, shading runs as a two-phase schedule
//! instead of a per-ray program: **aggregate** every ray of the chunk,
//! then **one fused forward** ([`GenNerfModel::forward_rays`] — a
//! single point-MLP GEMM and a single blend-head GEMM for the whole
//! chunk, the software analog of the paper's PE pool), then a per-ray
//! **composite** through per-worker scratch buffers. Because the dense
//! GEMM kernel makes output rows independent of their batch (k-order
//! accumulation, see `gen_nerf_nn::tensor` — a contract every SIMD
//! kernel backend upholds; see `gen_nerf_nn::kernels`), the fused
//! schedule is bit-for-bit identical to the per-ray path for any
//! chunking — which is also what keeps the thread-count determinism
//! above intact. The per-ray reference path survives behind
//! [`Renderer::with_fused`]`(false)` for regression pinning
//! (`tests/fused_forward_regression.rs`) and perf comparison
//! (`gen-nerf-bench`'s `perf_report`).

use crate::config::SamplingStrategy;
use crate::features::{aggregate_point, PointAggregate, SourceViewData};
use crate::model::{ForwardScratch, GenNerfModel};
use crate::sampling;
use gen_nerf_geometry::{Aabb, Camera, Ray, Vec3};
use gen_nerf_nn::flops::{self, FlopsCounter};
use gen_nerf_nn::init::Rng;
use gen_nerf_parallel::par_chunk_ranges;
use gen_nerf_scene::renderer::{composite, composite_into};
use gen_nerf_scene::Image;
use serde::{Deserialize, Serialize};

/// Reusable buffers for the per-ray composite phase of the fused chunk
/// schedule: one instance per worker replaces the interval-widths and
/// hitting-weights `Vec`s the allocating [`composite`] pays per ray.
#[derive(Debug, Clone, Default)]
struct CompositeScratch {
    deltas: Vec<f32>,
    weights: Vec<f32>,
}

/// Instrumentation collected while rendering one image.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RenderStats {
    /// FLOPs by bucket: `acquire`, `mlp`, `ray_module`, `others`.
    pub flops: FlopsCounter,
    /// Camera rays traced.
    pub rays: u64,
    /// Points evaluated by the full model.
    pub points: u64,
    /// Points evaluated by the coarse pass.
    pub coarse_points: u64,
    /// Feature-map texel fetches (4 bilinear taps × valid views ×
    /// points).
    pub feature_fetches: u64,
}

impl RenderStats {
    /// Total MFLOPs per rendered pixel (the Tab. 2/3 efficiency
    /// metric).
    pub fn mflops_per_pixel(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.flops.total() as f64 / self.rays as f64 / 1e6
        }
    }

    /// Average full-model points per ray (the Fig. 9 x-axis, measured).
    pub fn avg_points_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            (self.points + self.coarse_points) as f64 / self.rays as f64
        }
    }

    /// Adds another accumulator's counts into this one (used to fold
    /// per-worker stats; all fields are order-independent sums).
    pub fn merge(&mut self, other: &Self) {
        self.flops.merge(&other.flops);
        self.rays += other.rays;
        self.points += other.points;
        self.coarse_points += other.coarse_points;
        self.feature_fetches += other.feature_fetches;
    }
}

/// A camera's rays in structure-of-arrays layout, indexed by row-major
/// pixel id: `rays[j]` and `ranges[j]` describe pixel
/// `(j % width, j / width)`.
#[derive(Debug, Clone)]
pub struct RayBatch {
    /// Per-pixel camera rays.
    pub rays: Vec<Ray>,
    /// Per-ray `[t_near, t_far]` against the scene bounds; `None` for
    /// rays that miss entirely.
    pub ranges: Vec<Option<(f32, f32)>>,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl RayBatch {
    /// Builds the batch for every pixel of `camera`, clipping against
    /// `bounds`.
    pub fn from_camera(camera: &Camera, bounds: &Aabb) -> Self {
        let (w, h) = (camera.intrinsics.width, camera.intrinsics.height);
        let n = (w as usize) * (h as usize);
        let mut rays = Vec::with_capacity(n);
        let mut ranges = Vec::with_capacity(n);
        for y in 0..h {
            for x in 0..w {
                let ray = camera.pixel_center_ray(x, y);
                ranges.push(bounds.intersect_ray(&ray));
                rays.push(ray);
            }
        }
        Self {
            rays,
            ranges,
            width: w,
            height: h,
        }
    }

    /// Number of rays (pixels).
    pub fn len(&self) -> usize {
        self.rays.len()
    }

    /// `true` when the camera has no pixels.
    pub fn is_empty(&self) -> bool {
        self.rays.is_empty()
    }

    /// Assembles per-ray colors (in batch order) into an image.
    fn into_image(&self, pixels: &[Vec3]) -> Image {
        debug_assert_eq!(pixels.len(), self.len());
        let mut img = Image::new(self.width, self.height);
        for (j, &rgb) in pixels.iter().enumerate() {
            img.set(j as u32 % self.width, j as u32 / self.width, rgb);
        }
        img
    }
}

/// SplitMix64 finalizer: decorrelates per-ray seeds derived from
/// `(base seed, ray index)`.
fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The end-to-end renderer: a model + prepared source views + a
/// sampling strategy, rendering novel views inside known scene bounds.
///
/// Holds the model by shared reference — inference never mutates it —
/// so the renderer can fan ray chunks out across threads (see the
/// module docs for the determinism contract).
pub struct Renderer<'a> {
    model: &'a GenNerfModel,
    sources: &'a [SourceViewData],
    strategy: SamplingStrategy,
    bounds: Aabb,
    background: Vec3,
    base_seed: u64,
    threads: usize,
    fused: bool,
}

impl<'a> Renderer<'a> {
    /// Creates a renderer using the default worker count
    /// ([`gen_nerf_parallel::num_threads`]).
    ///
    /// `bounds` clip each camera ray to `[t_near, t_far]`; `background`
    /// fills rays that miss or terminate without saturating.
    pub fn new(
        model: &'a GenNerfModel,
        sources: &'a [SourceViewData],
        strategy: SamplingStrategy,
        bounds: Aabb,
        background: Vec3,
    ) -> Self {
        let base_seed = model.config.seed ^ 0x5eed_5a3e;
        Self {
            model,
            sources,
            strategy,
            bounds,
            background,
            base_seed,
            threads: gen_nerf_parallel::num_threads(),
            fused: true,
        }
    }

    /// Pins the worker count (1 = fully sequential). The rendered
    /// image and stats are identical for every value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the inference schedule: `true` (the default) renders
    /// through the fused chunk schedule
    /// ([`GenNerfModel::forward_rays`]); `false` selects the per-ray
    /// reference path. Output and stats are bit-for-bit identical
    /// either way — the flag exists for regression pinning and
    /// benchmarking, not as a results knob.
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Renders a full image from `camera`.
    pub fn render(&self, camera: &Camera) -> (Image, RenderStats) {
        let batch = RayBatch::from_camera(camera, &self.bounds);
        let mut stats = RenderStats::default();
        stats.rays = batch.len() as u64;
        let image = match (self.strategy, self.fused) {
            (SamplingStrategy::Uniform { n }, false) => self.render_uniform(&batch, n, &mut stats),
            (SamplingStrategy::Uniform { n }, true) => {
                self.render_uniform_fused(&batch, n, &mut stats)
            }
            (SamplingStrategy::Hierarchical { n_coarse, n_fine }, false) => {
                self.render_hierarchical(&batch, n_coarse, n_fine, &mut stats)
            }
            (SamplingStrategy::Hierarchical { n_coarse, n_fine }, true) => {
                self.render_hierarchical_fused(&batch, n_coarse, n_fine, &mut stats)
            }
            (
                SamplingStrategy::CoarseThenFocus {
                    n_coarse,
                    n_focused,
                    tau,
                    s_coarse,
                },
                fused,
            ) => self.render_ctf(
                &batch, n_coarse, n_focused, tau, s_coarse, fused, &mut stats,
            ),
        };
        (image, stats)
    }

    fn d_channels(&self) -> usize {
        self.model.config.d_features
    }

    /// Derives the decorrelated random stream of ray `j` — a pure
    /// function of the render seed and the ray index, so results do
    /// not depend on thread scheduling.
    fn ray_rng(&self, j: usize) -> Rng {
        Rng::seed_from(mix_seed(self.base_seed, j as u64))
    }

    /// Maps `shade` over every ray of the batch, fanning contiguous
    /// chunks out to worker threads. Returns per-ray colors in batch
    /// order plus merged stats.
    fn shade_batch<F>(&self, n_rays: usize, shade: F) -> (Vec<Vec3>, RenderStats)
    where
        F: Fn(usize, &mut RenderStats) -> Vec3 + Sync,
    {
        let chunks = par_chunk_ranges(n_rays, self.threads, |start, end| {
            let mut local = RenderStats::default();
            let colors: Vec<Vec3> = (start..end).map(|j| shade(j, &mut local)).collect();
            (colors, local)
        });
        let mut pixels = Vec::with_capacity(n_rays);
        let mut stats = RenderStats::default();
        for (colors, local) in chunks {
            pixels.extend(colors);
            stats.merge(&local);
        }
        (pixels, stats)
    }

    /// The fused two-phase chunk schedule for single-pass strategies:
    /// per chunk, `depths_for` picks each ray's samples (`None` →
    /// background), phase 1 aggregates every ray of the chunk, phase 2
    /// runs **one** fused forward for the whole chunk, phase 3
    /// composites per ray. Bit-identical to [`Renderer::shade_batch`]
    /// over [`Renderer::eval_points`] with the same depth choice.
    fn shade_batch_fused<D>(&self, batch: &RayBatch, depths_for: D) -> (Vec<Vec3>, RenderStats)
    where
        D: Fn(usize) -> Option<Vec<f32>> + Sync,
    {
        let chunks = par_chunk_ranges(batch.len(), self.threads, |start, end| {
            let mut local = RenderStats::default();
            // Phase 1: depth selection + aggregation for the chunk.
            let mut depths_per: Vec<Option<Vec<f32>>> = Vec::with_capacity(end - start);
            let mut aggs_per: Vec<Vec<PointAggregate>> = Vec::with_capacity(end - start);
            for j in start..end {
                let depths = depths_for(j);
                let aggs = match &depths {
                    Some(d) => self.aggregate_ray(&batch.rays[j], d),
                    None => Vec::new(),
                };
                if !aggs.is_empty() {
                    self.account_full_eval(&aggs, &mut local);
                }
                depths_per.push(depths);
                aggs_per.push(aggs);
            }
            // Phase 2: one fused forward for every ray of the chunk,
            // through this worker's scratch buffers.
            let mut scratch = ForwardScratch::default();
            let refs: Vec<&[PointAggregate]> = aggs_per.iter().map(|a| a.as_slice()).collect();
            let outs = self.model.forward_rays_scratch(&refs, &mut scratch);
            // Phase 3: per-ray composite through the worker's scratch
            // buffers.
            let mut cscratch = CompositeScratch::default();
            let colors: Vec<Vec3> = (start..end)
                .map(|j| {
                    let idx = j - start;
                    match (&depths_per[idx], batch.ranges[j]) {
                        (Some(depths), Some((_, t1))) if !depths.is_empty() => self
                            .composite_ray_scratch(
                                depths,
                                &outs[idx].densities,
                                &outs[idx].colors,
                                t1,
                                &mut cscratch,
                            ),
                        _ => self.background,
                    }
                })
                .collect();
            (colors, local)
        });
        let mut pixels = Vec::with_capacity(batch.len());
        let mut stats = RenderStats::default();
        for (colors, local) in chunks {
            pixels.extend(colors);
            stats.merge(&local);
        }
        (pixels, stats)
    }

    /// Aggregates every depth sample of a ray against the full source
    /// set.
    fn aggregate_ray(&self, ray: &Ray, depths: &[f32]) -> Vec<PointAggregate> {
        let d = self.d_channels();
        depths
            .iter()
            .map(|&t| aggregate_point(ray.at(t), ray.direction, self.sources, d))
            .collect()
    }

    /// FLOPs/fetch accounting for one ray's full-model evaluation.
    /// Shared by the per-ray and fused schedules, so both report
    /// identical counts (every field is an order-independent sum; the
    /// fused regression test asserts the equality).
    fn account_full_eval(&self, aggs: &[PointAggregate], stats: &mut RenderStats) {
        let d = self.d_channels();
        let n = aggs.len();
        for a in aggs {
            stats.feature_fetches += 4 * a.n_valid as u64;
            stats
                .flops
                .add("acquire", a.n_valid as u64 * flops::bilinear_fetch(1, d));
            // Blend head runs per valid view.
            stats
                .flops
                .add("mlp", a.n_valid as u64 * 2 * (2 * 8 + 8 * 8 + 8) as u64);
        }
        stats.points += n as u64;
        stats
            .flops
            .add("mlp", n as u64 * 2 * self.model.config.mlp_macs_per_point());
        stats
            .flops
            .add("ray_module", 2 * self.model.config.ray_module_macs(n));
        stats.flops.add("others", flops::volume_render(n));
    }

    /// Aggregates + full-model forward + accounting for a ray's points
    /// (the per-ray reference path: one GEMM chain per ray).
    fn eval_points(
        &self,
        ray: &Ray,
        depths: &[f32],
        stats: &mut RenderStats,
    ) -> (Vec<f32>, Vec<Vec3>) {
        let aggs = self.aggregate_ray(ray, depths);
        self.account_full_eval(&aggs, stats);
        let out = self.model.forward_ray(&aggs);
        (out.densities, out.colors)
    }

    fn composite_ray(
        &self,
        depths: &[f32],
        densities: &[f32],
        colors: &[Vec3],
        t_far: f32,
    ) -> Vec3 {
        let deltas = Ray::interval_widths(depths, t_far);
        composite(densities, colors, &deltas, self.background).color
    }

    /// [`Renderer::composite_ray`] through per-worker scratch buffers —
    /// identical arithmetic (the fused regression suite pins the
    /// equality), zero allocations once the buffers have grown.
    fn composite_ray_scratch(
        &self,
        depths: &[f32],
        densities: &[f32],
        colors: &[Vec3],
        t_far: f32,
        scratch: &mut CompositeScratch,
    ) -> Vec3 {
        Ray::interval_widths_into(depths, t_far, &mut scratch.deltas);
        let (color, _) = composite_into(
            densities,
            colors,
            &scratch.deltas,
            self.background,
            &mut scratch.weights,
        );
        color
    }

    fn render_uniform(&self, batch: &RayBatch, n: usize, stats: &mut RenderStats) -> Image {
        let (pixels, shaded) = self.shade_batch(batch.len(), |j, local| {
            let Some((t0, t1)) = batch.ranges[j] else {
                return self.background;
            };
            let depths = Ray::uniform_depths(t0, t1, n);
            let (densities, colors) = self.eval_points(&batch.rays[j], &depths, local);
            self.composite_ray(&depths, &densities, &colors, t1)
        });
        stats.merge(&shaded);
        batch.into_image(&pixels)
    }

    /// [`Renderer::render_uniform`] on the fused chunk schedule.
    fn render_uniform_fused(&self, batch: &RayBatch, n: usize, stats: &mut RenderStats) -> Image {
        let (pixels, shaded) = self.shade_batch_fused(batch, |j| {
            batch.ranges[j].map(|(t0, t1)| Ray::uniform_depths(t0, t1, n))
        });
        stats.merge(&shaded);
        batch.into_image(&pixels)
    }

    /// IBRNet-style hierarchical sampling: `n_coarse` uniform samples
    /// with the full model, importance-resample `n_fine` more, then
    /// composite the union (all evaluated points are counted).
    fn render_hierarchical(
        &self,
        batch: &RayBatch,
        n_coarse: usize,
        n_fine: usize,
        stats: &mut RenderStats,
    ) -> Image {
        let (pixels, shaded) = self.shade_batch(batch.len(), |j, local| {
            let Some((t0, t1)) = batch.ranges[j] else {
                return self.background;
            };
            let ray = &batch.rays[j];
            let coarse_depths = Ray::uniform_depths(t0, t1, n_coarse);
            let (coarse_densities, coarse_colors) = self.eval_points(ray, &coarse_depths, local);
            // Hitting probabilities from the coarse pass drive the
            // importance resampling.
            let deltas = Ray::interval_widths(&coarse_depths, t1);
            let comp = composite(&coarse_densities, &coarse_colors, &deltas, self.background);
            let edges = sampling::uniform_edges(t0, t1, n_coarse);
            let mut rng = self.ray_rng(j);
            let fine_depths = sampling::importance_sample(&edges, &comp.weights, n_fine, &mut rng);
            let (fine_densities, fine_colors) = self.eval_points(ray, &fine_depths, local);

            // Merge-sort the union by depth.
            let mut merged: Vec<(f32, f32, Vec3)> = coarse_depths
                .iter()
                .zip(&coarse_densities)
                .zip(&coarse_colors)
                .map(|((&t, &d), &c)| (t, d, c))
                .chain(
                    fine_depths
                        .iter()
                        .zip(&fine_densities)
                        .zip(&fine_colors)
                        .map(|((&t, &d), &c)| (t, d, c)),
                )
                .collect();
            merged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let depths: Vec<f32> = merged.iter().map(|m| m.0).collect();
            let densities: Vec<f32> = merged.iter().map(|m| m.1).collect();
            let colors: Vec<Vec3> = merged.iter().map(|m| m.2).collect();
            self.composite_ray(&depths, &densities, &colors, t1)
        });
        stats.merge(&shaded);
        batch.into_image(&pixels)
    }

    /// [`Renderer::render_hierarchical`] on the fused chunk schedule:
    /// two fused forwards per chunk (coarse then fine) instead of two
    /// GEMM chains per ray.
    fn render_hierarchical_fused(
        &self,
        batch: &RayBatch,
        n_coarse: usize,
        n_fine: usize,
        stats: &mut RenderStats,
    ) -> Image {
        let chunks = par_chunk_ranges(batch.len(), self.threads, |start, end| {
            let mut local = RenderStats::default();
            // One scratch per worker, reused by the coarse and fine
            // fused passes.
            let mut scratch = ForwardScratch::default();
            // Coarse phase: aggregate the chunk, one fused forward.
            let mut coarse_depths_per: Vec<Vec<f32>> = Vec::with_capacity(end - start);
            let mut coarse_aggs_per: Vec<Vec<PointAggregate>> = Vec::with_capacity(end - start);
            for j in start..end {
                match batch.ranges[j] {
                    Some((t0, t1)) => {
                        let depths = Ray::uniform_depths(t0, t1, n_coarse);
                        let aggs = self.aggregate_ray(&batch.rays[j], &depths);
                        self.account_full_eval(&aggs, &mut local);
                        coarse_depths_per.push(depths);
                        coarse_aggs_per.push(aggs);
                    }
                    None => {
                        coarse_depths_per.push(Vec::new());
                        coarse_aggs_per.push(Vec::new());
                    }
                }
            }
            let coarse_refs: Vec<&[PointAggregate]> =
                coarse_aggs_per.iter().map(|a| a.as_slice()).collect();
            let coarse_outs = self.model.forward_rays_scratch(&coarse_refs, &mut scratch);

            // Importance resampling per ray, then the fine fused pass.
            let mut fine_depths_per: Vec<Vec<f32>> = Vec::with_capacity(end - start);
            let mut fine_aggs_per: Vec<Vec<PointAggregate>> = Vec::with_capacity(end - start);
            for j in start..end {
                let idx = j - start;
                let Some((t0, t1)) = batch.ranges[j] else {
                    fine_depths_per.push(Vec::new());
                    fine_aggs_per.push(Vec::new());
                    continue;
                };
                let deltas = Ray::interval_widths(&coarse_depths_per[idx], t1);
                let comp = composite(
                    &coarse_outs[idx].densities,
                    &coarse_outs[idx].colors,
                    &deltas,
                    self.background,
                );
                let edges = sampling::uniform_edges(t0, t1, n_coarse);
                let mut rng = self.ray_rng(j);
                let fine_depths =
                    sampling::importance_sample(&edges, &comp.weights, n_fine, &mut rng);
                let aggs = self.aggregate_ray(&batch.rays[j], &fine_depths);
                self.account_full_eval(&aggs, &mut local);
                fine_depths_per.push(fine_depths);
                fine_aggs_per.push(aggs);
            }
            let fine_refs: Vec<&[PointAggregate]> =
                fine_aggs_per.iter().map(|a| a.as_slice()).collect();
            let fine_outs = self.model.forward_rays_scratch(&fine_refs, &mut scratch);

            // Merge-sort the union by depth and composite, per ray.
            let mut cscratch = CompositeScratch::default();
            let colors: Vec<Vec3> = (start..end)
                .map(|j| {
                    let idx = j - start;
                    let Some((_, t1)) = batch.ranges[j] else {
                        return self.background;
                    };
                    let mut merged: Vec<(f32, f32, Vec3)> = coarse_depths_per[idx]
                        .iter()
                        .zip(&coarse_outs[idx].densities)
                        .zip(&coarse_outs[idx].colors)
                        .map(|((&t, &d), &c)| (t, d, c))
                        .chain(
                            fine_depths_per[idx]
                                .iter()
                                .zip(&fine_outs[idx].densities)
                                .zip(&fine_outs[idx].colors)
                                .map(|((&t, &d), &c)| (t, d, c)),
                        )
                        .collect();
                    merged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                    let depths: Vec<f32> = merged.iter().map(|m| m.0).collect();
                    let densities: Vec<f32> = merged.iter().map(|m| m.1).collect();
                    let colors: Vec<Vec3> = merged.iter().map(|m| m.2).collect();
                    self.composite_ray_scratch(&depths, &densities, &colors, t1, &mut cscratch)
                })
                .collect();
            (colors, local)
        });
        let mut pixels = Vec::with_capacity(batch.len());
        for (colors, local) in chunks {
            pixels.extend(colors);
            stats.merge(&local);
        }
        batch.into_image(&pixels)
    }

    /// The proposed coarse-then-focus pipeline (Sec. 3.2).
    ///
    /// Step ① (coarse probing) and Step ③ (focused shading) are both
    /// batch-parallel; Step ② (the cross-ray budget allocation) is a
    /// sequential barrier between them, exactly like the workload
    /// scheduler sitting between the accelerator's two stages. With
    /// `fused` set, Step ① runs one
    /// [`GenNerfModel::coarse_densities_batch`] per chunk and Step ③
    /// shades on the fused chunk schedule.
    #[allow(clippy::too_many_arguments)] // internal dispatch target
    fn render_ctf(
        &self,
        batch: &RayBatch,
        n_coarse: usize,
        n_focused: usize,
        tau: f32,
        s_coarse: usize,
        fused: bool,
        stats: &mut RenderStats,
    ) -> Image {
        let n_rays = batch.len();
        let coarse_sources = &self.sources[..s_coarse.min(self.sources.len())];
        let dc = self.model.config.coarse_channels;

        // Step ①: lightweight coarse sampling for every ray. With the
        // fused schedule, all of a chunk's rays go through one coarse
        // GEMM chain; the accounting and outputs are identical either
        // way.
        let coarse_chunks = par_chunk_ranges(n_rays, self.threads, |start, end| {
            let mut local = RenderStats::default();
            let mut depths_per: Vec<Vec<f32>> = Vec::with_capacity(end - start);
            let mut aggs_per: Vec<Vec<PointAggregate>> = Vec::with_capacity(end - start);
            for j in start..end {
                let Some((t0, t1)) = batch.ranges[j] else {
                    depths_per.push(Vec::new());
                    aggs_per.push(Vec::new());
                    continue;
                };
                let ray = &batch.rays[j];
                let depths = Ray::uniform_depths(t0, t1, n_coarse);
                let aggs: Vec<PointAggregate> = depths
                    .iter()
                    .map(|&t| aggregate_point(ray.at(t), ray.direction, coarse_sources, dc))
                    .collect();
                for a in &aggs {
                    local.feature_fetches += 4 * a.n_valid as u64;
                    local
                        .flops
                        .add("acquire", a.n_valid as u64 * flops::bilinear_fetch(1, dc));
                }
                local.coarse_points += aggs.len() as u64;
                local.flops.add(
                    "mlp",
                    aggs.len() as u64 * 2 * self.model.config.coarse_mlp_macs_per_point(),
                );
                depths_per.push(depths);
                aggs_per.push(aggs);
            }
            let densities_per: Vec<Vec<f32>> = if fused {
                let refs: Vec<&[PointAggregate]> = aggs_per.iter().map(|a| a.as_slice()).collect();
                self.model.coarse_densities_batch(&refs)
            } else {
                aggs_per
                    .iter()
                    .map(|aggs| self.model.coarse_densities(aggs))
                    .collect()
            };
            let per_ray: Vec<(Vec<f32>, usize)> = (start..end)
                .map(|j| {
                    let idx = j - start;
                    let Some((_, t1)) = batch.ranges[j] else {
                        return (Vec::new(), 0);
                    };
                    let densities = &densities_per[idx];
                    let deltas = Ray::interval_widths(&depths_per[idx], t1);
                    let dummy_colors = vec![Vec3::ZERO; densities.len()];
                    let comp = composite(densities, &dummy_colors, &deltas, Vec3::ZERO);
                    local
                        .flops
                        .add("others", flops::volume_render(densities.len()));
                    let critical = sampling::critical_count(&comp.weights, tau);
                    (comp.weights, critical)
                })
                .collect();
            (per_ray, local)
        });
        let mut ray_weights: Vec<Vec<f32>> = Vec::with_capacity(n_rays);
        let mut criticals: Vec<usize> = Vec::with_capacity(n_rays);
        for (per_ray, local) in coarse_chunks {
            for (weights, critical) in per_ray {
                ray_weights.push(weights);
                criticals.push(critical);
            }
            stats.merge(&local);
        }

        // Step ②: cross-ray allocation P(j) ∝ N^cr_j.
        let budget = n_focused * n_rays;
        let n_cap = self.model.config.n_max;
        let counts = sampling::allocate_focused(&criticals, budget, n_cap);

        // Step ③: sparse focused sampling + full pipeline.
        let (pixels, shaded) = if fused {
            self.shade_batch_fused(batch, |j| {
                let (t0, t1) = batch.ranges[j]?;
                if counts[j] == 0 {
                    // Nothing critical along the ray: empty/occluded
                    // region, background shows through.
                    return None;
                }
                let edges = sampling::uniform_edges(t0, t1, n_coarse);
                let mut rng = self.ray_rng(j);
                Some(sampling::importance_sample(
                    &edges,
                    &ray_weights[j],
                    counts[j],
                    &mut rng,
                ))
            })
        } else {
            self.shade_batch(n_rays, |j, local| {
                let Some((t0, t1)) = batch.ranges[j] else {
                    return self.background;
                };
                if counts[j] == 0 {
                    return self.background;
                }
                let edges = sampling::uniform_edges(t0, t1, n_coarse);
                let mut rng = self.ray_rng(j);
                let depths =
                    sampling::importance_sample(&edges, &ray_weights[j], counts[j], &mut rng);
                let (densities, colors) = self.eval_points(&batch.rays[j], &depths, local);
                self.composite_ray(&depths, &densities, &colors, t1)
            })
        };
        stats.merge(&shaded);
        batch.into_image(&pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::prepare_sources;
    use gen_nerf_scene::datasets::{Dataset, DatasetKind};
    use gen_nerf_scene::metrics::psnr;

    fn setup() -> (Dataset, Vec<SourceViewData>, GenNerfModel) {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 4, 1, 24, 5);
        let sources = prepare_sources(&ds.source_views);
        let model = GenNerfModel::new(ModelConfig::fast());
        (ds, sources, model)
    }

    fn render(
        ds: &Dataset,
        sources: &[SourceViewData],
        model: &GenNerfModel,
        strategy: SamplingStrategy,
    ) -> (Image, RenderStats) {
        let bounds = ds.scene.bounds;
        let bg = ds.scene.background;
        let r = Renderer::new(model, sources, strategy, bounds, bg);
        r.render(&ds.eval_views[0].camera)
    }

    #[test]
    fn uniform_render_produces_finite_image() {
        let (ds, sources, model) = setup();
        let (img, stats) = render(&ds, &sources, &model, SamplingStrategy::Uniform { n: 8 });
        assert!(img.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(stats.rays, (img.width() * img.height()) as u64);
        assert!(stats.points > 0);
        assert!(stats.flops.total() > 0);
    }

    #[test]
    fn hierarchical_counts_both_passes() {
        let (ds, sources, model) = setup();
        let (_, stats) = render(
            &ds,
            &sources,
            &model,
            SamplingStrategy::Hierarchical {
                n_coarse: 4,
                n_fine: 4,
            },
        );
        // Coarse + fine points both evaluated by the full model.
        let expected_min = stats.rays * 6; // misses may sample fewer
        assert!(
            stats.points >= expected_min,
            "points = {}, rays = {}",
            stats.points,
            stats.rays
        );
    }

    #[test]
    fn ctf_renders_and_is_sparse() {
        let (ds, sources, model) = setup();
        let (img, stats) = render(
            &ds,
            &sources,
            &model,
            SamplingStrategy::coarse_then_focus(8, 8),
        );
        assert!(img.as_slice().iter().all(|v| v.is_finite()));
        // Focused points stay within the budget (plus the min-1 slack).
        assert!(
            stats.points <= stats.rays * 8 + stats.rays,
            "points = {} rays = {}",
            stats.points,
            stats.rays
        );
        // Coarse pass points are accounted separately.
        assert!(stats.coarse_points > 0);
        // The coarse pass is cheap: its FLOPs bucket share stays small.
        assert!(stats.flops.get("mlp") > 0);
    }

    #[test]
    fn ctf_allocation_is_nonuniform() {
        // The focused budget is *redistributed*, not uniformly spread:
        // rays whose coarse pass finds nothing critical get zero
        // focused samples and render as exact background.
        let (ds, sources, model) = setup();
        let (img, stats) = render(
            &ds,
            &sources,
            &model,
            SamplingStrategy::coarse_then_focus(8, 8),
        );
        // Budget respected (± the minimum-one slack).
        assert!(stats.points <= stats.rays * 8 + stats.rays);
        // With an untrained coarse head the exact pixel set varies, but
        // the image must be valid either way.
        let bg = ds.scene.background;
        let exact_bg = (0..img.height())
            .flat_map(|y| (0..img.width()).map(move |x| (x, y)))
            .filter(|&(x, y)| (img.get(x, y) - bg).length() < 1e-6)
            .count();
        // Report-style sanity: some pixels may be exact background
        // (zero-allocation rays); the count is bounded by the frame.
        assert!(exact_bg <= img.pixel_count());
    }

    #[test]
    fn stats_mflops_positive_and_bucketized() {
        let (ds, sources, model) = setup();
        let (_, stats) = render(&ds, &sources, &model, SamplingStrategy::Uniform { n: 8 });
        assert!(stats.mflops_per_pixel() > 0.0);
        for bucket in ["acquire", "mlp", "ray_module", "others"] {
            assert!(stats.flops.get(bucket) > 0, "missing bucket {bucket}");
        }
    }

    #[test]
    fn rays_missing_bounds_get_background() {
        let (ds, sources, model) = setup();
        let (img, _) = render(&ds, &sources, &model, SamplingStrategy::Uniform { n: 4 });
        // Corner pixels look past the object; with an untrained model
        // they may not match gt, but rays that miss the bounds entirely
        // must be exactly background.
        let corner = img.get(0, 0);
        let bg = ds.scene.background;
        // The corner ray may still hit the bounds; just check validity.
        assert!(corner.x >= 0.0 && corner.x <= 1.0);
        let _ = bg;
    }

    #[test]
    fn trained_model_renders_better_than_untrained() {
        use crate::trainer::{TrainConfig, Trainer};
        let (ds, sources, mut model) = setup();
        let strategy = SamplingStrategy::Uniform { n: 12 };
        let (img_untrained, _) = render(&ds, &sources, &model, strategy);
        let mut trainer = Trainer::new(TrainConfig::fast());
        trainer.pretrain(&mut model, &[&ds]);
        let (img_trained, _) = render(&ds, &sources, &model, strategy);
        let gt = &ds.eval_views[0].image;
        let p_untrained = psnr(gt, &img_untrained);
        let p_trained = psnr(gt, &img_trained);
        assert!(
            p_trained > p_untrained,
            "training did not help: {p_untrained} -> {p_trained}"
        );
    }

    #[test]
    fn ray_batch_matches_pixel_grid() {
        let (ds, _, _) = setup();
        let cam = &ds.eval_views[0].camera;
        let batch = RayBatch::from_camera(cam, &ds.scene.bounds);
        assert_eq!(
            batch.len(),
            (cam.intrinsics.width * cam.intrinsics.height) as usize
        );
        // Row-major indexing: ray j corresponds to pixel (j % w, j / w).
        let j = (batch.width + 1) as usize; // pixel (1, 1)
        let expect = cam.pixel_center_ray(1, 1);
        assert_eq!(batch.rays[j].direction, expect.direction);
    }

    #[test]
    fn worker_count_does_not_change_output() {
        // The determinism contract of the batch engine, on every
        // strategy (the cross-crate regression test covers the trained
        // path at larger scale).
        let (ds, sources, model) = setup();
        for strategy in [
            SamplingStrategy::Uniform { n: 6 },
            SamplingStrategy::Hierarchical {
                n_coarse: 4,
                n_fine: 4,
            },
            SamplingStrategy::coarse_then_focus(6, 6),
        ] {
            let run = |threads: usize| {
                let r = Renderer::new(
                    &model,
                    &sources,
                    strategy,
                    ds.scene.bounds,
                    ds.scene.background,
                )
                .with_threads(threads);
                r.render(&ds.eval_views[0].camera)
            };
            let (img1, stats1) = run(1);
            let (img4, stats4) = run(4);
            assert_eq!(img1.as_slice(), img4.as_slice(), "{strategy:?}");
            assert_eq!(stats1.flops.total(), stats4.flops.total(), "{strategy:?}");
            assert_eq!(stats1.points, stats4.points, "{strategy:?}");
            assert_eq!(
                stats1.feature_fetches, stats4.feature_fetches,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn fused_schedule_matches_per_ray_reference() {
        // The cross-crate regression test pins this at scale on a
        // trained model; this is the fast in-crate guard.
        let (ds, sources, model) = setup();
        for strategy in [
            SamplingStrategy::Uniform { n: 6 },
            SamplingStrategy::Hierarchical {
                n_coarse: 4,
                n_fine: 4,
            },
            SamplingStrategy::coarse_then_focus(6, 6),
        ] {
            let run = |fused: bool| {
                let r = Renderer::new(
                    &model,
                    &sources,
                    strategy,
                    ds.scene.bounds,
                    ds.scene.background,
                )
                .with_fused(fused)
                .with_threads(2);
                r.render(&ds.eval_views[0].camera)
            };
            let (img_f, stats_f) = run(true);
            let (img_p, stats_p) = run(false);
            let fb: Vec<u32> = img_f.as_slice().iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = img_p.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, pb, "{strategy:?} fused image diverged");
            assert_eq!(stats_f.points, stats_p.points, "{strategy:?}");
            assert_eq!(stats_f.flops.total(), stats_p.flops.total(), "{strategy:?}");
        }
    }

    #[test]
    fn per_ray_streams_are_decorrelated() {
        // Neighbouring rays must not share a random stream.
        let (ds, sources, model) = setup();
        let r = Renderer::new(
            &model,
            &sources,
            SamplingStrategy::Uniform { n: 4 },
            ds.scene.bounds,
            ds.scene.background,
        );
        let mut a = r.ray_rng(0);
        let mut b = r.ray_rng(1);
        let same = (0..32)
            .filter(|_| (a.uniform(0.0, 1.0) - b.uniform(0.0, 1.0)).abs() < 1e-9)
            .count();
        assert!(same < 4, "streams look identical: {same}/32 draws equal");
    }
}
