//! End-to-end rendering pipeline (Steps 1–5 of Sec. 2.2 with the
//! sampling strategies of Sec. 3.2) plus FLOPs/fetch instrumentation.

use crate::config::SamplingStrategy;
use crate::features::{aggregate_point, PointAggregate, SourceViewData};
use crate::model::GenNerfModel;
use crate::sampling;
use gen_nerf_geometry::{Aabb, Camera, Ray, Vec3};
use gen_nerf_nn::flops::{self, FlopsCounter};
use gen_nerf_nn::init::Rng;
use gen_nerf_scene::renderer::composite;
use gen_nerf_scene::Image;
use serde::{Deserialize, Serialize};

/// Instrumentation collected while rendering one image.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RenderStats {
    /// FLOPs by bucket: `acquire`, `mlp`, `ray_module`, `others`.
    pub flops: FlopsCounter,
    /// Camera rays traced.
    pub rays: u64,
    /// Points evaluated by the full model.
    pub points: u64,
    /// Points evaluated by the coarse pass.
    pub coarse_points: u64,
    /// Feature-map texel fetches (4 bilinear taps × valid views ×
    /// points).
    pub feature_fetches: u64,
}

impl RenderStats {
    /// Total MFLOPs per rendered pixel (the Tab. 2/3 efficiency
    /// metric).
    pub fn mflops_per_pixel(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.flops.total() as f64 / self.rays as f64 / 1e6
        }
    }

    /// Average full-model points per ray (the Fig. 9 x-axis, measured).
    pub fn avg_points_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            (self.points + self.coarse_points) as f64 / self.rays as f64
        }
    }
}

/// The end-to-end renderer: a model + prepared source views + a
/// sampling strategy, rendering novel views inside known scene bounds.
pub struct Renderer<'a> {
    model: &'a mut GenNerfModel,
    sources: &'a [SourceViewData],
    strategy: SamplingStrategy,
    bounds: Aabb,
    background: Vec3,
    rng: Rng,
}

impl<'a> Renderer<'a> {
    /// Creates a renderer.
    ///
    /// `bounds` clip each camera ray to `[t_near, t_far]`; `background`
    /// fills rays that miss or terminate without saturating.
    pub fn new(
        model: &'a mut GenNerfModel,
        sources: &'a [SourceViewData],
        strategy: SamplingStrategy,
        bounds: Aabb,
        background: Vec3,
    ) -> Self {
        let seed = model.config.seed ^ 0x5eed_5a3e;
        Self {
            model,
            sources,
            strategy,
            bounds,
            background,
            rng: Rng::seed_from(seed),
        }
    }

    /// Renders a full image from `camera`.
    pub fn render(&mut self, camera: &Camera) -> (Image, RenderStats) {
        let mut stats = RenderStats::default();
        let (w, h) = (camera.intrinsics.width, camera.intrinsics.height);
        stats.rays = w as u64 * h as u64;
        let image = match self.strategy {
            SamplingStrategy::Uniform { n } => self.render_uniform(camera, n, &mut stats),
            SamplingStrategy::Hierarchical { n_coarse, n_fine } => {
                self.render_hierarchical(camera, n_coarse, n_fine, &mut stats)
            }
            SamplingStrategy::CoarseThenFocus {
                n_coarse,
                n_focused,
                tau,
                s_coarse,
            } => self.render_ctf(camera, n_coarse, n_focused, tau, s_coarse, &mut stats),
        };
        (image, stats)
    }

    fn d_channels(&self) -> usize {
        self.model.config.d_features
    }

    /// Aggregates + full-model forward + accounting for a ray's points.
    fn eval_points(
        &mut self,
        ray: &Ray,
        depths: &[f32],
        stats: &mut RenderStats,
    ) -> (Vec<f32>, Vec<Vec3>) {
        let d = self.d_channels();
        let aggs: Vec<PointAggregate> = depths
            .iter()
            .map(|&t| aggregate_point(ray.at(t), ray.direction, self.sources, d))
            .collect();
        let n = aggs.len();
        for a in &aggs {
            stats.feature_fetches += 4 * a.n_valid as u64;
            stats
                .flops
                .add("acquire", a.n_valid as u64 * flops::bilinear_fetch(1, d));
            // Blend head runs per valid view.
            stats
                .flops
                .add("mlp", a.n_valid as u64 * 2 * (2 * 8 + 8 * 8 + 8) as u64);
        }
        stats.points += n as u64;
        stats
            .flops
            .add("mlp", n as u64 * 2 * self.model.config.mlp_macs_per_point());
        stats
            .flops
            .add("ray_module", 2 * self.model.config.ray_module_macs(n));
        stats.flops.add("others", flops::volume_render(n));
        let out = self.model.forward_ray(&aggs);
        (out.densities, out.colors)
    }

    fn composite_ray(
        &self,
        depths: &[f32],
        densities: &[f32],
        colors: &[Vec3],
        t_far: f32,
    ) -> Vec3 {
        let deltas = Ray::interval_widths(depths, t_far);
        composite(densities, colors, &deltas, self.background).color
    }

    fn render_uniform(&mut self, camera: &Camera, n: usize, stats: &mut RenderStats) -> Image {
        let bounds = self.bounds;
        Image::from_fn(camera.intrinsics.width, camera.intrinsics.height, |x, y| {
            let ray = camera.pixel_center_ray(x, y);
            let Some((t0, t1)) = bounds.intersect_ray(&ray) else {
                return self.background;
            };
            let depths = Ray::uniform_depths(t0, t1, n);
            let (densities, colors) = self.eval_points(&ray, &depths, stats);
            self.composite_ray(&depths, &densities, &colors, t1)
        })
    }

    /// IBRNet-style hierarchical sampling: `n_coarse` uniform samples
    /// with the full model, importance-resample `n_fine` more, then
    /// composite the union (all evaluated points are counted).
    fn render_hierarchical(
        &mut self,
        camera: &Camera,
        n_coarse: usize,
        n_fine: usize,
        stats: &mut RenderStats,
    ) -> Image {
        let bounds = self.bounds;
        Image::from_fn(camera.intrinsics.width, camera.intrinsics.height, |x, y| {
            let ray = camera.pixel_center_ray(x, y);
            let Some((t0, t1)) = bounds.intersect_ray(&ray) else {
                return self.background;
            };
            let coarse_depths = Ray::uniform_depths(t0, t1, n_coarse);
            let (coarse_densities, coarse_colors) =
                self.eval_points(&ray, &coarse_depths, stats);
            // Hitting probabilities from the coarse pass drive the
            // importance resampling.
            let deltas = Ray::interval_widths(&coarse_depths, t1);
            let comp = composite(&coarse_densities, &coarse_colors, &deltas, self.background);
            let edges = sampling::uniform_edges(t0, t1, n_coarse);
            let fine_depths =
                sampling::importance_sample(&edges, &comp.weights, n_fine, &mut self.rng);
            let (fine_densities, fine_colors) = self.eval_points(&ray, &fine_depths, stats);

            // Merge-sort the union by depth.
            let mut merged: Vec<(f32, f32, Vec3)> = coarse_depths
                .iter()
                .zip(&coarse_densities)
                .zip(&coarse_colors)
                .map(|((&t, &d), &c)| (t, d, c))
                .chain(
                    fine_depths
                        .iter()
                        .zip(&fine_densities)
                        .zip(&fine_colors)
                        .map(|((&t, &d), &c)| (t, d, c)),
                )
                .collect();
            merged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let depths: Vec<f32> = merged.iter().map(|m| m.0).collect();
            let densities: Vec<f32> = merged.iter().map(|m| m.1).collect();
            let colors: Vec<Vec3> = merged.iter().map(|m| m.2).collect();
            self.composite_ray(&depths, &densities, &colors, t1)
        })
    }

    /// The proposed coarse-then-focus pipeline (Sec. 3.2).
    fn render_ctf(
        &mut self,
        camera: &Camera,
        n_coarse: usize,
        n_focused: usize,
        tau: f32,
        s_coarse: usize,
        stats: &mut RenderStats,
    ) -> Image {
        let (w, h) = (camera.intrinsics.width, camera.intrinsics.height);
        let n_rays = (w * h) as usize;
        let coarse_sources = &self.sources[..s_coarse.min(self.sources.len())];
        let dc = self.model.config.coarse_channels;

        // Step ①: lightweight coarse sampling for every ray.
        let mut ray_ranges: Vec<Option<(f32, f32)>> = Vec::with_capacity(n_rays);
        let mut ray_weights: Vec<Vec<f32>> = Vec::with_capacity(n_rays);
        let mut criticals: Vec<usize> = Vec::with_capacity(n_rays);
        for y in 0..h {
            for x in 0..w {
                let ray = camera.pixel_center_ray(x, y);
                let Some((t0, t1)) = self.bounds.intersect_ray(&ray) else {
                    ray_ranges.push(None);
                    ray_weights.push(Vec::new());
                    criticals.push(0);
                    continue;
                };
                let depths = Ray::uniform_depths(t0, t1, n_coarse);
                let aggs: Vec<PointAggregate> = depths
                    .iter()
                    .map(|&t| aggregate_point(ray.at(t), ray.direction, coarse_sources, dc))
                    .collect();
                for a in &aggs {
                    stats.feature_fetches += 4 * a.n_valid as u64;
                    stats
                        .flops
                        .add("acquire", a.n_valid as u64 * flops::bilinear_fetch(1, dc));
                }
                stats.coarse_points += aggs.len() as u64;
                stats.flops.add(
                    "mlp",
                    aggs.len() as u64 * 2 * self.model.config.coarse_mlp_macs_per_point(),
                );
                let densities = self.model.coarse_densities(&aggs);
                let deltas = Ray::interval_widths(&depths, t1);
                let dummy_colors = vec![Vec3::ZERO; densities.len()];
                let comp = composite(&densities, &dummy_colors, &deltas, Vec3::ZERO);
                stats.flops.add("others", flops::volume_render(densities.len()));
                criticals.push(sampling::critical_count(&comp.weights, tau));
                ray_weights.push(comp.weights);
                ray_ranges.push(Some((t0, t1)));
            }
        }

        // Step ②: cross-ray allocation P(j) ∝ N^cr_j.
        let budget = n_focused * n_rays;
        let n_cap = self.model.config.n_max;
        let counts = sampling::allocate_focused(&criticals, budget, n_cap);

        // Step ③: sparse focused sampling + full pipeline.
        let mut image = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let j = (y * w + x) as usize;
                let Some((t0, t1)) = ray_ranges[j] else {
                    image.set(x, y, self.background);
                    continue;
                };
                if counts[j] == 0 {
                    // Nothing critical along the ray: empty/occluded
                    // region, background shows through.
                    image.set(x, y, self.background);
                    continue;
                }
                let ray = camera.pixel_center_ray(x, y);
                let edges = sampling::uniform_edges(t0, t1, n_coarse);
                let depths = sampling::importance_sample(
                    &edges,
                    &ray_weights[j],
                    counts[j],
                    &mut self.rng,
                );
                let (densities, colors) = self.eval_points(&ray, &depths, stats);
                image.set(x, y, self.composite_ray(&depths, &densities, &colors, t1));
            }
        }
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::prepare_sources;
    use gen_nerf_scene::datasets::{Dataset, DatasetKind};
    use gen_nerf_scene::metrics::psnr;

    fn setup() -> (Dataset, Vec<SourceViewData>, GenNerfModel) {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 4, 1, 24, 5);
        let sources = prepare_sources(&ds.source_views);
        let model = GenNerfModel::new(ModelConfig::fast());
        (ds, sources, model)
    }

    fn render(
        ds: &Dataset,
        sources: &[SourceViewData],
        model: &mut GenNerfModel,
        strategy: SamplingStrategy,
    ) -> (Image, RenderStats) {
        let bounds = ds.scene.bounds;
        let bg = ds.scene.background;
        let mut r = Renderer::new(model, sources, strategy, bounds, bg);
        r.render(&ds.eval_views[0].camera)
    }

    #[test]
    fn uniform_render_produces_finite_image() {
        let (ds, sources, mut model) = setup();
        let (img, stats) = render(&ds, &sources, &mut model, SamplingStrategy::Uniform { n: 8 });
        assert!(img.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(stats.rays, (img.width() * img.height()) as u64);
        assert!(stats.points > 0);
        assert!(stats.flops.total() > 0);
    }

    #[test]
    fn hierarchical_counts_both_passes() {
        let (ds, sources, mut model) = setup();
        let (_, stats) = render(
            &ds,
            &sources,
            &mut model,
            SamplingStrategy::Hierarchical {
                n_coarse: 4,
                n_fine: 4,
            },
        );
        // Coarse + fine points both evaluated by the full model.
        let expected_min = stats.rays * 6; // misses may sample fewer
        assert!(
            stats.points >= expected_min,
            "points = {}, rays = {}",
            stats.points,
            stats.rays
        );
    }

    #[test]
    fn ctf_renders_and_is_sparse() {
        let (ds, sources, mut model) = setup();
        let (img, stats) = render(
            &ds,
            &sources,
            &mut model,
            SamplingStrategy::coarse_then_focus(8, 8),
        );
        assert!(img.as_slice().iter().all(|v| v.is_finite()));
        // Focused points stay within the budget (plus the min-1 slack).
        assert!(
            stats.points <= stats.rays * 8 + stats.rays,
            "points = {} rays = {}",
            stats.points,
            stats.rays
        );
        // Coarse pass points are accounted separately.
        assert!(stats.coarse_points > 0);
        // The coarse pass is cheap: its FLOPs bucket share stays small.
        assert!(stats.flops.get("mlp") > 0);
    }

    #[test]
    fn ctf_allocation_is_nonuniform() {
        // The focused budget is *redistributed*, not uniformly spread:
        // rays whose coarse pass finds nothing critical get zero
        // focused samples and render as exact background.
        let (ds, sources, mut model) = setup();
        let (img, stats) = render(
            &ds,
            &sources,
            &mut model,
            SamplingStrategy::coarse_then_focus(8, 8),
        );
        // Budget respected (± the minimum-one slack).
        assert!(stats.points <= stats.rays * 8 + stats.rays);
        // With an untrained coarse head the exact pixel set varies, but
        // the image must be valid either way.
        let bg = ds.scene.background;
        let exact_bg = (0..img.height())
            .flat_map(|y| (0..img.width()).map(move |x| (x, y)))
            .filter(|&(x, y)| (img.get(x, y) - bg).length() < 1e-6)
            .count();
        // Report-style sanity: some pixels may be exact background
        // (zero-allocation rays); the count is bounded by the frame.
        assert!(exact_bg <= img.pixel_count());
    }

    #[test]
    fn stats_mflops_positive_and_bucketized() {
        let (ds, sources, mut model) = setup();
        let (_, stats) = render(&ds, &sources, &mut model, SamplingStrategy::Uniform { n: 8 });
        assert!(stats.mflops_per_pixel() > 0.0);
        for bucket in ["acquire", "mlp", "ray_module", "others"] {
            assert!(stats.flops.get(bucket) > 0, "missing bucket {bucket}");
        }
    }

    #[test]
    fn rays_missing_bounds_get_background() {
        let (ds, sources, mut model) = setup();
        let (img, _) = render(&ds, &sources, &mut model, SamplingStrategy::Uniform { n: 4 });
        // Corner pixels look past the object; with an untrained model
        // they may not match gt, but rays that miss the bounds entirely
        // must be exactly background.
        let corner = img.get(0, 0);
        let bg = ds.scene.background;
        // The corner ray may still hit the bounds; just check validity.
        assert!(corner.x >= 0.0 && corner.x <= 1.0);
        let _ = bg;
    }

    #[test]
    fn trained_model_renders_better_than_untrained() {
        use crate::trainer::{TrainConfig, Trainer};
        let (ds, sources, mut model) = setup();
        let strategy = SamplingStrategy::Uniform { n: 12 };
        let (img_untrained, _) = render(&ds, &sources, &mut model, strategy);
        let mut trainer = Trainer::new(TrainConfig::fast());
        trainer.pretrain(&mut model, &[&ds]);
        let (img_trained, _) = render(&ds, &sources, &mut model, strategy);
        let gt = &ds.eval_views[0].image;
        let p_untrained = psnr(gt, &img_untrained);
        let p_trained = psnr(gt, &img_trained);
        assert!(
            p_trained > p_untrained,
            "training did not help: {p_untrained} -> {p_trained}"
        );
    }
}
