//! The frozen multi-scale feature encoder.
//!
//! Stands in for the CNN encoder `E` of Step 0 (Sec. 2.2): it turns
//! each source view into a `H_s × W_s × D` feature map computed *once
//! per scene*. Instead of learned convolution weights we use a fixed
//! filter bank — RGB, two blur scales and luminance gradients — which
//! preserves everything the paper measures about feature maps: their
//! size, their per-point bilinear fetch cost and their cross-view
//! consistency signal (DESIGN.md §2).
//!
//! Channel layout (12 channels):
//!
//! | index | content |
//! |-------|---------|
//! | 0–2   | RGB |
//! | 3–5   | RGB, 1× box-blurred (3×3) |
//! | 6–8   | RGB, 2× box-blurred (≈7×7 support) |
//! | 9     | luminance |
//! | 10    | horizontal luminance gradient |
//! | 11    | vertical luminance gradient |
//!
//! The coarse stage's "channel scale" truncates this list (the first
//! `⌈D·scale⌉` channels), matching the paper's channel-scaled coarse
//! MLPs.

use gen_nerf_geometry::bilinear::BilinearFootprint;
use gen_nerf_geometry::Vec2;
use gen_nerf_scene::Image;
use serde::{Deserialize, Serialize};

/// Number of channels the encoder produces.
pub const ENCODER_CHANNELS: usize = 12;

/// A dense feature map, `height × width × channels`, channel-minor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMap {
    width: u32,
    height: u32,
    channels: usize,
    data: Vec<f32>,
}

impl FeatureMap {
    /// Map width in texels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Map height in texels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Channels per texel.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The feature vector at integer texel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn texel(&self, x: u32, y: u32) -> &[f32] {
        assert!(x < self.width && y < self.height, "texel out of bounds");
        let i = ((y * self.width + x) as usize) * self.channels;
        &self.data[i..i + self.channels]
    }

    /// Bilinearly samples the first `n_channels` channels at continuous
    /// texel coordinates, writing into `out`.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() > self.channels()`.
    pub fn sample_into(&self, uv: Vec2, out: &mut [f32]) {
        assert!(out.len() <= self.channels, "channel overrun");
        let fp =
            BilinearFootprint::at(uv, self.width, self.height).expect("feature map is non-empty");
        out.iter_mut().for_each(|v| *v = 0.0);
        for tap in fp.taps {
            let tex = self.texel(tap.x, tap.y);
            for (o, &t) in out.iter_mut().zip(tex) {
                *o += t * tap.weight;
            }
        }
    }

    /// Bytes per texel at 1 byte/channel (the INT8 layout the
    /// accelerator stores).
    pub fn texel_bytes(&self) -> u64 {
        self.channels as u64
    }
}

/// The frozen encoder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureEncoder;

impl FeatureEncoder {
    /// Creates the encoder.
    pub fn new() -> Self {
        Self
    }

    /// Encodes a source image into a 12-channel feature map (a one-time
    /// per-scene cost, like the paper's CNN encoder).
    pub fn encode(&self, image: &Image) -> FeatureMap {
        let (w, h) = (image.width(), image.height());
        let n = (w * h) as usize;
        let channels = ENCODER_CHANNELS;
        let mut data = vec![0.0f32; n * channels];

        // Pass 1: RGB + luminance.
        let lum = image.luminance();
        for y in 0..h {
            for x in 0..w {
                let i = ((y * w + x) as usize) * channels;
                let rgb = image.get(x, y);
                data[i] = rgb.x;
                data[i + 1] = rgb.y;
                data[i + 2] = rgb.z;
                data[i + 9] = lum[(y * w + x) as usize];
            }
        }

        // Pass 2: blur scales (3×3 box, then 3×3 box of that).
        let blur1 = box_blur_rgb(image);
        for y in 0..h {
            for x in 0..w {
                let i = ((y * w + x) as usize) * channels;
                let b = blur1[(y * w + x) as usize];
                data[i + 3] = b[0];
                data[i + 4] = b[1];
                data[i + 5] = b[2];
            }
        }
        let blur2 = box_blur_buf(&blur1, w, h);
        let blur2 = box_blur_buf(&blur2, w, h);
        for y in 0..h {
            for x in 0..w {
                let i = ((y * w + x) as usize) * channels;
                let b = blur2[(y * w + x) as usize];
                data[i + 6] = b[0];
                data[i + 7] = b[1];
                data[i + 8] = b[2];
            }
        }

        // Pass 3: luminance gradients (central differences, clamped).
        for y in 0..h {
            for x in 0..w {
                let i = ((y * w + x) as usize) * channels;
                let xm = x.saturating_sub(1);
                let xp = (x + 1).min(w - 1);
                let ym = y.saturating_sub(1);
                let yp = (y + 1).min(h - 1);
                data[i + 10] = (lum[(y * w + xp) as usize] - lum[(y * w + xm) as usize]) * 0.5;
                data[i + 11] = (lum[(yp * w + x) as usize] - lum[(ym * w + x) as usize]) * 0.5;
            }
        }

        FeatureMap {
            width: w,
            height: h,
            channels,
            data,
        }
    }
}

fn box_blur_rgb(image: &Image) -> Vec<[f32; 3]> {
    let (w, h) = (image.width(), image.height());
    let buf: Vec<[f32; 3]> = (0..h)
        .flat_map(|y| {
            (0..w).map(move |x| {
                let p = image.get(x, y);
                [p.x, p.y, p.z]
            })
        })
        .collect();
    box_blur_buf(&buf, w, h)
}

fn box_blur_buf(buf: &[[f32; 3]], w: u32, h: u32) -> Vec<[f32; 3]> {
    let mut out = vec![[0.0f32; 3]; buf.len()];
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let mut acc = [0.0f32; 3];
            let mut count = 0.0f32;
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx >= 0 && ny >= 0 && nx < w as i64 && ny < h as i64 {
                        let p = buf[(ny * w as i64 + nx) as usize];
                        acc[0] += p[0];
                        acc[1] += p[1];
                        acc[2] += p[2];
                        count += 1.0;
                    }
                }
            }
            out[(y * w as i64 + x) as usize] = [acc[0] / count, acc[1] / count, acc[2] / count];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_nerf_geometry::Vec3;

    fn test_image() -> Image {
        Image::from_fn(16, 12, |x, y| {
            Vec3::new(x as f32 / 16.0, y as f32 / 12.0, ((x + y) % 4) as f32 / 4.0)
        })
    }

    #[test]
    fn encode_dimensions() {
        let fm = FeatureEncoder::new().encode(&test_image());
        assert_eq!(fm.width(), 16);
        assert_eq!(fm.height(), 12);
        assert_eq!(fm.channels(), ENCODER_CHANNELS);
        assert_eq!(fm.texel_bytes(), 12);
    }

    #[test]
    fn rgb_channels_match_image() {
        let img = test_image();
        let fm = FeatureEncoder::new().encode(&img);
        let t = fm.texel(5, 7);
        let p = img.get(5, 7);
        assert!((t[0] - p.x).abs() < 1e-6);
        assert!((t[1] - p.y).abs() < 1e-6);
        assert!((t[2] - p.z).abs() < 1e-6);
    }

    #[test]
    fn blur_smooths_constant_regions_exactly() {
        let img = Image::from_fn(8, 8, |_, _| Vec3::splat(0.5));
        let fm = FeatureEncoder::new().encode(&img);
        let t = fm.texel(4, 4);
        assert!((t[3] - 0.5).abs() < 1e-6);
        assert!((t[6] - 0.5).abs() < 1e-6);
        // Gradients of a constant image are zero.
        assert!(t[10].abs() < 1e-6);
        assert!(t[11].abs() < 1e-6);
    }

    #[test]
    fn gradient_detects_edges() {
        let img = Image::from_fn(8, 8, |x, _| if x < 4 { Vec3::ZERO } else { Vec3::ONE });
        let fm = FeatureEncoder::new().encode(&img);
        // At the vertical edge the horizontal gradient is large.
        assert!(fm.texel(4, 4)[10].abs() > 0.3);
        assert!(fm.texel(1, 4)[10].abs() < 1e-6);
        // Vertical gradient stays zero.
        assert!(fm.texel(4, 4)[11].abs() < 1e-6);
    }

    #[test]
    fn sample_into_truncates_channels() {
        let fm = FeatureEncoder::new().encode(&test_image());
        let mut out3 = [0.0f32; 3];
        fm.sample_into(Vec2::new(5.5, 7.5), &mut out3);
        let full = fm.texel(5, 7);
        for (o, f) in out3.iter().zip(full) {
            assert!((o - f).abs() < 1e-5);
        }
    }

    #[test]
    fn sample_interpolates() {
        let fm = FeatureEncoder::new().encode(&test_image());
        let mut a = [0.0f32; 1];
        let mut b = [0.0f32; 1];
        let mut mid = [0.0f32; 1];
        fm.sample_into(Vec2::new(3.5, 5.5), &mut a);
        fm.sample_into(Vec2::new(4.5, 5.5), &mut b);
        fm.sample_into(Vec2::new(4.0, 5.5), &mut mid);
        assert!((mid[0] - 0.5 * (a[0] + b[0])).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "channel overrun")]
    fn sample_into_rejects_too_many_channels() {
        let fm = FeatureEncoder::new().encode(&test_image());
        let mut out = [0.0f32; 13];
        fm.sample_into(Vec2::new(1.0, 1.0), &mut out);
    }

    #[test]
    fn deterministic() {
        let img = test_image();
        let a = FeatureEncoder::new().encode(&img);
        let b = FeatureEncoder::new().encode(&img);
        assert_eq!(a, b);
    }
}
