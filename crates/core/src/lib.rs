//! Gen-NeRF: efficient and generalizable neural radiance fields via
//! algorithm–hardware co-design (ISCA '23) — the core algorithm crate.
//!
//! This crate implements the paper's algorithm side end to end and
//! provides the glue to its hardware side (the `gen-nerf-accel`
//! simulator):
//!
//! * [`encoder`] — the frozen multi-scale feature encoder standing in
//!   for the CNN encoder `E` (Step 0 of Sec. 2.2),
//! * [`features`] — per-point scene-feature acquisition: projection
//!   onto source views, bilinear fetch, cross-view aggregation
//!   statistics (Steps 1–2),
//! * [`model`] — the generalizable NeRF model: point MLP `f`, the ray
//!   transformer baseline `T`, the proposed Ray-Mixer, and the
//!   source-color blending head (Steps 3–4),
//! * [`sampling`] — uniform, hierarchical (IBRNet) and the proposed
//!   coarse-then-focus sampling strategies (Sec. 3.2),
//! * [`pipeline`] — the end-to-end renderer with FLOPs/fetch
//!   accounting (Step 5 plus instrumentation),
//! * [`trainer`] — in-process training (pretraining across scenes,
//!   per-scene finetuning) using `gen-nerf-nn`'s Adam,
//! * [`pruning`] — the channel pruning of Tab. 2,
//! * [`eval`] — PSNR / LPIPS-proxy / MFLOPs-per-pixel evaluation,
//! * [`hardware`] — converts a model + sampling configuration into an
//!   `accel::WorkloadSpec` for the cycle-level simulator.
//!
//! # Quickstart
//!
//! ```no_run
//! use gen_nerf::prelude::*;
//!
//! // Tiny dataset + model for illustration (see examples/ for real use).
//! let ds = Dataset::build(DatasetKind::Llff, "fern", 0.05, 4, 1, 48, 7);
//! let mut model = GenNerfModel::new(ModelConfig::fast());
//! let mut trainer = Trainer::new(TrainConfig::fast());
//! trainer.pretrain(&mut model, &[&ds]);
//! let strategy = SamplingStrategy::coarse_then_focus(8, 16);
//! let result = evaluate(&model, &ds, &strategy, None);
//! println!("PSNR {:.2} dB at {:.3} MFLOPs/pixel", result.psnr, result.mflops_per_pixel);
//! ```

pub mod config;
pub mod encoder;
pub mod eval;
pub mod features;
pub mod hardware;
pub mod model;
pub mod occupancy;
pub mod pipeline;
pub mod pruning;
pub mod quantized;
pub mod sampling;
pub mod trainer;

/// Convenient re-exports for applications.
pub mod prelude {
    pub use crate::config::{ModelConfig, RayModuleChoice, SamplingStrategy};
    pub use crate::eval::{evaluate, EvalResult};
    pub use crate::hardware::workload_spec;
    pub use crate::model::GenNerfModel;
    pub use crate::pipeline::{RenderError, RenderStats, Renderer};
    pub use crate::trainer::{TrainConfig, Trainer};
    pub use gen_nerf_scene::{Dataset, DatasetKind};
}
