//! Per-point scene-feature acquisition and cross-view aggregation
//! (Steps 1–2 of Sec. 2.2).
//!
//! For every sampled 3D point the pipeline projects it onto each source
//! view, bilinearly fetches the `D`-channel feature vector, and builds
//! the aggregation statistics the point MLP consumes: per-channel mean
//! and variance across views, the mean view-direction similarity, and
//! the fraction of views that see the point. Cross-view *variance* is
//! the key density signal of IBRNet-style models: projections agree at
//! surfaces and disagree in free space.

use crate::encoder::{FeatureEncoder, FeatureMap};
use gen_nerf_geometry::{Camera, Vec3};
use gen_nerf_scene::{Image, View};
use serde::{Deserialize, Serialize};

/// A source view prepared for rendering: camera, image (for color
/// blending) and its encoded feature map.
#[derive(Debug, Clone)]
pub struct SourceViewData {
    /// Source camera.
    pub camera: Camera,
    /// Source image (colors are blended from these).
    pub image: Image,
    /// Encoded features.
    pub features: FeatureMap,
}

/// Encodes a set of posed views into render-ready sources (the
/// one-time per-scene cost of Step 0).
pub fn prepare_sources(views: &[View]) -> Vec<SourceViewData> {
    let encoder = FeatureEncoder::new();
    views
        .iter()
        .map(|v| SourceViewData {
            camera: v.camera,
            image: v.image.clone(),
            features: encoder.encode(&v.image),
        })
        .collect()
}

/// Aggregated observation of one sampled 3D point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointAggregate {
    /// Point-MLP input: `[mean(D), var(D), mean_dir_sim, valid_frac]`.
    pub stats: Vec<f32>,
    /// Source colors at the projections (zero where invalid).
    pub view_colors: Vec<Vec3>,
    /// Per-view blend-head inputs `[dir_sim, feature_deviation]`.
    pub blend_inputs: Vec<[f32; 2]>,
    /// Which views see the point.
    pub valid: Vec<bool>,
    /// Number of valid views.
    pub n_valid: usize,
}

impl PointAggregate {
    /// Stats width for `d` feature channels.
    pub fn stats_dim(d: usize) -> usize {
        2 * d + 2
    }
}

/// Projects `p` onto every source view and aggregates features.
///
/// `d_channels` selects the leading channels of the feature maps
/// (channel-scaled coarse stage uses fewer). `ray_dir` is the novel
/// ray's unit direction (for direction-similarity weighting).
pub fn aggregate_point(
    p: Vec3,
    ray_dir: Vec3,
    sources: &[SourceViewData],
    d_channels: usize,
) -> PointAggregate {
    let s = sources.len();
    let mut feats: Vec<Option<Vec<f32>>> = Vec::with_capacity(s);
    let mut view_colors = vec![Vec3::ZERO; s];
    let mut dir_sims = vec![0.0f32; s];
    let mut valid = vec![false; s];
    let mut n_valid = 0usize;

    for (i, src) in sources.iter().enumerate() {
        let Some(uv) = src.camera.project(p) else {
            feats.push(None);
            continue;
        };
        if !src.camera.intrinsics.contains(uv) {
            feats.push(None);
            continue;
        }
        let mut f = vec![0.0f32; d_channels.min(src.features.channels())];
        src.features.sample_into(uv, &mut f);
        view_colors[i] = src.image.sample(uv);
        let to_point = (p - src.camera.center())
            .try_normalized()
            .unwrap_or(ray_dir);
        dir_sims[i] = ray_dir.dot(to_point);
        valid[i] = true;
        n_valid += 1;
        feats.push(Some(f));
    }

    let mut stats = vec![0.0f32; PointAggregate::stats_dim(d_channels)];
    let mut blend_inputs = vec![[0.0f32; 2]; s];
    if n_valid > 0 {
        // Mean.
        for f in feats.iter().flatten() {
            for (c, &v) in f.iter().enumerate() {
                stats[c] += v;
            }
        }
        for v in stats.iter_mut().take(d_channels) {
            *v /= n_valid as f32;
        }
        // Variance.
        for f in feats.iter().flatten() {
            for (c, &v) in f.iter().enumerate() {
                let d = v - stats[c];
                stats[d_channels + c] += d * d;
            }
        }
        for v in stats.iter_mut().skip(d_channels).take(d_channels) {
            *v /= n_valid as f32;
        }
        // Mean direction similarity + valid fraction.
        let mean_sim: f32 = dir_sims
            .iter()
            .zip(&valid)
            .filter(|(_, &ok)| ok)
            .map(|(&d, _)| d)
            .sum::<f32>()
            / n_valid as f32;
        stats[2 * d_channels] = mean_sim;
        stats[2 * d_channels + 1] = n_valid as f32 / s as f32;

        // Per-view deviation from the mean feature.
        for (i, f) in feats.iter().enumerate() {
            if let Some(f) = f {
                let dev: f32 = f
                    .iter()
                    .zip(&stats[..d_channels])
                    .map(|(&v, &m)| (v - m) * (v - m))
                    .sum::<f32>()
                    .sqrt()
                    / (d_channels as f32).sqrt();
                blend_inputs[i] = [dir_sims[i], dev];
            }
        }
    }

    PointAggregate {
        stats,
        view_colors,
        blend_inputs,
        valid,
        n_valid,
    }
}

/// Counts the feature-map texel fetches of aggregating one point:
/// 4 bilinear taps per valid view.
pub fn fetches_per_point(agg: &PointAggregate) -> u64 {
    4 * agg.n_valid as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_nerf_scene::datasets::{Dataset, DatasetKind};

    fn tiny_dataset() -> Dataset {
        Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 4, 1, 24, 3)
    }

    #[test]
    fn prepare_sources_encodes_all() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        assert_eq!(sources.len(), 4);
        for s in &sources {
            assert_eq!(s.features.width(), s.image.width());
        }
    }

    #[test]
    fn point_inside_scene_visible_from_sources() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let agg = aggregate_point(
            gen_nerf_geometry::Vec3::ZERO,
            gen_nerf_geometry::Vec3::Z,
            &sources,
            12,
        );
        assert!(agg.n_valid >= 3, "valid = {}", agg.n_valid);
        assert_eq!(agg.stats.len(), 26);
        // Valid fraction recorded.
        assert!(agg.stats[25] > 0.7);
    }

    #[test]
    fn point_far_outside_has_no_valid_views() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let agg = aggregate_point(
            gen_nerf_geometry::Vec3::new(500.0, 0.0, 0.0),
            gen_nerf_geometry::Vec3::X,
            &sources,
            12,
        );
        assert_eq!(agg.n_valid, 0);
        assert!(agg.stats.iter().all(|&v| v == 0.0));
        assert_eq!(fetches_per_point(&agg), 0);
    }

    #[test]
    fn surface_points_have_lower_variance_than_free_space() {
        // The core IBRNet signal: cross-view variance is lower on the
        // surface than in free space near the camera.
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let d = 12;
        // The cube's surface (cube half-extent 0.8).
        let surface = aggregate_point(
            gen_nerf_geometry::Vec3::new(0.0, 0.0, 0.8),
            -gen_nerf_geometry::Vec3::Z,
            &sources,
            d,
        );
        // Free-space probes near the object: their projections fall on
        // different content (object silhouette vs background) across
        // views. Against a *uniform* background a probe can still see
        // agreement, so take the most disagreeing of several probes.
        let var_sum = |a: &PointAggregate| -> f32 { a.stats[d..2 * d].iter().sum() };
        let free_var = [
            gen_nerf_geometry::Vec3::new(0.9, 0.3, 1.1),
            gen_nerf_geometry::Vec3::new(-0.9, 0.5, 1.2),
            gen_nerf_geometry::Vec3::new(0.5, 1.0, -1.2),
            gen_nerf_geometry::Vec3::new(1.1, -0.4, 0.9),
        ]
        .iter()
        .map(|&p| {
            var_sum(&aggregate_point(
                p,
                -gen_nerf_geometry::Vec3::Z,
                &sources,
                d,
            ))
        })
        .fold(0.0f32, f32::max);
        assert!(
            var_sum(&surface) < free_var,
            "surface var {} vs max free var {}",
            var_sum(&surface),
            free_var
        );
    }

    #[test]
    fn coarse_channels_shrink_stats() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let agg = aggregate_point(
            gen_nerf_geometry::Vec3::ZERO,
            gen_nerf_geometry::Vec3::Z,
            &sources,
            3,
        );
        assert_eq!(agg.stats.len(), 8);
    }

    #[test]
    fn fetch_count_is_4_per_valid_view() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let agg = aggregate_point(
            gen_nerf_geometry::Vec3::ZERO,
            gen_nerf_geometry::Vec3::Z,
            &sources,
            12,
        );
        assert_eq!(fetches_per_point(&agg), 4 * agg.n_valid as u64);
    }
}
