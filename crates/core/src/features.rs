//! Per-point scene-feature acquisition and cross-view aggregation
//! (Steps 1–2 of Sec. 2.2).
//!
//! For every sampled 3D point the pipeline projects it onto each source
//! view, bilinearly fetches the `D`-channel feature vector, and builds
//! the aggregation statistics the point MLP consumes: per-channel mean
//! and variance across views, the mean view-direction similarity, and
//! the fraction of views that see the point. Cross-view *variance* is
//! the key density signal of IBRNet-style models: projections agree at
//! surfaces and disagree in free space.
//!
//! # Two layouts, one arithmetic
//!
//! Aggregates exist in two layouts backed by a single per-point fill
//! routine ([`aggregate_point`] and [`AggregateArena`] share it, so
//! they are bitwise-identical by construction):
//!
//! * [`PointAggregate`] — the standalone AoS value (five heap `Vec`s
//!   per point). Kept as the reference/compat type for the per-ray
//!   regression path, training targets in tests, and benches.
//! * [`AggregateArena`] — the chunk-level SoA block the fused render
//!   schedule uses: one flat stats matrix with **one row per point**
//!   (laid out exactly as the point-MLP GEMM operand, so inference
//!   consumes it in place), flat per-(point, view) color/blend/valid
//!   planes, and per-ray offsets. All buffers — including the
//!   projection/fetch scratch — are reused across
//!   [`AggregateArena::reset`] cycles, so steady-state acquisition
//!   performs **zero heap allocations**.
//!
//! The mean/variance accumulation loops run through the active
//! [`gen_nerf_nn::kernels::MicroKernel`] backend. Both ops are exact
//! elementwise chains (no FMA contraction, no reductions), so every
//! backend produces bit-identical aggregates — acquisition, unlike the
//! GEMMs, is backend-independent.

use crate::encoder::{FeatureEncoder, FeatureMap};
use gen_nerf_geometry::{Camera, Ray, Vec3};
use gen_nerf_nn::kernels;
use gen_nerf_nn::Tensor2;
use gen_nerf_scene::{Image, View};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A source view prepared for rendering: camera, image (for color
/// blending) and its encoded feature map.
#[derive(Debug, Clone)]
pub struct SourceViewData {
    /// Source camera.
    pub camera: Camera,
    /// Source image (colors are blended from these).
    pub image: Image,
    /// Encoded features.
    pub features: FeatureMap,
}

/// Encodes a set of posed views into render-ready sources (the
/// one-time per-scene cost of Step 0).
pub fn prepare_sources(views: &[View]) -> Vec<SourceViewData> {
    let encoder = FeatureEncoder::new();
    views
        .iter()
        .map(|v| SourceViewData {
            camera: v.camera,
            image: v.image.clone(),
            features: encoder.encode(&v.image),
        })
        .collect()
}

/// Aggregated observation of one sampled 3D point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointAggregate {
    /// Point-MLP input: `[mean(D), var(D), mean_dir_sim, valid_frac]`.
    pub stats: Vec<f32>,
    /// Source colors at the projections (zero where invalid).
    pub view_colors: Vec<Vec3>,
    /// Per-view blend-head inputs `[dir_sim, feature_deviation]`.
    pub blend_inputs: Vec<[f32; 2]>,
    /// Which views see the point.
    pub valid: Vec<bool>,
    /// Number of valid views.
    pub n_valid: usize,
}

impl PointAggregate {
    /// Stats width for `d` feature channels.
    pub fn stats_dim(d: usize) -> usize {
        2 * d + 2
    }
}

/// Validates that every source view's feature map carries at least
/// `d_channels` channels — the satellite fix for the silent shape
/// mismatch: a short map used to zero-pad the trailing mean/variance
/// stats per point; now the mismatch fails loudly, once, at
/// renderer/trainer construction.
///
/// # Panics
///
/// Panics naming the offending source view when a map is too narrow.
pub fn assert_channels(sources: &[SourceViewData], d_channels: usize, context: &str) {
    for (i, src) in sources.iter().enumerate() {
        assert!(
            src.features.channels() >= d_channels,
            "{context}: source view {i} encodes {} feature channels but \
             {d_channels} are requested — trailing aggregation stats \
             would be silently dead",
            src.features.channels(),
        );
    }
}

/// The single per-point aggregation routine both layouts share: exact
/// seed arithmetic (per-view accumulation in view order, one division
/// pass per statistic), written into caller-provided SoA rows.
///
/// `stats`/`view_colors`/`blend_inputs`/`valid` must arrive zeroed;
/// `feats` (`s × d`) and `dir_sims` (`s`) are fetch scratch whose stale
/// contents are never read (writes are gated on `valid`). Returns the
/// number of views that see the point.
#[allow(clippy::too_many_arguments)] // the SoA destination, spelled out
fn fill_point(
    p: Vec3,
    ray_dir: Vec3,
    sources: &[SourceViewData],
    d: usize,
    stats: &mut [f32],
    view_colors: &mut [Vec3],
    blend_inputs: &mut [[f32; 2]],
    valid: &mut [bool],
    feats: &mut [f32],
    dir_sims: &mut [f32],
) -> usize {
    let s = sources.len();
    debug_assert_eq!(stats.len(), PointAggregate::stats_dim(d));
    debug_assert!(feats.len() >= s * d && dir_sims.len() >= s);
    let kern = kernels::active();
    let mut n_valid = 0usize;

    for (i, src) in sources.iter().enumerate() {
        let Some(uv) = src.camera.project(p) else {
            continue;
        };
        if !src.camera.intrinsics.contains(uv) {
            continue;
        }
        src.features.sample_into(uv, &mut feats[i * d..(i + 1) * d]);
        view_colors[i] = src.image.sample(uv);
        let to_point = (p - src.camera.center())
            .try_normalized()
            .unwrap_or(ray_dir);
        dir_sims[i] = ray_dir.dot(to_point);
        valid[i] = true;
        n_valid += 1;
    }
    if n_valid == 0 {
        return 0;
    }

    // Mean then variance, each accumulated per valid view in view
    // order through the kernel backend (exact elementwise ops — every
    // backend agrees bitwise; see `gen_nerf_nn::kernels`).
    {
        let (mean, rest) = stats.split_at_mut(d);
        let var = &mut rest[..d];
        for i in 0..s {
            if valid[i] {
                kern.add_assign(mean, &feats[i * d..(i + 1) * d]);
            }
        }
        for v in mean.iter_mut() {
            *v /= n_valid as f32;
        }
        for i in 0..s {
            if valid[i] {
                kern.sq_diff_add(var, &feats[i * d..(i + 1) * d], mean);
            }
        }
        for v in var.iter_mut() {
            *v /= n_valid as f32;
        }
    }
    // Mean direction similarity + valid fraction.
    let mean_sim: f32 = dir_sims[..s]
        .iter()
        .zip(valid.iter())
        .filter(|(_, &ok)| ok)
        .map(|(&sim, _)| sim)
        .sum::<f32>()
        / n_valid as f32;
    stats[2 * d] = mean_sim;
    stats[2 * d + 1] = n_valid as f32 / s as f32;

    // Per-view deviation from the mean feature (sequential fold — kept
    // scalar so the sum order matches the seed arithmetic exactly).
    for i in 0..s {
        if valid[i] {
            let dev: f32 = feats[i * d..(i + 1) * d]
                .iter()
                .zip(&stats[..d])
                .map(|(&v, &m)| (v - m) * (v - m))
                .sum::<f32>()
                .sqrt()
                / (d as f32).sqrt();
            blend_inputs[i] = [dir_sims[i], dev];
        }
    }
    n_valid
}

/// Projects `p` onto every source view and aggregates features into a
/// standalone [`PointAggregate`].
///
/// `d_channels` selects the leading channels of the feature maps
/// (channel-scaled coarse stage uses fewer) and must not exceed any
/// source's channel count (validated up front by [`assert_channels`];
/// the per-point sample asserts too). `ray_dir` is the novel ray's
/// unit direction (for direction-similarity weighting).
///
/// This is the AoS compat entry point (it allocates the per-point
/// buffers); hot paths fill an [`AggregateArena`] via
/// [`aggregate_points_into`] instead — same arithmetic, shared
/// implementation.
pub fn aggregate_point(
    p: Vec3,
    ray_dir: Vec3,
    sources: &[SourceViewData],
    d_channels: usize,
) -> PointAggregate {
    let s = sources.len();
    let mut stats = vec![0.0f32; PointAggregate::stats_dim(d_channels)];
    let mut view_colors = vec![Vec3::ZERO; s];
    let mut blend_inputs = vec![[0.0f32; 2]; s];
    let mut valid = vec![false; s];
    let mut feats = vec![0.0f32; s * d_channels];
    let mut dir_sims = vec![0.0f32; s];
    let n_valid = fill_point(
        p,
        ray_dir,
        sources,
        d_channels,
        &mut stats,
        &mut view_colors,
        &mut blend_inputs,
        &mut valid,
        &mut feats,
        &mut dir_sims,
    );
    PointAggregate {
        stats,
        view_colors,
        blend_inputs,
        valid,
        n_valid,
    }
}

/// Read access to a run of aggregated points, independent of layout.
///
/// Implemented by `[PointAggregate]` (AoS) and by [`AggregateArena`] /
/// [`ArenaRayView`] (SoA), so the model's training paths accept either
/// without copying between layouts.
pub trait AggregateView {
    /// Points in the run.
    fn n_points(&self) -> usize;
    /// Point `k`'s stats row (`[mean(D), var(D), dir_sim, frac]`).
    fn stats_row(&self, k: usize) -> &[f32];
    /// Number of views that see point `k`.
    fn n_valid(&self, k: usize) -> usize;
    /// Point `k`'s per-view visibility plane.
    fn valid_row(&self, k: usize) -> &[bool];
    /// Point `k`'s per-view source colors (zero where invalid).
    fn view_colors_row(&self, k: usize) -> &[Vec3];
    /// Point `k`'s per-view blend-head inputs.
    fn blend_inputs_row(&self, k: usize) -> &[[f32; 2]];
    /// `true` when the run has no points.
    fn is_empty(&self) -> bool {
        self.n_points() == 0
    }
}

impl AggregateView for [PointAggregate] {
    fn n_points(&self) -> usize {
        self.len()
    }

    fn stats_row(&self, k: usize) -> &[f32] {
        &self[k].stats
    }

    fn n_valid(&self, k: usize) -> usize {
        self[k].n_valid
    }

    fn valid_row(&self, k: usize) -> &[bool] {
        &self[k].valid
    }

    fn view_colors_row(&self, k: usize) -> &[Vec3] {
        &self[k].view_colors
    }

    fn blend_inputs_row(&self, k: usize) -> &[[f32; 2]] {
        &self[k].blend_inputs
    }
}

/// A chunk-level SoA block of aggregated points — the zero-allocation
/// acquisition layout of the fused render schedule.
///
/// One arena per worker is reset per chunk ([`AggregateArena::reset`]
/// reshapes, never frees), filled ray by ray
/// ([`aggregate_points_into`]), and handed to
/// `GenNerfModel::forward_rays_arena`, which uses [`AggregateArena::stats`]
/// **directly** as the point-MLP GEMM input: the stats matrix has one
/// row per point in ray-major order, which is exactly the operand
/// layout the fused GEMM wants, so the AoS→GEMM staging copy of the
/// `PointAggregate` path disappears.
#[derive(Debug, Clone)]
pub struct AggregateArena {
    /// Channels aggregated per view.
    d: usize,
    /// Source views per point (width of the per-view planes).
    n_views: usize,
    /// `n_points × (2d + 2)` stats matrix — the GEMM operand.
    stats: Tensor2,
    /// Per-(point, view) source colors, point-major.
    view_colors: Vec<Vec3>,
    /// Per-(point, view) blend-head inputs, point-major.
    blend_inputs: Vec<[f32; 2]>,
    /// Per-(point, view) visibility plane, point-major.
    valid: Vec<bool>,
    /// Per-point valid-view counts.
    n_valid: Vec<usize>,
    /// Running Σ `n_valid` — the fused blend head's pair count.
    valid_pairs: usize,
    /// `ray_offsets[r]..ray_offsets[r + 1]` is ray `r`'s point range.
    ray_offsets: Vec<usize>,
    /// Projection/fetch scratch: the current point's per-view features.
    feats: Vec<f32>,
    /// Projection scratch: the current point's per-view similarities.
    dir_sims: Vec<f32>,
}

impl Default for AggregateArena {
    /// An empty arena for zero views at zero channels — every field
    /// upholds the `ray_offsets = [0, ...]` sentinel invariant
    /// [`AggregateArena::reset`] establishes, so accessors are safe on
    /// a never-reset arena.
    fn default() -> Self {
        Self {
            d: 0,
            n_views: 0,
            stats: Tensor2::default(),
            view_colors: Vec::new(),
            blend_inputs: Vec::new(),
            valid: Vec::new(),
            n_valid: Vec::new(),
            valid_pairs: 0,
            ray_offsets: vec![0],
            feats: Vec::new(),
            dir_sims: Vec::new(),
        }
    }
}

impl AggregateArena {
    /// Clears the arena for a new chunk aggregated against `n_views`
    /// sources at `d_channels` channels. Buffers are reshaped in
    /// place; once grown, no reset allocates.
    pub fn reset(&mut self, n_views: usize, d_channels: usize) {
        self.d = d_channels;
        self.n_views = n_views;
        self.stats.reset_rows(PointAggregate::stats_dim(d_channels));
        self.view_colors.clear();
        self.blend_inputs.clear();
        self.valid.clear();
        self.n_valid.clear();
        self.valid_pairs = 0;
        self.ray_offsets.clear();
        self.ray_offsets.push(0);
        self.feats.clear();
        self.feats.resize(n_views * d_channels, 0.0);
        self.dir_sims.clear();
        self.dir_sims.resize(n_views, 0.0);
    }

    /// Channels aggregated per view.
    pub fn d_channels(&self) -> usize {
        self.d
    }

    /// Source views per point.
    pub fn n_views(&self) -> usize {
        self.n_views
    }

    /// Sealed rays in the arena.
    pub fn n_rays(&self) -> usize {
        // The leading-0 sentinel is a construction invariant (Default
        // and reset both establish it); saturate anyway so a corrupted
        // arena can never wrap.
        self.ray_offsets.len().saturating_sub(1)
    }

    /// Total points across all rays.
    pub fn total_points(&self) -> usize {
        self.n_valid.len()
    }

    /// Total valid (point, view) pairs — the fused blend-head row
    /// count.
    pub fn valid_pairs(&self) -> usize {
        self.valid_pairs
    }

    /// The point range of ray `r`.
    pub fn ray_range(&self, r: usize) -> Range<usize> {
        self.ray_offsets[r]..self.ray_offsets[r + 1]
    }

    /// The stats matrix (`total_points × (2d + 2)`, ray-major) — fed
    /// to the point MLP in place.
    pub fn stats(&self) -> &Tensor2 {
        &self.stats
    }

    /// A borrowed [`AggregateView`] of ray `r`'s points.
    pub fn ray_view(&self, r: usize) -> ArenaRayView<'_> {
        let range = self.ray_range(r);
        ArenaRayView { arena: self, range }
    }

    /// Seals the current ray (possibly empty — a background ray). Every
    /// point pushed since the previous seal belongs to it.
    pub fn seal_ray(&mut self) {
        self.ray_offsets.push(self.total_points());
    }

    /// Appends one point aggregated from `sources` (shared arithmetic
    /// with [`aggregate_point`]).
    fn push_point(&mut self, p: Vec3, ray_dir: Vec3, sources: &[SourceViewData]) {
        debug_assert_eq!(sources.len(), self.n_views);
        let s = self.n_views;
        let base = self.n_valid.len() * s;
        self.view_colors.resize(base + s, Vec3::ZERO);
        self.blend_inputs.resize(base + s, [0.0f32; 2]);
        self.valid.resize(base + s, false);
        let stats_row = self.stats.push_row_zeroed();
        let n_valid = fill_point(
            p,
            ray_dir,
            sources,
            self.d,
            stats_row,
            &mut self.view_colors[base..],
            &mut self.blend_inputs[base..],
            &mut self.valid[base..],
            &mut self.feats,
            &mut self.dir_sims,
        );
        self.n_valid.push(n_valid);
        self.valid_pairs += n_valid;
    }

    /// Appends one point copied from a standalone [`PointAggregate`] —
    /// the staging path that lets the AoS compat API ride the fused
    /// arena implementation.
    ///
    /// # Panics
    ///
    /// Panics when the aggregate's view count or stats width disagrees
    /// with the arena's.
    pub fn push_aggregate(&mut self, agg: &PointAggregate) {
        assert_eq!(agg.valid.len(), self.n_views, "view count mismatch");
        let width = self.stats.cols();
        assert_eq!(
            agg.stats.len(),
            width,
            "stats width mismatch (aggregate built at a different \
             d_channels than the arena)"
        );
        let s = self.n_views;
        let base = self.n_valid.len() * s;
        self.view_colors.extend_from_slice(&agg.view_colors);
        self.blend_inputs.extend_from_slice(&agg.blend_inputs);
        self.valid.extend_from_slice(&agg.valid);
        debug_assert_eq!(self.valid.len(), base + s);
        self.stats
            .push_row_zeroed()
            .copy_from_slice(&agg.stats[..width]);
        self.n_valid.push(agg.n_valid);
        self.valid_pairs += agg.n_valid;
    }

    /// Exports point `k` as a standalone [`PointAggregate`] (test and
    /// compat use; allocates).
    pub fn export(&self, k: usize) -> PointAggregate {
        let s = self.n_views;
        PointAggregate {
            stats: self.stats.row(k).to_vec(),
            view_colors: self.view_colors[k * s..(k + 1) * s].to_vec(),
            blend_inputs: self.blend_inputs[k * s..(k + 1) * s].to_vec(),
            valid: self.valid[k * s..(k + 1) * s].to_vec(),
            n_valid: self.n_valid[k],
        }
    }

    /// Exports ray `r` as standalone [`PointAggregate`]s.
    pub fn export_ray(&self, r: usize) -> Vec<PointAggregate> {
        self.ray_range(r).map(|k| self.export(k)).collect()
    }
}

impl AggregateView for AggregateArena {
    fn n_points(&self) -> usize {
        self.total_points()
    }

    fn stats_row(&self, k: usize) -> &[f32] {
        self.stats.row(k)
    }

    fn n_valid(&self, k: usize) -> usize {
        self.n_valid[k]
    }

    fn valid_row(&self, k: usize) -> &[bool] {
        &self.valid[k * self.n_views..(k + 1) * self.n_views]
    }

    fn view_colors_row(&self, k: usize) -> &[Vec3] {
        &self.view_colors[k * self.n_views..(k + 1) * self.n_views]
    }

    fn blend_inputs_row(&self, k: usize) -> &[[f32; 2]] {
        &self.blend_inputs[k * self.n_views..(k + 1) * self.n_views]
    }
}

/// A borrowed view of one ray's points inside an [`AggregateArena`].
#[derive(Debug, Clone)]
pub struct ArenaRayView<'a> {
    arena: &'a AggregateArena,
    range: Range<usize>,
}

impl AggregateView for ArenaRayView<'_> {
    fn n_points(&self) -> usize {
        self.range.len()
    }

    fn stats_row(&self, k: usize) -> &[f32] {
        self.arena.stats_row(self.range.start + k)
    }

    fn n_valid(&self, k: usize) -> usize {
        AggregateView::n_valid(self.arena, self.range.start + k)
    }

    fn valid_row(&self, k: usize) -> &[bool] {
        self.arena.valid_row(self.range.start + k)
    }

    fn view_colors_row(&self, k: usize) -> &[Vec3] {
        self.arena.view_colors_row(self.range.start + k)
    }

    fn blend_inputs_row(&self, k: usize) -> &[[f32; 2]] {
        self.arena.blend_inputs_row(self.range.start + k)
    }
}

/// Aggregates a batch of points as **one ray** appended to `arena`:
/// `points[i]` is observed along direction `ray_dirs[i]` against every
/// source view, and the ray is sealed at the end (an empty batch seals
/// an empty ray — a background ray keeps its slot).
///
/// Bitwise-identical to calling [`aggregate_point`] per point (shared
/// fill routine; the arena proptest pins it), with zero steady-state
/// heap allocations.
///
/// # Panics
///
/// Panics when slice lengths disagree, when `arena` was reset for a
/// different view count or channel width, or when a source's feature
/// map has fewer than `d_channels` channels.
pub fn aggregate_points_into(
    points: &[Vec3],
    ray_dirs: &[Vec3],
    sources: &[SourceViewData],
    d_channels: usize,
    arena: &mut AggregateArena,
) {
    assert_eq!(points.len(), ray_dirs.len(), "one direction per point");
    assert_arena_shape(arena, sources, d_channels);
    for (&p, &dir) in points.iter().zip(ray_dirs) {
        arena.push_point(p, dir, sources);
    }
    arena.seal_ray();
}

/// The fill-time shape check shared by both arena entry points.
fn assert_arena_shape(arena: &AggregateArena, sources: &[SourceViewData], d_channels: usize) {
    assert_eq!(
        arena.n_views,
        sources.len(),
        "arena was reset for {} views, got {} sources",
        arena.n_views,
        sources.len()
    );
    assert_eq!(
        arena.d, d_channels,
        "arena was reset for {} channels, got {d_channels}",
        arena.d
    );
}

/// Aggregates one camera ray's depth samples as one sealed arena ray:
/// point `i` is `ray.at(depths[i])`, observed along `ray.direction`.
/// The staging-free sibling of [`aggregate_points_into`] — no
/// point/direction buffers exist at all — shared by the render
/// pipeline's fused schedule and the trainer's step acquisition, so
/// the depths→points staging contract lives in exactly one place.
///
/// # Panics
///
/// As [`aggregate_points_into`].
pub fn aggregate_ray_into(
    ray: &Ray,
    depths: &[f32],
    sources: &[SourceViewData],
    d_channels: usize,
    arena: &mut AggregateArena,
) {
    assert_arena_shape(arena, sources, d_channels);
    for &t in depths {
        arena.push_point(ray.at(t), ray.direction, sources);
    }
    arena.seal_ray();
}

/// Counts the feature-map texel fetches of aggregating one point:
/// 4 bilinear taps per valid view.
pub fn fetches_per_point(agg: &PointAggregate) -> u64 {
    4 * agg.n_valid as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_nerf_scene::datasets::{Dataset, DatasetKind};

    fn tiny_dataset() -> Dataset {
        Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 4, 1, 24, 3)
    }

    #[test]
    fn prepare_sources_encodes_all() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        assert_eq!(sources.len(), 4);
        for s in &sources {
            assert_eq!(s.features.width(), s.image.width());
        }
    }

    #[test]
    fn point_inside_scene_visible_from_sources() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let agg = aggregate_point(
            gen_nerf_geometry::Vec3::ZERO,
            gen_nerf_geometry::Vec3::Z,
            &sources,
            12,
        );
        assert!(agg.n_valid >= 3, "valid = {}", agg.n_valid);
        assert_eq!(agg.stats.len(), 26);
        // Valid fraction recorded.
        assert!(agg.stats[25] > 0.7);
    }

    #[test]
    fn point_far_outside_has_no_valid_views() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let agg = aggregate_point(
            gen_nerf_geometry::Vec3::new(500.0, 0.0, 0.0),
            gen_nerf_geometry::Vec3::X,
            &sources,
            12,
        );
        assert_eq!(agg.n_valid, 0);
        assert!(agg.stats.iter().all(|&v| v == 0.0));
        assert_eq!(fetches_per_point(&agg), 0);
    }

    #[test]
    fn surface_points_have_lower_variance_than_free_space() {
        // The core IBRNet signal: cross-view variance is lower on the
        // surface than in free space near the camera.
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let d = 12;
        // The cube's surface (cube half-extent 0.8).
        let surface = aggregate_point(
            gen_nerf_geometry::Vec3::new(0.0, 0.0, 0.8),
            -gen_nerf_geometry::Vec3::Z,
            &sources,
            d,
        );
        // Free-space probes near the object: their projections fall on
        // different content (object silhouette vs background) across
        // views. Against a *uniform* background a probe can still see
        // agreement, so take the most disagreeing of several probes.
        let var_sum = |a: &PointAggregate| -> f32 { a.stats[d..2 * d].iter().sum() };
        let free_var = [
            gen_nerf_geometry::Vec3::new(0.9, 0.3, 1.1),
            gen_nerf_geometry::Vec3::new(-0.9, 0.5, 1.2),
            gen_nerf_geometry::Vec3::new(0.5, 1.0, -1.2),
            gen_nerf_geometry::Vec3::new(1.1, -0.4, 0.9),
        ]
        .iter()
        .map(|&p| {
            var_sum(&aggregate_point(
                p,
                -gen_nerf_geometry::Vec3::Z,
                &sources,
                d,
            ))
        })
        .fold(0.0f32, f32::max);
        assert!(
            var_sum(&surface) < free_var,
            "surface var {} vs max free var {}",
            var_sum(&surface),
            free_var
        );
    }

    #[test]
    fn coarse_channels_shrink_stats() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let agg = aggregate_point(
            gen_nerf_geometry::Vec3::ZERO,
            gen_nerf_geometry::Vec3::Z,
            &sources,
            3,
        );
        assert_eq!(agg.stats.len(), 8);
    }

    #[test]
    fn fetch_count_is_4_per_valid_view() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let agg = aggregate_point(
            gen_nerf_geometry::Vec3::ZERO,
            gen_nerf_geometry::Vec3::Z,
            &sources,
            12,
        );
        assert_eq!(fetches_per_point(&agg), 4 * agg.n_valid as u64);
    }

    #[test]
    fn arena_matches_aggregate_point_bitwise() {
        use gen_nerf_geometry::Vec3;
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let pts = [
            Vec3::ZERO,
            Vec3::new(0.0, 0.0, 0.8),
            Vec3::new(500.0, 0.0, 0.0), // invisible
            Vec3::new(0.4, -0.3, 0.2),
        ];
        let dirs = [Vec3::Z, -Vec3::Z, Vec3::X, Vec3::new(0.0, 1.0, 0.0)];
        for d in [3usize, 12] {
            let mut arena = AggregateArena::default();
            arena.reset(sources.len(), d);
            aggregate_points_into(&pts, &dirs, &sources, d, &mut arena);
            assert_eq!(arena.n_rays(), 1);
            assert_eq!(arena.total_points(), pts.len());
            assert_eq!(arena.stats().rows(), pts.len());
            assert_eq!(arena.stats().cols(), PointAggregate::stats_dim(d));
            for (k, (&p, &dir)) in pts.iter().zip(&dirs).enumerate() {
                let reference = aggregate_point(p, dir, &sources, d);
                assert_eq!(arena.export(k), reference, "point {k} d {d}");
                let sb: Vec<u32> = arena.stats_row(k).iter().map(|v| v.to_bits()).collect();
                let rb: Vec<u32> = reference.stats.iter().map(|v| v.to_bits()).collect();
                assert_eq!(sb, rb, "point {k} d {d} stats bits");
            }
        }
    }

    #[test]
    fn arena_reuse_and_empty_rays() {
        use gen_nerf_geometry::Vec3;
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let mut arena = AggregateArena::default();
        // First fill at one shape, then reuse at another: stale state
        // must never leak.
        arena.reset(sources.len(), 12);
        aggregate_points_into(&[Vec3::ZERO], &[Vec3::Z], &sources, 12, &mut arena);
        arena.reset(sources.len(), 3);
        arena.seal_ray(); // empty (background) ray keeps its slot
        aggregate_points_into(
            &[Vec3::ZERO, Vec3::new(0.1, 0.1, 0.1)],
            &[Vec3::Z, Vec3::Z],
            &sources,
            3,
            &mut arena,
        );
        assert_eq!(arena.n_rays(), 2);
        assert_eq!(arena.ray_range(0), 0..0);
        assert_eq!(arena.ray_range(1), 0..2);
        assert_eq!(arena.total_points(), 2);
        assert_eq!(
            arena.valid_pairs(),
            (0..2).map(|k| AggregateView::n_valid(&arena, k)).sum()
        );
        let reference = aggregate_point(Vec3::ZERO, Vec3::Z, &sources, 3);
        assert_eq!(arena.ray_view(1).stats_row(0), &reference.stats[..]);
    }

    #[test]
    fn staging_from_aggregates_round_trips() {
        use gen_nerf_geometry::Vec3;
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let aggs: Vec<PointAggregate> = [Vec3::ZERO, Vec3::new(0.2, 0.0, 0.5)]
            .iter()
            .map(|&p| aggregate_point(p, Vec3::Z, &sources, 12))
            .collect();
        let mut arena = AggregateArena::default();
        arena.reset(sources.len(), 12);
        for a in &aggs {
            arena.push_aggregate(a);
        }
        arena.seal_ray();
        assert_eq!(arena.export_ray(0), aggs);
    }

    #[test]
    fn default_arena_is_safe_and_empty() {
        let arena = AggregateArena::default();
        assert_eq!(arena.n_rays(), 0);
        assert_eq!(arena.total_points(), 0);
        assert_eq!(arena.valid_pairs(), 0);
        assert_eq!(arena.stats().rows(), 0);
    }

    #[test]
    #[should_panic(expected = "stats width mismatch")]
    fn staging_rejects_width_mismatch() {
        // An aggregate built at d=12 must not be silently truncated
        // into a coarse-width arena.
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        let agg = aggregate_point(
            gen_nerf_geometry::Vec3::ZERO,
            gen_nerf_geometry::Vec3::Z,
            &sources,
            12,
        );
        let mut arena = AggregateArena::default();
        arena.reset(sources.len(), 3);
        arena.push_aggregate(&agg);
    }

    #[test]
    #[should_panic(expected = "feature channels")]
    fn assert_channels_rejects_narrow_maps() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        assert_channels(&sources, 13, "test renderer");
    }

    #[test]
    fn assert_channels_accepts_full_width() {
        let ds = tiny_dataset();
        let sources = prepare_sources(&ds.source_views);
        assert_channels(&sources, 12, "test renderer");
        assert_channels(&sources, 3, "coarse");
    }
}
