//! Regression suite for zero-allocation SoA feature acquisition.
//!
//! Two contracts pinned here:
//!
//! * **Bitwise layout equivalence** — [`aggregate_points_into`] (the
//!   SoA arena fill the fused render schedule uses) must reproduce the
//!   seed [`aggregate_point`] AoS path bit-for-bit, across view
//!   counts, channel widths and partial visibility. Property-tested;
//!   both layouts share one per-point fill routine, so this pin
//!   catches any future divergence (e.g. a vectorization that changes
//!   accumulation order). The render-level consequence — fused-arena
//!   renders ≡ per-ray reference renders — is pinned at scale by
//!   `tests/fused_forward_regression.rs`, whose fused path now runs
//!   entirely off the arena.
//! * **The allocation budget** — steady-state fused rendering must
//!   stay under an allocations/frame ceiling, and the acquisition
//!   phase itself must allocate **nothing** once the worker arena has
//!   grown. Measured with a thread-local counting allocator (the
//!   render is pinned to one inline thread), so concurrently running
//!   tests cannot blur the count. `perf_report` enforces the same
//!   ceiling in CI on both kernel legs.

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::features::{
    aggregate_point, aggregate_points_into, prepare_sources, AggregateArena, AggregateView,
    PointAggregate, SourceViewData,
};
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::{RenderStats, Renderer};
use gen_nerf_geometry::Vec3;
use gen_nerf_scene::{Dataset, DatasetKind, Image};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::OnceLock;

// ---- thread-local counting allocator --------------------------------

/// Counts heap allocations **per thread**, so the allocation pins below
/// are immune to other tests running concurrently in this binary.
struct ThreadCountingAlloc;

thread_local! {
    static LOCAL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn local_allocations() -> u64 {
    LOCAL_ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for ThreadCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` so allocations during TLS teardown stay safe.
        let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: ThreadCountingAlloc = ThreadCountingAlloc;

// ---- shared scene ----------------------------------------------------

fn sources() -> &'static Vec<SourceViewData> {
    static SOURCES: OnceLock<Vec<SourceViewData>> = OnceLock::new();
    SOURCES.get_or_init(|| {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 4, 1, 24, 3);
        prepare_sources(&ds.source_views)
    })
}

fn stats_bits(stats: &[f32]) -> Vec<u32> {
    stats.iter().map(|v| v.to_bits()).collect()
}

// ---- bitwise layout equivalence --------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The arena fill reproduces the seed per-point aggregation
    /// bit-for-bit: every exported stats row, color/blend plane,
    /// validity plane and valid count equals `aggregate_point`'s, for
    /// any source-view count, channel width and visibility pattern
    /// (`far_every` pushes a sub-lattice of the points outside every
    /// frustum).
    #[test]
    fn prop_arena_fill_matches_seed_aggregate_point_bitwise(
        d in 1usize..13,
        n_views in 1usize..5,
        far_every in 2usize..5,
        raw in proptest::collection::vec(
            (-1.6f32..1.6, -1.6f32..1.6, -2.2f32..2.2),
            1..14
        ),
    ) {
        let all = sources();
        let views = &all[..n_views.min(all.len())];
        let pts: Vec<Vec3> = raw
            .iter()
            .enumerate()
            .map(|(i, &(x, y, z))| {
                let p = Vec3::new(x, y, z);
                // Partial visibility: every `far_every`-th point is
                // pushed far outside the capture rig.
                if i % far_every == 0 { p * 400.0 } else { p }
            })
            .collect();
        let dirs: Vec<Vec3> = raw
            .iter()
            .map(|&(x, y, z)| {
                Vec3::new(y, z, x).try_normalized().unwrap_or(Vec3::Z)
            })
            .collect();

        let mut arena = AggregateArena::default();
        arena.reset(views.len(), d);
        aggregate_points_into(&pts, &dirs, views, d, &mut arena);
        prop_assert_eq!(arena.n_rays(), 1);
        prop_assert_eq!(arena.total_points(), pts.len());
        prop_assert_eq!(arena.stats().cols(), PointAggregate::stats_dim(d));

        for (k, (&p, &dir)) in pts.iter().zip(&dirs).enumerate() {
            let seed = aggregate_point(p, dir, views, d);
            prop_assert_eq!(
                stats_bits(arena.stats_row(k)),
                stats_bits(&seed.stats),
                "stats bits diverged at point {} (d={}, views={})",
                k, d, views.len()
            );
            prop_assert_eq!(&arena.export(k), &seed, "export diverged at point {}", k);
            prop_assert_eq!(arena.n_valid(k), seed.n_valid);
        }
        // The pair count feeding the fused blend head is consistent.
        let pairs: usize = (0..pts.len()).map(|k| arena.n_valid(k)).sum();
        prop_assert_eq!(arena.valid_pairs(), pairs);
    }
}

// ---- allocation budget ----------------------------------------------

/// The shared steady-state ceiling — `perf_report` enforces the same
/// constant in CI, so the two gates cannot drift apart.
const ALLOC_CEILING: u64 = gen_nerf::pipeline::STEADY_STATE_ALLOC_CEILING;

#[test]
fn steady_state_fused_render_stays_under_alloc_ceiling() {
    // The perf_report allocation workload, bit for bit: same dataset,
    // strategy and resolution, single inline thread.
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 6, 1, 32, 7);
    let sources = prepare_sources(&ds.source_views);
    let model = GenNerfModel::new(ModelConfig::fast());
    let renderer = Renderer::new(
        &model,
        &sources,
        SamplingStrategy::Uniform { n: 12 },
        ds.scene.bounds,
        ds.scene.background,
    )
    .with_threads(1);
    let cam = &ds.eval_views[0].camera;
    let mut image = Image::new(0, 0);
    let mut stats = RenderStats::default();
    // Warm the worker scratch (arena growth, forward buffers) once.
    renderer.render_into(cam, &mut image, &mut stats);
    let before = local_allocations();
    renderer.render_into(cam, &mut image, &mut stats);
    let per_frame = local_allocations() - before;
    assert!(
        per_frame < ALLOC_CEILING,
        "steady-state fused render performed {per_frame} allocations/frame \
         (ceiling {ALLOC_CEILING}) — the arena acquisition path has regressed"
    );
}

#[test]
fn steady_state_arena_acquisition_allocates_nothing() {
    let views = sources();
    let pts: Vec<Vec3> = (0..48)
        .map(|i| {
            Vec3::new(
                (i as f32 * 0.13).sin(),
                (i as f32 * 0.07).cos(),
                i as f32 * 0.02 - 0.5,
            )
        })
        .collect();
    let dirs = vec![Vec3::Z; pts.len()];
    let mut arena = AggregateArena::default();
    // Growth pass.
    arena.reset(views.len(), 12);
    aggregate_points_into(&pts, &dirs, views, 12, &mut arena);
    // Steady-state pass: the tentpole contract — zero heap
    // allocations.
    let before = local_allocations();
    arena.reset(views.len(), 12);
    aggregate_points_into(&pts, &dirs, views, 12, &mut arena);
    let during = local_allocations() - before;
    assert_eq!(
        during, 0,
        "steady-state arena acquisition allocated {during} times"
    );
    assert_eq!(arena.total_points(), pts.len());
}
