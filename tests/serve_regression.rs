//! Serving-layer regression: the exactness and determinism contracts
//! of `gen-nerf-serve`.
//!
//! * With the coherence cache **off** (the default), serving is
//!   bitwise-identical to direct `Renderer::render` calls — for every
//!   sampling strategy. Admission batching, the persistent worker
//!   pool, buffer recycling: none of it may change a pixel.
//! * With the cache **on**, an identical repeated pose is a
//!   *guaranteed* coarse-cache hit (the scheduler never co-batches two
//!   frames of a cache-enabled session) and bitwise-stable: the cached
//!   coarse pass of the same pose reproduces the uncached render
//!   exactly while skipping Step ① work.
//! * N sessions submitting concurrently produce the same pixels as the
//!   same frames submitted sequentially — for any `GEN_NERF_THREADS`
//!   (CI runs this suite under multiple settings and on both
//!   `GEN_NERF_KERNEL` legs).

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::Renderer;
use gen_nerf_geometry::{Camera, Intrinsics, Pose, Vec3};
use gen_nerf_scene::{Dataset, DatasetKind};
use gen_nerf_serve::{
    AdmissionConfig, CacheOutcome, CoherenceConfig, DeadlineClass, Fault, FrameRequest,
    HealthConfig, RenderServer, ResolutionTier, SceneState, ServeError, ServerConfig,
    SessionConfig, SupervisorConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scene() -> Arc<SceneState> {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 4, 1, 24, 5);
    let model = GenNerfModel::new(ModelConfig::fast());
    Arc::new(SceneState::prepare(
        model,
        &ds.source_views,
        ds.scene.bounds,
        ds.scene.background,
    ))
}

fn intrinsics() -> Intrinsics {
    Intrinsics::from_fov(24, 24, 0.6)
}

/// Session `s`'s head pose at walkthrough step `k`: a fine arc, each
/// session phase-offset.
fn walk_pose(s: usize, k: usize) -> Pose {
    let phi = 0.3 * s as f32 + 0.015 * k as f32;
    let eye = Vec3::new(3.5 * phi.cos(), 1.1, 3.5 * phi.sin());
    Pose::look_at(eye, Vec3::ZERO, Vec3::Y)
}

fn strategies() -> [SamplingStrategy; 3] {
    [
        SamplingStrategy::Uniform { n: 6 },
        SamplingStrategy::Hierarchical {
            n_coarse: 4,
            n_fine: 4,
        },
        SamplingStrategy::coarse_then_focus(6, 6),
    ]
}

fn bits(img: &gen_nerf_scene::Image) -> Vec<u32> {
    img.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn cache_off_serving_is_bitwise_identical_to_direct_render() {
    let scene = scene();
    for strategy in strategies() {
        let server = RenderServer::new(ServerConfig::default());
        // Default SessionConfig: coherence off ⇒ exact serving.
        let session = server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(intrinsics(), strategy),
        );
        let direct = Renderer::new(
            &scene.model,
            &scene.sources,
            strategy,
            scene.bounds,
            scene.background,
        );
        for k in 0..3 {
            let pose = walk_pose(0, k);
            let served = server.submit(session, FrameRequest::new(pose)).wait();
            let (img, stats) = direct.render(&Camera::new(intrinsics(), pose));
            assert_eq!(served.serve.cache, CacheOutcome::Bypass, "{strategy:?}");
            assert_eq!(
                bits(&served.image),
                bits(&img),
                "{strategy:?} pose {k}: served pixels diverged"
            );
            assert_eq!(served.stats.points, stats.points, "{strategy:?}");
            assert_eq!(
                served.stats.coarse_points, stats.coarse_points,
                "{strategy:?}"
            );
            assert_eq!(
                served.stats.flops.total(),
                stats.flops.total(),
                "{strategy:?}"
            );
            assert_eq!(
                served.stats.feature_fetches, stats.feature_fetches,
                "{strategy:?}"
            );
        }
    }
}

#[test]
fn repeated_pose_is_guaranteed_hit_and_bitwise_stable() {
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let server = RenderServer::new(ServerConfig::default());
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy)
            .with_coherence(CoherenceConfig::within(0.05, 0.02)),
    );
    let pose = walk_pose(0, 0);
    // Submit the identical pose several times *without waiting in
    // between*: the scheduler must still serve them in order with the
    // cache applied (it never co-batches one session's frames).
    let handles: Vec<_> = (0..4)
        .map(|_| server.submit(session, FrameRequest::new(pose)))
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    assert_eq!(results[0].serve.cache, CacheOutcome::Miss);
    for (i, r) in results.iter().enumerate().skip(1) {
        assert_eq!(r.serve.cache, CacheOutcome::Hit, "frame {i}");
        assert_eq!(r.stats.coarse_points, 0, "frame {i} re-ran Step ①");
        assert_eq!(
            bits(&results[0].image),
            bits(&r.image),
            "frame {i} not bitwise-stable"
        );
    }
    // And the cached result equals the uncached direct render: Step ①
    // of the identical pose is deterministic.
    let (direct, _) = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .render(&Camera::new(intrinsics(), pose));
    assert_eq!(bits(&direct), bits(&results[3].image));
    let cache = server.cache_stats(session);
    assert_eq!((cache.hits, cache.misses), (3, 1));
}

#[test]
fn concurrent_sessions_match_sequential_sessions() {
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let coherence = CoherenceConfig::within(0.12, 0.04);
    let (n_sessions, n_steps) = (3usize, 3usize);

    // Sequential reference: one session at a time, one frame at a time.
    let sequential: Vec<Vec<Vec<u32>>> = {
        let server = RenderServer::new(ServerConfig::default());
        (0..n_sessions)
            .map(|s| {
                let session = server.create_session(
                    Arc::clone(&scene),
                    SessionConfig::new(intrinsics(), strategy).with_coherence(coherence),
                );
                (0..n_steps)
                    .map(|k| {
                        bits(
                            &server
                                .submit(session, FrameRequest::new(walk_pose(s, k)))
                                .wait()
                                .image,
                        )
                    })
                    .collect()
            })
            .collect()
    };

    // Concurrent: every session submits its whole trajectory from its
    // own thread, all in flight at once, racing into the admission
    // queue. Arrival interleaving and batch composition are arbitrary;
    // pixels must not be.
    let server = RenderServer::new(ServerConfig::default());
    let sessions: Vec<_> = (0..n_sessions)
        .map(|_| {
            server.create_session(
                Arc::clone(&scene),
                SessionConfig::new(intrinsics(), strategy).with_coherence(coherence),
            )
        })
        .collect();
    let concurrent: Vec<Vec<Vec<u32>>> = std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = sessions
            .iter()
            .enumerate()
            .map(|(s, &session)| {
                scope.spawn(move || {
                    // Fire the whole trajectory without waiting, then
                    // collect in order (per-sender FIFO keeps the
                    // session's frames ordered in the queue).
                    let frame_handles: Vec<_> = (0..n_steps)
                        .map(|k| server.submit(session, FrameRequest::new(walk_pose(s, k))))
                        .collect();
                    frame_handles
                        .into_iter()
                        .map(|h| bits(&h.wait().image))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for s in 0..n_sessions {
        for k in 0..n_steps {
            assert_eq!(
                sequential[s][k], concurrent[s][k],
                "session {s} frame {k} diverged between concurrent and sequential serving"
            );
        }
    }
    // Every session saw the same cache behaviour as its sequential
    // twin would: first frame misses, coherent successors hit.
    for &session in &sessions {
        let c = server.cache_stats(session);
        assert_eq!(c.misses + c.hits, n_steps as u64);
        assert!(c.hits > 0, "no temporal coherence exploited");
    }
}

#[test]
fn concurrent_mixed_strategy_sessions_are_isolated() {
    // Sessions on different strategies never share a fused batch; the
    // outputs still match their direct renders exactly (cache off).
    let scene = scene();
    let server = RenderServer::new(ServerConfig::default());
    let pose = walk_pose(1, 1);
    let handles: Vec<_> = strategies()
        .into_iter()
        .map(|strategy| {
            let session = server.create_session(
                Arc::clone(&scene),
                SessionConfig::new(intrinsics(), strategy),
            );
            (strategy, server.submit(session, FrameRequest::new(pose)))
        })
        .collect();
    for (strategy, handle) in handles {
        let served = handle.wait();
        let (img, _) = Renderer::new(
            &scene.model,
            &scene.sources,
            strategy,
            scene.bounds,
            scene.background,
        )
        .render(&Camera::new(intrinsics(), pose));
        assert_eq!(bits(&served.image), bits(&img), "{strategy:?}");
    }
}

#[test]
fn sharded_scenes_serve_bitwise_identical_to_direct_render() {
    // Three distinct scenes on a two-shard server: every scene's
    // frames, served concurrently across shards (two scenes sharing
    // one shard), match its own direct render bit for bit.
    let scenes: Vec<Arc<SceneState>> = (0..3).map(|_| scene()).collect();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let server = RenderServer::new(ServerConfig::default().with_max_shards(2));
    let sessions: Vec<_> = scenes
        .iter()
        .map(|s| server.create_session(Arc::clone(s), SessionConfig::new(intrinsics(), strategy)))
        .collect();
    assert_eq!(server.shard_count(), 2);
    assert_ne!(
        server.shard_of(sessions[0]),
        server.shard_of(sessions[1]),
        "distinct scenes under the cap share a shard"
    );
    assert_eq!(
        server.shard_of(sessions[0]),
        server.shard_of(sessions[2]),
        "scene past the cap did not round-robin onto shard 0"
    );
    let handles: Vec<Vec<_>> = sessions
        .iter()
        .map(|&session| {
            (0..2)
                .map(|k| server.submit(session, FrameRequest::new(walk_pose(0, k))))
                .collect()
        })
        .collect();
    for (s, per_scene) in handles.into_iter().enumerate() {
        let direct = Renderer::new(
            &scenes[s].model,
            &scenes[s].sources,
            strategy,
            scenes[s].bounds,
            scenes[s].background,
        );
        for (k, h) in per_scene.into_iter().enumerate() {
            let served = h.wait();
            let (img, _) = direct.render(&Camera::new(intrinsics(), walk_pose(0, k)));
            assert_eq!(
                bits(&served.image),
                bits(&img),
                "scene {s} frame {k} diverged under sharding"
            );
            assert_eq!(
                served.serve.shard,
                server.shard_of(sessions[s]).index(),
                "frame served off its scene's shard"
            );
        }
    }
}

#[test]
fn render_panic_fails_one_frame_and_the_shard_keeps_serving() {
    // A panic inside the render closure mid-frame: the server must
    // survive, the faulted frame's handle must resolve to an error
    // (never hang), and subsequent frames on the same scene must stay
    // bitwise-correct.
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let server = RenderServer::new(ServerConfig::default());
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy),
    );
    let before = server
        .submit(session, FrameRequest::new(walk_pose(0, 0)))
        .wait();
    let faulted = server.submit(
        session,
        FrameRequest::new(walk_pose(0, 1)).with_fault(Fault::Panic),
    );
    match faulted.wait_result() {
        Err(ServeError::Failed(msg)) => {
            assert!(
                msg.contains("injected render fault"),
                "unexpected failure message: {msg}"
            );
        }
        other => panic!("faulted frame resolved to {other:?}"),
    }
    // The shard thread survived: the same session renders on, and the
    // pixels are still exact.
    let after = server
        .submit(session, FrameRequest::new(walk_pose(0, 0)))
        .wait();
    assert_eq!(
        bits(&before.image),
        bits(&after.image),
        "post-panic frame diverged"
    );
    let (direct, _) = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .render(&Camera::new(intrinsics(), walk_pose(0, 0)));
    assert_eq!(bits(&after.image), bits(&direct));
}

#[test]
fn overload_sheds_best_effort_first_and_degrades_interactive() {
    // Pin the shed-or-degrade order under deterministic overload: with
    // the shard held busy by a stalled frame and the queue at its
    // watermark, BestEffort submissions shed while Interactive ones
    // are admitted at the degraded quarter tier — and recovery after
    // the backlog drains is bitwise-exact.
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let capacity = 2usize;
    let server = RenderServer::new(
        ServerConfig::default()
            .with_max_shards(1)
            .with_admission(AdmissionConfig::with_capacity(capacity)),
    );
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy),
    );
    let shard = server.shard_of(session);

    // Occupy the shard, wait for the stall to be scheduled, then fill
    // the queue exactly to the watermark with Interactive frames.
    let stall = server.submit(
        session,
        FrameRequest::new(walk_pose(0, 0)).with_fault(Fault::Stall(Duration::from_millis(700))),
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.shard_stats(shard).queued > 0 {
        assert!(Instant::now() < deadline, "stall frame never scheduled");
        std::thread::yield_now();
    }
    let queued: Vec<_> = (0..capacity)
        .map(|k| server.submit(session, FrameRequest::new(walk_pose(0, k))))
        .collect();
    assert_eq!(server.shard_stats(shard).queued, capacity);

    // At the watermark: every BestEffort submission sheds...
    for k in 0..3 {
        let be = server.submit(
            session,
            FrameRequest::new(walk_pose(0, k)).with_deadline(DeadlineClass::BestEffort),
        );
        match be.wait_result() {
            Err(ServeError::Shed { class }) => assert_eq!(class, DeadlineClass::BestEffort),
            other => panic!("BestEffort frame {k} not shed: {other:?}"),
        }
    }
    // ...while Interactive submissions are admitted, degraded to the
    // quarter tier (half the hard bound is still open).
    let degraded = server.submit(session, FrameRequest::new(walk_pose(0, 5)));
    let adm = server.admission_stats();
    assert_eq!(adm.shed_best_effort, 3, "BestEffort sheds first");
    assert_eq!(adm.shed_interactive, 0, "no Interactive frame shed");
    assert_eq!(adm.degraded, 1);

    let stall = stall.wait();
    assert!(!stall.serve.degraded);
    for h in queued {
        let r = h.wait();
        assert_eq!(r.serve.tier, ResolutionTier::Full);
    }
    let d = degraded.wait();
    assert!(d.serve.degraded, "admission did not mark the degrade");
    assert_eq!(d.serve.tier, ResolutionTier::Quarter);
    // The degraded frame is a *real* quarter-tier render: bitwise
    // equal to directly rendering at the quarter intrinsics.
    let (direct, _) = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .render(&Camera::new(
        ResolutionTier::Quarter.apply(intrinsics()),
        walk_pose(0, 5),
    ));
    assert_eq!(bits(&d.image), bits(&direct), "degraded frame diverged");

    // Past the backlog, serving is exact again at full tier.
    let recovered = server
        .submit(session, FrameRequest::new(walk_pose(0, 7)))
        .wait();
    let (full, _) = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .render(&Camera::new(intrinsics(), walk_pose(0, 7)));
    assert_eq!(bits(&recovered.image), bits(&full), "recovery not exact");
}

#[test]
fn timed_out_frame_resolves_and_the_next_frame_is_bitwise_exact() {
    // A stalled render must not wedge the shard: the watchdog resolves
    // the handle at the class budget with `TimedOut`, cooperative
    // cancellation reclaims the stalled worker, and the very next
    // frame on the same scene renders bitwise-identical to a direct
    // render — supervised serving never trades exactness for
    // liveness.
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let budget = Duration::from_millis(1500);
    let server = RenderServer::new(
        ServerConfig::default()
            .with_supervision(SupervisorConfig::default().with_interactive_budget(budget)),
    );
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy),
    );
    let started = Instant::now();
    let stalled = server.submit(
        session,
        FrameRequest::new(walk_pose(0, 1)).with_fault(Fault::Stall(Duration::from_secs(60))),
    );
    match stalled
        .wait_timeout(Duration::from_secs(15))
        .expect("watchdog must resolve a stalled frame at its budget")
    {
        Err(ServeError::TimedOut { class }) => assert_eq!(class, DeadlineClass::Interactive),
        other => panic!("stalled frame resolved to {other:?}"),
    }
    // Resolved at the budget, not the 60 s stall (generous slack for a
    // loaded CI box — the point is the order of magnitude).
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "timeout took {:?}",
        started.elapsed()
    );
    assert_eq!(server.supervisor_stats().timed_out_interactive, 1);

    // The stalled worker was reclaimed: the next frame renders, and
    // bitwise-exactly.
    let after = server
        .submit(session, FrameRequest::new(walk_pose(0, 2)))
        .wait_timeout(Duration::from_secs(30))
        .expect("post-timeout frame must resolve")
        .expect("post-timeout frame must render");
    let (direct, _) = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .render(&Camera::new(intrinsics(), walk_pose(0, 2)));
    assert_eq!(
        bits(&after.image),
        bits(&direct),
        "post-timeout frame diverged from direct render"
    );
    assert_eq!(server.supervisor_stats().in_flight, 0);
}

#[test]
fn retried_transient_panic_renders_bitwise_identical_to_a_clean_frame() {
    // `PanicOnce` fails the first (batched) attempt only; the retry
    // path re-renders the frame solo. Kernel batch-independence makes
    // the recovered frame bitwise-equal to a direct render — a client
    // cannot tell a retried frame from one that never faulted.
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let server = RenderServer::new(ServerConfig::default());
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy),
    );
    let pose = walk_pose(0, 3);
    let recovered = server
        .submit(
            session,
            FrameRequest::new(pose).with_fault(Fault::PanicOnce),
        )
        .wait();
    let (direct, _) = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .render(&Camera::new(intrinsics(), pose));
    assert_eq!(
        bits(&recovered.image),
        bits(&direct),
        "retried frame diverged from a never-faulted render"
    );
    // The recovery really went through the retry path.
    let retries: u64 = server.shard_stats_all().iter().map(|s| s.retries).sum();
    assert!(retries >= 1, "transient panic recovered without a retry");
}

#[test]
fn every_handle_resolves_under_a_mixed_fault_schedule() {
    // The liveness contract under chaos: whatever mix of transient
    // panics, persistent panics, long stalls and slow frames lands on
    // a shard, every submitted handle resolves — rendered, retried,
    // failed, timed out, or shed, but never stuck.
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let budget = Duration::from_millis(1200);
    let server = RenderServer::new(
        ServerConfig::default().with_supervision(
            SupervisorConfig::default()
                .with_interactive_budget(budget)
                .with_best_effort_budget(budget),
        ),
    );
    let sessions = [
        server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(intrinsics(), strategy),
        ),
        server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(intrinsics(), strategy),
        ),
    ];
    let mut handles = Vec::new();
    for k in 0..24 {
        // A fixed schedule cycling through every fault kind.
        let fault = match k % 8 {
            1 => Some(Fault::PanicOnce),
            3 => Some(Fault::Stall(Duration::from_secs(30))),
            5 => Some(Fault::Panic),
            6 => Some(Fault::Stall(Duration::from_millis(25))),
            _ => None,
        };
        let class = if k % 3 == 0 {
            DeadlineClass::BestEffort
        } else {
            DeadlineClass::Interactive
        };
        let mut req = FrameRequest::new(walk_pose(k % 2, k)).with_deadline(class);
        if let Some(f) = fault {
            req = req.with_fault(f);
        }
        handles.push(server.submit(sessions[k % 2], req));
    }
    for (k, handle) in handles.into_iter().enumerate() {
        assert!(
            handle.wait_timeout(Duration::from_secs(60)).is_some(),
            "frame {k} never resolved"
        );
    }
    assert_eq!(
        server.supervisor_stats().in_flight,
        0,
        "watchdog left watches attached after every handle resolved"
    );
}

#[test]
fn remove_session_resolves_every_handle_before_returning() {
    // Drain-then-drop pin: `remove_session` must not return while any
    // of the session's frames is unresolved. A zero-wait probe after
    // removal therefore finds every handle settled — in-flight frames
    // rendered, still-queued frames failed, none stuck. Before the
    // fix, removal dropped the session map entry immediately and a
    // frame mid-render raced the teardown.
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let server = RenderServer::new(ServerConfig::default());
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy),
    );
    // A short in-budget stall parks the shard so the removal provably
    // races in-flight work, with more frames queued behind it.
    let mut handles = vec![server.submit(
        session,
        FrameRequest::new(walk_pose(0, 0)).with_fault(Fault::Stall(Duration::from_millis(150))),
    )];
    for k in 1..6 {
        handles.push(server.submit(session, FrameRequest::new(walk_pose(0, k))));
    }
    server.remove_session(session);
    let mut rendered = 0usize;
    for (k, handle) in handles.into_iter().enumerate() {
        match handle.wait_timeout(Duration::from_millis(1)) {
            Some(Ok(_)) => rendered += 1,
            Some(Err(_)) => {}
            None => panic!("frame {k} still unresolved after remove_session returned"),
        }
    }
    // The stalled head frame was in flight when removal began; the
    // drain must have let it finish rather than failing it.
    assert!(rendered >= 1, "removal failed even the in-flight frame");
}

#[test]
fn frames_after_a_shard_kill_render_bitwise_identical() {
    // Self-healing exactness pin: a seeded shard kill mid-queue loses
    // nothing — the killed frame and everything queued behind it are
    // requeued FIFO onto the respawned incarnation and render
    // bitwise-identical to a server that was never killed.
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let poses: Vec<Pose> = (0..6).map(|k| walk_pose(0, k)).collect();

    // Reference: a clean server renders the same plan.
    let reference: Vec<Vec<u32>> = {
        let server = RenderServer::new(ServerConfig::default());
        let session = server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(intrinsics(), strategy),
        );
        poses
            .iter()
            .map(|&pose| bits(&server.submit(session, FrameRequest::new(pose)).wait().image))
            .collect()
    };

    // Fast sweep + short backoff keep the restart quick; the
    // heartbeat budget stays at its default (a kill is detected as
    // Dead via the finished worker thread, and a tight budget would
    // misread a legitimately slow render on a loaded test host as
    // Wedged).
    let server = RenderServer::new(
        ServerConfig::default().with_health(
            HealthConfig::default()
                .with_sweep_interval(Duration::from_millis(10))
                .with_restart_backoff(Duration::from_millis(10), Duration::from_millis(100)),
        ),
    );
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy),
    );
    // Warm frame, then the kill, then the queue the kill strands.
    let mut handles = vec![server.submit(session, FrameRequest::new(poses[0]))];
    handles.push(server.submit(
        session,
        FrameRequest::new(poses[1]).with_fault(Fault::KillShard),
    ));
    for &pose in &poses[2..] {
        handles.push(server.submit(session, FrameRequest::new(pose)));
    }
    for (k, handle) in handles.into_iter().enumerate() {
        let frame = handle
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|| panic!("frame {k} never resolved across the restart"))
            .unwrap_or_else(|e| panic!("frame {k} failed across the restart: {e}"));
        assert_eq!(
            bits(&frame.image),
            reference[k],
            "frame {k} diverged from the never-killed render"
        );
    }
    let restarts: u64 = server.shard_health().iter().map(|h| h.restarts).sum();
    assert!(
        restarts >= 1,
        "seeded kill never exercised the restart path"
    );
}
