//! Output integrity at the serving layer: injected corruption — a
//! supra-tolerance GEMM perturbation, a poisoned pixel, a bit-flipped
//! cache anchor — must never reach a client.
//!
//! * A corrupt render attempt fails verification *before* fulfill; the
//!   frame re-renders under the retry policy and the recovered image
//!   is bitwise identical to a never-faulted render.
//! * A corrupted coarse anchor fails its digest at import and is
//!   discarded as a counted miss — it never seeds a render.
//! * Repeated GEMM miscompares under a SIMD backend quarantine that
//!   backend process-wide; serving continues on the scalar kernels.
//!
//! These tests flip process-global state (the integrity mode, the
//! active kernel backend, the armed chaos hooks), so they serialize on
//! a local lock and restore the environment's configuration on exit.

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::Renderer;
use gen_nerf_geometry::{Camera, Intrinsics, Pose, Vec3};
use gen_nerf_nn::kernels::integrity::{self, IntegrityMode};
use gen_nerf_nn::kernels::{self, Backend};
use gen_nerf_scene::{Dataset, DatasetKind};
use gen_nerf_serve::{
    CacheOutcome, CoherenceConfig, Fault, FrameRequest, RenderServer, SceneState, ServerConfig,
    SessionConfig,
};
use std::sync::{Arc, Mutex};

static SERIAL: Mutex<()> = Mutex::new(());

fn scene() -> Arc<SceneState> {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 4, 1, 24, 5);
    let model = GenNerfModel::new(ModelConfig::fast());
    Arc::new(SceneState::prepare(
        model,
        &ds.source_views,
        ds.scene.bounds,
        ds.scene.background,
    ))
}

fn intrinsics() -> Intrinsics {
    Intrinsics::from_fov(16, 16, 0.6)
}

fn pose(k: usize) -> Pose {
    let phi = 0.3 + 0.02 * k as f32;
    Pose::look_at(
        Vec3::new(3.5 * phi.cos(), 1.1, 3.5 * phi.sin()),
        Vec3::ZERO,
        Vec3::Y,
    )
}

fn bits(img: &gen_nerf_scene::Image) -> Vec<u32> {
    img.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Restores every piece of process-global state a test may have moved:
/// the integrity mode, the quarantine latch, the active backend.
fn restore_globals() {
    integrity::clear_quarantine_for_tests();
    kernels::set_active(Backend::from_env());
    integrity::set_mode(IntegrityMode::from_env());
}

#[test]
fn corrupt_gemm_frame_is_detected_retried_and_bitwise_exact() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    integrity::set_mode(IntegrityMode::Full);

    let server = RenderServer::new(ServerConfig::default());
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy),
    );
    let recovered = server
        .submit(
            session,
            FrameRequest::new(pose(0)).with_fault(Fault::CorruptGemm(0x5eed)),
        )
        .wait();

    // The corruption was caught (never published) and the frame was
    // re-rendered; detection and recovery are visible in the counters.
    let corrupt: u64 = server
        .shard_stats_all()
        .iter()
        .map(|s| s.corrupt_renders)
        .sum();
    let retries: u64 = server.shard_stats_all().iter().map(|s| s.retries).sum();
    assert!(corrupt >= 1, "injected GEMM corruption went undetected");
    assert!(retries >= 1, "corrupt frame recovered without a retry");

    // The client cannot tell: the recovered frame is bitwise a
    // never-faulted render.
    let (direct, _) = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .render(&Camera::new(intrinsics(), pose(0)));
    assert_eq!(
        bits(&recovered.image),
        bits(&direct),
        "retried frame diverged from a never-faulted render"
    );
    restore_globals();
}

#[test]
fn corrupt_pixels_frame_trips_the_sentinel_and_recovers() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let scene = scene();
    let strategy = SamplingStrategy::Uniform { n: 6 };
    integrity::set_mode(IntegrityMode::Full);

    let server = RenderServer::new(ServerConfig::default());
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy),
    );
    let recovered = server
        .submit(
            session,
            FrameRequest::new(pose(1)).with_fault(Fault::CorruptPixels(0xfeed_beef)),
        )
        .wait();
    assert!(
        recovered.image.as_slice().iter().all(|v| v.is_finite()),
        "poisoned pixel reached a client"
    );

    let corrupt: u64 = server
        .shard_stats_all()
        .iter()
        .map(|s| s.corrupt_renders)
        .sum();
    assert!(corrupt >= 1, "poisoned pixel went undetected");

    let (direct, _) = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .render(&Camera::new(intrinsics(), pose(1)));
    assert_eq!(bits(&recovered.image), bits(&direct));
    restore_globals();
}

#[test]
fn corrupt_anchor_is_rejected_at_import_as_a_counted_miss() {
    // The digest check is unconditional — no integrity mode needed: a
    // bit-flipped anchor must never seed a render even with GEMM
    // checking off.
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let server = RenderServer::new(ServerConfig::default());
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy)
            .with_coherence(CoherenceConfig::within(0.05, 0.02)),
    );

    let first = server.submit(session, FrameRequest::new(pose(2))).wait();
    assert_eq!(first.serve.cache, CacheOutcome::Miss);

    // Same pose, but the retained anchor is bit-flipped before the
    // lookup: the import validation must discard it (a miss, counted)
    // and re-render from scratch — bitwise the same frame.
    let second = server
        .submit(
            session,
            FrameRequest::new(pose(2)).with_fault(Fault::CorruptAnchor(42)),
        )
        .wait();
    assert_eq!(
        second.serve.cache,
        CacheOutcome::Miss,
        "a corrupted anchor must not be imported"
    );
    assert_eq!(bits(&first.image), bits(&second.image));

    // The fresh miss re-anchored: the pose hits again, and the stats
    // attribute the rejection.
    let third = server.submit(session, FrameRequest::new(pose(2))).wait();
    assert_eq!(third.serve.cache, CacheOutcome::Hit);
    assert_eq!(bits(&first.image), bits(&third.image));
    let stats = server.cache_stats(session);
    assert_eq!(stats.integrity_rejects, 1);
    assert_eq!((stats.hits, stats.misses), (1, 2));
    restore_globals();
}

#[test]
fn repeated_gemm_miscompares_quarantine_the_simd_backend() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    if !Backend::Avx2.available() {
        return; // nothing to quarantine on this host
    }
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    integrity::clear_quarantine_for_tests();
    integrity::set_mode(IntegrityMode::Full);
    assert_eq!(kernels::set_active(Backend::Avx2), Backend::Avx2);

    let server = RenderServer::new(ServerConfig::default());
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy),
    );
    // Three transient miscompares under the SIMD backend: every frame
    // still resolves (the retry recovers each one), and the third
    // strike latches the process-wide quarantine.
    for k in 0..3 {
        let r = server
            .submit(
                session,
                FrameRequest::new(pose(3 + k)).with_fault(Fault::CorruptGemm(k as u64 + 1)),
            )
            .wait();
        assert!(r.image.as_slice().iter().all(|v| v.is_finite()));
    }
    assert_eq!(
        kernels::active_backend(),
        Backend::Scalar,
        "repeated miscompares must demote the SIMD backend"
    );
    let quarantines: u64 = server
        .shard_stats_all()
        .iter()
        .map(|s| s.quarantine_events)
        .sum();
    assert!(quarantines >= 1, "quarantine latch not counted");

    // Serving continues on the scalar kernels — still bitwise-exact.
    let after = server.submit(session, FrameRequest::new(pose(9))).wait();
    let (direct, _) = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .render(&Camera::new(intrinsics(), pose(9)));
    assert_eq!(bits(&after.image), bits(&direct));
    restore_globals();
}
