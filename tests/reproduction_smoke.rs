//! Reproduction smoke tests: cheap versions of the paper's headline
//! claims, one per table/figure family. These run in seconds and pin
//! the *shape* of each result so regressions in any crate surface
//! here.

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::pruning::prune_point_mlp;
use gen_nerf_accel::area::area_power;
use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::dataflow::DataflowVariant;
use gen_nerf_accel::gpu::GpuModel;
use gen_nerf_accel::icarus::Icarus;
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_accel::workload::{Stage, WorkloadSpec};

/// Fig. 2 / Sec. 2.3: vanilla generalizable NeRFs are not real-time on
/// GPUs, feature acquisition is a major cost, and attention wastes
/// time relative to its FLOPs.
#[test]
fn claim_gpus_not_realtime_and_attention_inefficient() {
    let gpu = GpuModel::rtx_2080ti();
    let spec = WorkloadSpec::ibrnet_default(800, 800, 10, 196);
    assert!(
        gpu.fps(&spec) < 1.0,
        "vanilla pipeline too fast to motivate the paper"
    );
    let bd = gpu.breakdown(&spec);
    assert!(bd.acquire_s / bd.total_s() > 0.2);
    let ray_flops = 2.0 * spec.ray_macs_total(Stage::Focused) as f64;
    let mlp_flops = 2.0 * spec.mlp_macs(Stage::Focused) as f64;
    let flops_share = ray_flops / (ray_flops + mlp_flops);
    assert!(bd.ray_module_dnn_share() > 1.5 * flops_share);
}

/// Tab. 1: the synthesized totals.
#[test]
fn claim_area_power_totals() {
    let r = area_power(&AcceleratorConfig::paper());
    assert!((r.total_area_mm2() - 17.8).abs() / 17.8 < 0.05);
    assert!((r.total_power_mw() - 9685.0).abs() / 9685.0 < 0.05);
}

/// Tab. 2: channel pruning cuts FLOPs by >3x at 75% sparsity.
#[test]
fn claim_pruning_cuts_flops() {
    let model = gen_nerf::model::GenNerfModel::new(ModelConfig::fast());
    let pruned = prune_point_mlp(&model, 0.75);
    let ratio =
        model.config.mlp_macs_per_point() as f64 / pruned.config.mlp_macs_per_point() as f64;
    assert!(ratio > 3.0, "pruning ratio only {ratio:.2}x");
}

/// Tab. 2 / Sec. 3.2: coarse-then-focus costs fewer MACs than uniform
/// sampling at the same total point budget (hardware view).
#[test]
fn claim_ctf_cheaper_at_same_budget() {
    let cfg = ModelConfig::fast();
    let ctf = gen_nerf::hardware::workload_spec(
        &cfg,
        &SamplingStrategy::coarse_then_focus(16, 48),
        128,
        128,
        6,
    );
    let uniform =
        gen_nerf::hardware::workload_spec(&cfg, &SamplingStrategy::Uniform { n: 64 }, 128, 128, 6);
    assert!(ctf.total_macs() < uniform.total_macs());
    // And it fetches fewer nominal feature bytes (4 coarse views,
    // quarter channels).
    let ctf_bytes =
        ctf.nominal_gather_bytes(Stage::Coarse) + ctf.nominal_gather_bytes(Stage::Focused);
    let uni_bytes = uniform.nominal_gather_bytes(Stage::Focused);
    assert!(ctf_bytes < uni_bytes);
}

/// Fig. 10 / Tab. 4: the accelerator is orders of magnitude faster
/// than the GPUs and >100x ICARUS-equivalent FPS.
#[test]
fn claim_asic_speedups() {
    let spec = WorkloadSpec::gen_nerf_default(160, 160, 6, 64);
    let sim = Simulator::new(AcceleratorConfig::paper());
    let asic = sim.simulate(&spec);
    // Extrapolate to 800x800 by ray count.
    let full_fps = asic.fps * (160.0 * 160.0) / (800.0 * 800.0);
    let rtx = GpuModel::rtx_2080ti().fps(&WorkloadSpec::gen_nerf_default(800, 800, 6, 64));
    let speedup = full_fps / rtx;
    assert!(
        speedup > 50.0,
        "speedup over 2080Ti only {speedup:.1}x (paper: 239-256x)"
    );
    assert!(
        full_fps / Icarus::reported().typical_fps > 100.0,
        "vs ICARUS only {:.0}x",
        full_fps / Icarus::reported().typical_fps
    );
}

/// Fig. 11: the accelerator stays ahead across view/point scaling.
#[test]
fn claim_scalability() {
    let rtx = GpuModel::rtx_2080ti();
    for views in [2usize, 6] {
        for points in [32usize, 64] {
            let spec = WorkloadSpec::gen_nerf_default(96, 96, views, points);
            let sim = Simulator::new(AcceleratorConfig::paper());
            let asic = sim.simulate(&spec);
            assert!(
                asic.fps > rtx.fps(&spec),
                "ASIC loses at views={views}, points={points}"
            );
        }
    }
}

/// Fig. 12: the greedy dataflow + spatial interleaving beats every
/// ablated variant, and the bad layouts add bank conflicts.
#[test]
fn claim_dataflow_ablation_order() {
    let mut cfg = AcceleratorConfig::paper();
    cfg.prefetch_buffer_kb = 24; // bind the capacity constraint at 96²
    let spec = WorkloadSpec::gen_nerf_default(96, 96, 6, 64);
    let mut results = Vec::new();
    for variant in DataflowVariant::all() {
        let sim = Simulator::with_variant(cfg, variant);
        results.push((variant, sim.simulate(&spec)));
    }
    let ours = results
        .iter()
        .find(|(v, _)| *v == DataflowVariant::Ours)
        .unwrap()
        .1
        .clone();
    for (variant, r) in &results {
        if *variant != DataflowVariant::Ours {
            assert!(
                r.total_cycles >= ours.total_cycles,
                "{variant:?} beat ours: {} vs {}",
                r.total_cycles,
                ours.total_cycles
            );
        }
    }
    // Ours has the best PE utilization.
    for (variant, r) in &results {
        assert!(
            ours.pe_utilization >= r.pe_utilization * 0.99,
            "{variant:?} utilization {} vs ours {}",
            r.pe_utilization,
            ours.pe_utilization
        );
    }
}
