//! Regression suite for fused cross-ray batched inference: the fused
//! chunk schedule (one point-MLP GEMM + one blend GEMM per chunk,
//! [`GenNerfModel::forward_rays`]) must match the per-ray reference
//! path **bit-for-bit** — identical pixels and identical FLOPs/fetch
//! accounting — on a trained model, for every sampling strategy, ray
//! module and thread count.
//!
//! This is the contract that makes the fused path safe as the default:
//! fusion is a pure performance knob, never a results knob. It rests on
//! the dense GEMM kernel's k-order accumulation (see
//! `gen_nerf_nn::tensor`), which makes output rows independent of
//! which other rows share a batch.

use gen_nerf::config::{ModelConfig, RayModuleChoice, SamplingStrategy};
use gen_nerf::features::{aggregate_point, prepare_sources, PointAggregate};
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::{RenderStats, Renderer};
use gen_nerf::trainer::{TrainConfig, Trainer};
use gen_nerf_geometry::Vec3;
use gen_nerf_scene::{Dataset, DatasetKind, Image};

fn trained_scene() -> (Dataset, GenNerfModel) {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 6, 1, 24, 11);
    let mut model = GenNerfModel::new(ModelConfig::fast());
    let mut trainer = Trainer::new(TrainConfig {
        steps: 80,
        ..TrainConfig::fast()
    });
    trainer.pretrain(&mut model, &[&ds]);
    (ds, model)
}

fn render(
    ds: &Dataset,
    model: &GenNerfModel,
    strategy: SamplingStrategy,
    fused: bool,
    threads: usize,
) -> (Image, RenderStats) {
    let sources = prepare_sources(&ds.source_views);
    Renderer::new(
        model,
        &sources,
        strategy,
        ds.scene.bounds,
        ds.scene.background,
    )
    .with_fused(fused)
    .with_threads(threads)
    .render(&ds.eval_views[0].camera)
}

fn assert_stats_identical(a: &RenderStats, b: &RenderStats, ctx: &str) {
    // The FLOPs-accounting satellite: fused and per-ray paths must
    // report identical counts, bucket by bucket.
    assert_eq!(a.rays, b.rays, "{ctx}: rays");
    assert_eq!(a.points, b.points, "{ctx}: points");
    assert_eq!(a.coarse_points, b.coarse_points, "{ctx}: coarse_points");
    assert_eq!(a.feature_fetches, b.feature_fetches, "{ctx}: fetches");
    assert_eq!(a.flops.total(), b.flops.total(), "{ctx}: total FLOPs");
    for bucket in ["acquire", "mlp", "ray_module", "others"] {
        assert_eq!(
            a.flops.get(bucket),
            b.flops.get(bucket),
            "{ctx}: bucket {bucket}"
        );
    }
}

fn assert_fused_matches_per_ray(strategy: SamplingStrategy) {
    let (ds, model) = trained_scene();
    let (img_ref, stats_ref) = render(&ds, &model, strategy, false, 1);
    for threads in [1usize, 2, 4] {
        let (img_fused, stats_fused) = render(&ds, &model, strategy, true, threads);
        let ref_bits: Vec<u32> = img_ref.as_slice().iter().map(|v| v.to_bits()).collect();
        let fused_bits: Vec<u32> = img_fused.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            ref_bits, fused_bits,
            "{strategy:?} fused@{threads} threads diverged from per-ray reference"
        );
        assert_stats_identical(
            &stats_ref,
            &stats_fused,
            &format!("{strategy:?} fused@{threads}"),
        );
    }
}

#[test]
fn uniform_fused_matches_per_ray() {
    assert_fused_matches_per_ray(SamplingStrategy::Uniform { n: 10 });
}

#[test]
fn hierarchical_fused_matches_per_ray() {
    assert_fused_matches_per_ray(SamplingStrategy::Hierarchical {
        n_coarse: 6,
        n_fine: 6,
    });
}

#[test]
fn coarse_then_focus_fused_matches_per_ray() {
    assert_fused_matches_per_ray(SamplingStrategy::coarse_then_focus(8, 8));
}

/// The ray-transformer variant's fused q/k/v/o projections: a full
/// frame on the fused chunk schedule must stay bit-identical to the
/// per-ray reference even though the fused path now batches the
/// attention projections (and the density projection) across a
/// chunk's rays. Only the softmax attention core runs per ray — the
/// paper's point about the transformer workload.
#[test]
fn transformer_fused_render_matches_per_ray() {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 5, 1, 24, 3);
    let model =
        GenNerfModel::new(ModelConfig::fast().with_ray_module(RayModuleChoice::Transformer));
    let sources = prepare_sources(&ds.source_views);
    let strategy = SamplingStrategy::Uniform { n: 9 };
    let run = |fused: bool, threads: usize| {
        Renderer::new(
            &model,
            &sources,
            strategy,
            ds.scene.bounds,
            ds.scene.background,
        )
        .with_fused(fused)
        .with_threads(threads)
        .render(&ds.eval_views[0].camera)
    };
    let (img_ref, stats_ref) = run(false, 1);
    for threads in [1usize, 3] {
        let (img_fused, stats_fused) = run(true, threads);
        let ref_bits: Vec<u32> = img_ref.as_slice().iter().map(|v| v.to_bits()).collect();
        let fused_bits: Vec<u32> = img_fused.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            ref_bits, fused_bits,
            "transformer fused@{threads} threads diverged from per-ray reference"
        );
        assert_stats_identical(&stats_ref, &stats_fused, &format!("transformer@{threads}"));
    }
}

/// `forward_rays` ≡ per-ray `forward_ray`, bit-for-bit, for every ray
/// module and for adversarial groupings (empty rays, invisible points,
/// mixed lengths) — the API-level half of the contract, on trained
/// weights.
#[test]
fn forward_rays_equals_forward_ray_across_modules() {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 5, 1, 24, 3);
    let sources = prepare_sources(&ds.source_views);
    let cam = &ds.eval_views[0].camera;
    let mut rays_aggs: Vec<Vec<PointAggregate>> = Vec::new();
    for (px, py, n) in [(2u32, 2u32, 12usize), (8, 4, 5), (1, 9, 1), (5, 5, 17)] {
        let ray = cam.pixel_center_ray(px, py);
        let Some((t0, t1)) = ds.scene.bounds.intersect_ray(&ray) else {
            continue;
        };
        let aggs = gen_nerf_geometry::Ray::uniform_depths(t0, t1, n)
            .into_iter()
            .map(|t| aggregate_point(ray.at(t), ray.direction, &sources, 12))
            .collect();
        rays_aggs.push(aggs);
    }
    rays_aggs.push(Vec::new()); // an empty ray inside the chunk
    rays_aggs.push(vec![aggregate_point(
        Vec3::new(900.0, 0.0, 0.0),
        Vec3::X,
        &sources,
        12,
    )]); // a ray of only invisible points

    for choice in [
        RayModuleChoice::Mixer,
        RayModuleChoice::Transformer,
        RayModuleChoice::None,
    ] {
        let model = GenNerfModel::new(ModelConfig::fast().with_ray_module(choice));
        let refs: Vec<&[PointAggregate]> = rays_aggs.iter().map(|r| r.as_slice()).collect();
        let fused = model.forward_rays(&refs);
        assert_eq!(fused.len(), refs.len());
        for (aggs, out) in refs.iter().zip(&fused) {
            let per_ray = model.forward_ray(aggs);
            let fd: Vec<u32> = out.densities.iter().map(|v| v.to_bits()).collect();
            let pd: Vec<u32> = per_ray.densities.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fd, pd, "{choice:?}: densities diverged");
            let fc: Vec<[u32; 3]> = out
                .colors
                .iter()
                .map(|c| [c.x.to_bits(), c.y.to_bits(), c.z.to_bits()])
                .collect();
            let pc: Vec<[u32; 3]> = per_ray
                .colors
                .iter()
                .map(|c| [c.x.to_bits(), c.y.to_bits(), c.z.to_bits()])
                .collect();
            assert_eq!(fc, pc, "{choice:?}: colors diverged");
        }
    }
}

/// Chunking must be invisible: any grouping of the same rays produces
/// the same per-ray outputs (this is what makes the fused schedule
/// deterministic across worker counts).
#[test]
fn forward_rays_is_chunking_invariant() {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 5, 1, 24, 3);
    let sources = prepare_sources(&ds.source_views);
    let model = GenNerfModel::new(ModelConfig::fast());
    let cam = &ds.eval_views[0].camera;
    let mut rays_aggs: Vec<Vec<PointAggregate>> = Vec::new();
    for px in 0..6u32 {
        let ray = cam.pixel_center_ray(px, 4);
        let Some((t0, t1)) = ds.scene.bounds.intersect_ray(&ray) else {
            continue;
        };
        rays_aggs.push(
            gen_nerf_geometry::Ray::uniform_depths(t0, t1, 7 + px as usize)
                .into_iter()
                .map(|t| aggregate_point(ray.at(t), ray.direction, &sources, 12))
                .collect(),
        );
    }
    assert!(rays_aggs.len() >= 3, "need a few hitting rays");
    let refs: Vec<&[PointAggregate]> = rays_aggs.iter().map(|r| r.as_slice()).collect();
    let whole = model.forward_rays(&refs);
    // Split into two unequal chunks and a per-ray "chunking".
    let (left, right) = refs.split_at(refs.len() / 3);
    let mut split = model.forward_rays(left);
    split.extend(model.forward_rays(right));
    let singles: Vec<_> = refs.iter().flat_map(|r| model.forward_rays(&[r])).collect();
    for (a, b) in whole.iter().zip(&split).chain(whole.iter().zip(&singles)) {
        let ab: Vec<u32> = a.densities.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.densities.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
        for (ca, cb) in a.colors.iter().zip(&b.colors) {
            assert_eq!(
                [ca.x.to_bits(), ca.y.to_bits(), ca.z.to_bits()],
                [cb.x.to_bits(), cb.y.to_bits(), cb.z.to_bits()]
            );
        }
    }
}

#[test]
fn coarse_densities_batch_equals_per_ray() {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 5, 1, 24, 3);
    let sources = prepare_sources(&ds.source_views);
    let model = GenNerfModel::new(ModelConfig::fast());
    let cam = &ds.eval_views[0].camera;
    let mut rays_aggs: Vec<Vec<PointAggregate>> = vec![Vec::new()];
    for px in [1u32, 4, 7] {
        let ray = cam.pixel_center_ray(px, 6);
        let Some((t0, t1)) = ds.scene.bounds.intersect_ray(&ray) else {
            continue;
        };
        rays_aggs.push(
            gen_nerf_geometry::Ray::uniform_depths(t0, t1, 8)
                .into_iter()
                .map(|t| aggregate_point(ray.at(t), ray.direction, &sources, 3))
                .collect(),
        );
    }
    let refs: Vec<&[PointAggregate]> = rays_aggs.iter().map(|r| r.as_slice()).collect();
    let fused = model.coarse_densities_batch(&refs);
    for (aggs, out) in refs.iter().zip(&fused) {
        let per_ray = model.coarse_densities(aggs);
        let fb: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u32> = per_ray.iter().map(|v| v.to_bits()).collect();
        assert_eq!(fb, pb);
    }
}
