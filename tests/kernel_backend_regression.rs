//! Regression suite for the runtime-dispatched kernel backends.
//!
//! Pins the three halves of the backend contract:
//!
//! * **Dispatch** — `GEN_NERF_KERNEL` values resolve to the right
//!   backend, unknown values degrade to auto detection, and every
//!   backend can be forced at runtime.
//! * **Scalar is the reference** — the scalar backend renders are the
//!   workspace's historical bit-exact results (CI runs the whole suite
//!   once under `GEN_NERF_KERNEL=scalar` to pin that leg end to end).
//! * **SIMD is a perf knob, not a results knob** — switching backends
//!   changes pixels only within a tight tolerance and changes the
//!   FLOPs/fetch accounting not at all.
//!
//! The active backend is process-global, so every test here serializes
//! on one mutex and restores the startup backend before returning.

use gen_nerf::config::{ModelConfig, RayModuleChoice, SamplingStrategy};
use gen_nerf::features::prepare_sources;
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::{RenderStats, Renderer};
use gen_nerf_nn::kernels::{self, Backend};
use gen_nerf_scene::{Dataset, DatasetKind, Image};
use std::sync::Mutex;

/// Serializes backend-switching tests (the active backend is global).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the backend lock held, restoring the startup backend
/// afterwards even if `f` panics partway through a switch.
fn with_backend_lock(f: impl FnOnce()) {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let startup = kernels::active_backend();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    kernels::set_active(startup);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

#[test]
fn env_values_resolve_to_backends() {
    with_backend_lock(|| {
        let original = std::env::var(kernels::KERNEL_ENV).ok();
        for (value, expect) in [
            ("scalar", Backend::Scalar),
            ("avx2", Backend::detect()), // degrades to detect() when unavailable
            ("auto", Backend::detect()),
            ("definitely-not-a-backend", Backend::detect()),
        ] {
            std::env::set_var(kernels::KERNEL_ENV, value);
            let resolved = Backend::from_env();
            if value == "avx2" && Backend::Avx2.available() {
                assert_eq!(resolved, Backend::Avx2, "{value}");
            } else {
                assert_eq!(resolved, expect, "{value}");
            }
        }
        std::env::remove_var(kernels::KERNEL_ENV);
        assert_eq!(Backend::from_env(), Backend::detect());
        match original {
            Some(v) => std::env::set_var(kernels::KERNEL_ENV, v),
            None => std::env::remove_var(kernels::KERNEL_ENV),
        }
    });
}

#[test]
fn every_backend_can_be_forced() {
    with_backend_lock(|| {
        assert_eq!(kernels::set_active(Backend::Scalar), Backend::Scalar);
        assert_eq!(kernels::active().backend(), Backend::Scalar);
        let effective = kernels::set_active(Backend::Avx2);
        if Backend::Avx2.available() {
            assert_eq!(effective, Backend::Avx2);
            assert_eq!(kernels::active().backend(), Backend::Avx2);
        } else {
            // Unavailable requests degrade to the scalar reference.
            assert_eq!(effective, Backend::Scalar);
            assert_eq!(kernels::active().backend(), Backend::Scalar);
        }
    });
}

fn render_frame(
    ds: &Dataset,
    model: &GenNerfModel,
    strategy: SamplingStrategy,
) -> (Image, RenderStats) {
    let sources = prepare_sources(&ds.source_views);
    Renderer::new(
        model,
        &sources,
        strategy,
        ds.scene.bounds,
        ds.scene.background,
    )
    .with_threads(2)
    .render(&ds.eval_views[0].camera)
}

/// Switching backends must change pixels only within a tight tolerance
/// (SIMD rounding) and must not change any instrumentation count —
/// FLOPs accounting is a function of the schedule, never the kernel.
#[test]
fn backends_render_equivalent_frames_with_identical_accounting() {
    if !Backend::Avx2.available() {
        return; // single-backend host: the scalar leg covers everything
    }
    with_backend_lock(|| {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 5, 1, 24, 3);
        for choice in [
            RayModuleChoice::Mixer,
            RayModuleChoice::Transformer,
            RayModuleChoice::None,
        ] {
            let model = GenNerfModel::new(ModelConfig::fast().with_ray_module(choice));
            let strategy = SamplingStrategy::Uniform { n: 10 };
            kernels::set_active(Backend::Scalar);
            let (img_scalar, stats_scalar) = render_frame(&ds, &model, strategy);
            kernels::set_active(Backend::Avx2);
            let (img_simd, stats_simd) = render_frame(&ds, &model, strategy);

            let max_diff = img_scalar
                .as_slice()
                .iter()
                .zip(img_simd.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_diff <= 1e-3,
                "{choice:?}: scalar vs avx2 pixel diff {max_diff}"
            );
            assert_eq!(stats_scalar.rays, stats_simd.rays, "{choice:?}");
            assert_eq!(stats_scalar.points, stats_simd.points, "{choice:?}");
            assert_eq!(
                stats_scalar.feature_fetches, stats_simd.feature_fetches,
                "{choice:?}"
            );
            assert_eq!(
                stats_scalar.flops.total(),
                stats_simd.flops.total(),
                "{choice:?}: FLOPs accounting must be backend-independent"
            );
            for bucket in ["acquire", "mlp", "ray_module", "others"] {
                assert_eq!(
                    stats_scalar.flops.get(bucket),
                    stats_simd.flops.get(bucket),
                    "{choice:?}: bucket {bucket}"
                );
            }
        }
    });
}

/// Within any one backend, the fused schedule stays bit-identical to
/// the per-ray reference (the positional-independence contract the
/// SIMD kernels must uphold).
#[test]
fn fused_equals_per_ray_under_every_backend() {
    with_backend_lock(|| {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 5, 1, 24, 3);
        let model = GenNerfModel::new(ModelConfig::fast());
        let sources = prepare_sources(&ds.source_views);
        let mut backends = vec![Backend::Scalar];
        if Backend::Avx2.available() {
            backends.push(Backend::Avx2);
        }
        for backend in backends {
            kernels::set_active(backend);
            let run = |fused: bool| {
                Renderer::new(
                    &model,
                    &sources,
                    SamplingStrategy::Uniform { n: 8 },
                    ds.scene.bounds,
                    ds.scene.background,
                )
                .with_fused(fused)
                .with_threads(2)
                .render(&ds.eval_views[0].camera)
            };
            let (img_f, _) = run(true);
            let (img_p, _) = run(false);
            let fb: Vec<u32> = img_f.as_slice().iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = img_p.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, pb, "fused diverged from per-ray under {backend:?}");
        }
    });
}
