//! End-to-end integration: dataset generation → feature encoding →
//! training → rendering → evaluation → hardware mapping → cycle
//! simulation, across every crate in the workspace.

use gen_nerf::config::{ModelConfig, RayModuleChoice, SamplingStrategy};
use gen_nerf::eval::evaluate;
use gen_nerf::features::prepare_sources;
use gen_nerf::hardware::workload_spec;
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::Renderer;
use gen_nerf::trainer::{TrainConfig, Trainer};
use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::gpu::GpuModel;
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_scene::metrics::psnr;
use gen_nerf_scene::{Dataset, DatasetKind};

fn tiny(kind: DatasetKind, name: &str) -> Dataset {
    Dataset::build(kind, name, 0.035, 6, 1, 32, 7)
}

fn quick_train(model: &mut GenNerfModel, ds: &Dataset) {
    let mut trainer = Trainer::new(TrainConfig {
        steps: 200,
        ..TrainConfig::fast()
    });
    trainer.pretrain(model, &[ds]);
}

#[test]
fn full_pipeline_produces_sane_novel_view() {
    let ds = tiny(DatasetKind::DeepVoxels, "cube");
    let mut model = GenNerfModel::new(ModelConfig::fast());
    quick_train(&mut model, &ds);

    let sources = prepare_sources(&ds.source_views);
    let strategy = SamplingStrategy::coarse_then_focus(8, 16);
    let renderer = Renderer::new(
        &model,
        &sources,
        strategy,
        ds.scene.bounds,
        ds.scene.background,
    );
    let view = &ds.eval_views[0];
    let (img, stats) = renderer.render(&view.camera);

    assert!(img.as_slice().iter().all(|v| v.is_finite()));
    let quality = psnr(&view.image, &img);
    assert!(quality > 8.0, "novel view unusable: {quality} dB");
    assert!(stats.flops.total() > 0);
    assert!(stats.feature_fetches > 0);
}

#[test]
fn trained_generalizable_model_transfers_to_unseen_scene() {
    // Train on one scene, evaluate on a *different* scene: the
    // generalizable setting must beat an untrained model on the unseen
    // scene.
    let train_ds = tiny(DatasetKind::NerfSynthetic, "lego");
    let unseen = tiny(DatasetKind::NerfSynthetic, "chair");
    let strategy = SamplingStrategy::Uniform { n: 12 };

    let untrained = GenNerfModel::new(ModelConfig::fast());
    let before = evaluate(&untrained, &unseen, &strategy, None);

    let mut model = GenNerfModel::new(ModelConfig::fast());
    quick_train(&mut model, &train_ds);
    let after = evaluate(&model, &unseen, &strategy, None);

    assert!(
        after.psnr > before.psnr,
        "no cross-scene transfer: {} -> {}",
        before.psnr,
        after.psnr
    );
}

#[test]
fn algorithm_to_hardware_mapping_roundtrip() {
    // The same model + strategy drives both the renderer (algorithm
    // FLOPs) and the simulator (hardware cycles); the two cost views
    // must agree on the workload structure.
    let model_cfg = ModelConfig::fast();
    let strategy = SamplingStrategy::coarse_then_focus(8, 16);
    let spec = workload_spec(&model_cfg, &strategy, 64, 64, 4);
    assert_eq!(spec.n_coarse, 8);
    assert_eq!(spec.n_focused, 16);

    let sim = Simulator::new(AcceleratorConfig::paper());
    let report = sim.simulate(&spec);
    assert!(report.fps > 0.0);
    assert!(report.coarse.total_cycles > 0, "coarse stage not simulated");

    // The accelerator must beat both GPU models on its own workload.
    let rtx = GpuModel::rtx_2080ti().fps(&spec);
    let tx2 = GpuModel::jetson_tx2().fps(&spec);
    assert!(report.fps > rtx, "ASIC {} vs RTX {rtx}", report.fps);
    assert!(rtx > tx2, "RTX {rtx} vs TX2 {tx2}");
}

#[test]
fn ray_module_ablation_order_on_unseen_scene() {
    // Tab. 2's qualitative ordering: a cross-point ray module (mixer or
    // transformer) must not lose to the per-point head after identical
    // training, evaluated on an unseen scene.
    let train_ds = tiny(DatasetKind::NerfSynthetic, "lego");
    let unseen = tiny(DatasetKind::DeepVoxels, "vase");
    let strategy = SamplingStrategy::Uniform { n: 16 };

    let psnr_for = |choice: RayModuleChoice| {
        let mut model = GenNerfModel::new(ModelConfig::fast().with_ray_module(choice));
        quick_train(&mut model, &train_ds);
        evaluate(&model, &unseen, &strategy, None).psnr
    };
    let mixer = psnr_for(RayModuleChoice::Mixer);
    let none = psnr_for(RayModuleChoice::None);
    // Allow a small tolerance: at this scale the gap can be fractions
    // of a dB, but the mixer must not be clearly worse.
    assert!(
        mixer > none - 0.5,
        "mixer {mixer} dB vs no-ray-module {none} dB"
    );
}

#[test]
fn finetuning_improves_or_holds_psnr() {
    let train_ds = tiny(DatasetKind::NerfSynthetic, "lego");
    let target = tiny(DatasetKind::Llff, "fern");
    let strategy = SamplingStrategy::Uniform { n: 12 };

    let mut model = GenNerfModel::new(ModelConfig::fast());
    quick_train(&mut model, &train_ds);
    let before = evaluate(&model, &target, &strategy, None);

    let mut trainer = Trainer::new(TrainConfig {
        finetune_steps: 150,
        ..TrainConfig::fast()
    });
    trainer.finetune(&mut model, &target);
    let after = evaluate(&model, &target, &strategy, None);
    assert!(
        after.psnr > before.psnr - 0.3,
        "finetuning regressed: {} -> {}",
        before.psnr,
        after.psnr
    );
}
