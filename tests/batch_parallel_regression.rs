//! Regression suite for the parallel ray-batch engine: the batched,
//! multi-threaded render path must match the sequential path
//! **bit-for-bit** — identical pixels, identical PSNR, identical FLOPs
//! and fetch counts — on a trained model, for every sampling strategy.
//!
//! This is the contract that makes the engine safe to use everywhere:
//! `GEN_NERF_THREADS` is a pure performance knob, never a results
//! knob.

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::features::prepare_sources;
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::{RenderStats, Renderer};
use gen_nerf::trainer::{TrainConfig, Trainer};
use gen_nerf_scene::metrics::psnr;
use gen_nerf_scene::{Dataset, DatasetKind, Image};

fn trained_scene() -> (Dataset, GenNerfModel) {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 6, 1, 24, 11);
    let mut model = GenNerfModel::new(ModelConfig::fast());
    let mut trainer = Trainer::new(TrainConfig {
        steps: 120,
        ..TrainConfig::fast()
    });
    trainer.pretrain(&mut model, &[&ds]);
    (ds, model)
}

fn render_with_threads(
    ds: &Dataset,
    model: &GenNerfModel,
    strategy: SamplingStrategy,
    threads: usize,
) -> (Image, RenderStats) {
    let sources = prepare_sources(&ds.source_views);
    let renderer = Renderer::new(
        model,
        &sources,
        strategy,
        ds.scene.bounds,
        ds.scene.background,
    )
    .with_threads(threads);
    renderer.render(&ds.eval_views[0].camera)
}

fn assert_bit_identical(strategy: SamplingStrategy) {
    let (ds, model) = trained_scene();
    let (img_seq, stats_seq) = render_with_threads(&ds, &model, strategy, 1);
    for threads in [2usize, 4, 8] {
        let (img_par, stats_par) = render_with_threads(&ds, &model, strategy, threads);

        // Pixels: exact f32 bit equality, not tolerance equality.
        let seq_bits: Vec<u32> = img_seq.as_slice().iter().map(|v| v.to_bits()).collect();
        let par_bits: Vec<u32> = img_par.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(seq_bits, par_bits, "{strategy:?} with {threads} threads");

        // PSNR follows from pixels, but assert it explicitly since it
        // is the headline quality metric.
        let gt = &ds.eval_views[0].image;
        assert_eq!(
            psnr(gt, &img_seq).to_bits(),
            psnr(gt, &img_par).to_bits(),
            "{strategy:?} PSNR drifted at {threads} threads"
        );

        // Instrumentation: exact integer equality, bucket by bucket.
        assert_eq!(stats_seq.rays, stats_par.rays);
        assert_eq!(stats_seq.points, stats_par.points, "{strategy:?}");
        assert_eq!(
            stats_seq.coarse_points, stats_par.coarse_points,
            "{strategy:?}"
        );
        assert_eq!(
            stats_seq.feature_fetches, stats_par.feature_fetches,
            "{strategy:?}"
        );
        assert_eq!(
            stats_seq.flops.total(),
            stats_par.flops.total(),
            "{strategy:?}"
        );
        for bucket in ["acquire", "mlp", "ray_module", "others"] {
            assert_eq!(
                stats_seq.flops.get(bucket),
                stats_par.flops.get(bucket),
                "{strategy:?} bucket {bucket} at {threads} threads"
            );
        }
    }
}

#[test]
fn uniform_parallel_matches_sequential() {
    assert_bit_identical(SamplingStrategy::Uniform { n: 10 });
}

#[test]
fn hierarchical_parallel_matches_sequential() {
    assert_bit_identical(SamplingStrategy::Hierarchical {
        n_coarse: 6,
        n_fine: 6,
    });
}

#[test]
fn coarse_then_focus_parallel_matches_sequential() {
    assert_bit_identical(SamplingStrategy::coarse_then_focus(8, 8));
}

#[test]
fn render_is_reproducible_across_calls() {
    // Same renderer, same camera, rendered twice: identical output
    // (per-ray RNG streams are derived, not consumed from shared
    // state).
    let (ds, model) = trained_scene();
    let strategy = SamplingStrategy::coarse_then_focus(8, 8);
    let (a, _) = render_with_threads(&ds, &model, strategy, 4);
    let (b, _) = render_with_threads(&ds, &model, strategy, 4);
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn simulator_reports_are_reproducible() {
    // The patch-parallel simulator must give the same report on every
    // run (its per-patch DRAM simulations are independent by
    // construction).
    use gen_nerf_accel::config::AcceleratorConfig;
    use gen_nerf_accel::simulator::Simulator;
    use gen_nerf_accel::workload::WorkloadSpec;
    let sim = Simulator::new(AcceleratorConfig::paper());
    let spec = WorkloadSpec::gen_nerf_default(64, 64, 4, 32);
    let a = sim.simulate(&spec);
    let b = sim.simulate(&spec);
    assert_eq!(a, b);
}

#[test]
fn shared_inference_types_are_sync() {
    // The engine shares these across worker threads by reference; a
    // regression that introduces interior mutability (Cell, RefCell,
    // Rc) must fail to compile here.
    fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<GenNerfModel>();
    assert_sync_send::<gen_nerf::features::SourceViewData>();
    assert_sync_send::<gen_nerf_scene::Scene>();
    assert_sync_send::<gen_nerf_scene::Dataset>();
    assert_sync_send::<gen_nerf_accel::simulator::Simulator>();
}
