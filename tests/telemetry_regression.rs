//! Telemetry regression: the observability layer's exactness
//! contracts.
//!
//! * **Trace completeness under chaos.** A mixed fault schedule
//!   (transient panics, persistent panics, long stalls, overload
//!   sheds) is pushed through a supervised server; afterwards every
//!   submitted frame's trace carries exactly one Submit and exactly
//!   one terminal event (a Resolve, or a shed/break admission
//!   verdict), no frame is orphaned, and the ring dropped nothing.
//! * **Counter reconciliation.** The registry counters — folded from
//!   [`RenderServer::telemetry_snapshot`] by instance label — must
//!   equal the ground truth the test harness observed through the
//!   frame handles themselves: rendered, failed, timed-out, shed and
//!   degraded counts, plus retries against the Retry trace events.
//! * **Histogram exactness.** The latency histogram is fed the same
//!   submit→resolve nanosecond values the Resolve trace events carry,
//!   so every percentile must equal the bucket upper bound of the
//!   exact rank-selected latency — accurate to one log₂ bucket by
//!   construction, and pinned here.
//! * **Restart-boundary reconciliation.** A seeded shard kill tears
//!   one incarnation down mid-schedule; the trace ring must stitch
//!   the boundary seamlessly — exactly one Submit and one terminal
//!   event per frame, Requeue events matching the requeue counter,
//!   Condemn/Restart lifecycle events present, zero ring drops.

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::model::GenNerfModel;
use gen_nerf_geometry::{Intrinsics, Pose, Vec3};
use gen_nerf_scene::{Dataset, DatasetKind};
use gen_nerf_serve::{
    AdmissionConfig, DeadlineClass, Fault, FrameRequest, HealthConfig, RenderServer, SceneState,
    ServeError, ServerConfig, SessionConfig, SupervisorConfig,
};
use gen_nerf_telemetry::{
    bucket_index, bucket_upper_bound, AdmissionVerdict, EventKind, ResolveOutcome, TraceEvent,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scene() -> Arc<SceneState> {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 4, 1, 24, 5);
    let model = GenNerfModel::new(ModelConfig::fast());
    Arc::new(SceneState::prepare(
        model,
        &ds.source_views,
        ds.scene.bounds,
        ds.scene.background,
    ))
}

fn intrinsics() -> Intrinsics {
    Intrinsics::from_fov(24, 24, 0.6)
}

fn walk_pose(s: usize, k: usize) -> Pose {
    let phi = 0.3 * s as f32 + 0.015 * k as f32;
    let eye = Vec3::new(3.5 * phi.cos(), 1.1, 3.5 * phi.sin());
    Pose::look_at(eye, Vec3::ZERO, Vec3::Y)
}

/// Ground truth tallied from the frame handles themselves.
#[derive(Default, Debug, PartialEq, Eq)]
struct GroundTruth {
    rendered: u64,
    degraded: u64,
    failed: u64,
    timed_out: u64,
    shed: u64,
    circuit: u64,
}

/// Per-frame trace view, grouped from the drained ring events.
#[derive(Default)]
struct FrameTrace {
    submits: u64,
    resolves: Vec<ResolveOutcome>,
    terminal_admits: u64,
    degrade_admits: u64,
    retries: u64,
    requeues: u64,
    first_kind: Option<EventKind>,
}

fn group_traces(events: &[TraceEvent]) -> BTreeMap<u64, FrameTrace> {
    let mut by_frame: BTreeMap<u64, FrameTrace> = BTreeMap::new();
    for e in events {
        // Shard-lifecycle events (Condemn/Restart/Drain) carry no
        // frame id — their `frame` field is 0 and the shard index is
        // in the payload. Grouping them would fabricate a phantom
        // frame 0 with no Submit.
        if matches!(
            e.kind,
            EventKind::Condemn | EventKind::Restart | EventKind::Drain
        ) {
            continue;
        }
        let t = by_frame.entry(e.frame).or_default();
        if t.first_kind.is_none() {
            t.first_kind = Some(e.kind);
        }
        match e.kind {
            EventKind::Submit => t.submits += 1,
            EventKind::Admit => {
                let verdict = AdmissionVerdict::from_code(e.a).expect("bad admit code");
                if verdict.is_terminal() {
                    t.terminal_admits += 1;
                }
                if verdict == AdmissionVerdict::Degrade {
                    t.degrade_admits += 1;
                }
            }
            EventKind::Retry => t.retries += 1,
            EventKind::Requeue => t.requeues += 1,
            EventKind::Resolve => t
                .resolves
                .push(ResolveOutcome::from_code(e.a).expect("bad resolve code")),
            _ => {}
        }
    }
    by_frame
}

/// Spin until the server's counters reach the steady state where every
/// submitted frame is accounted for exactly once. Counters and trace
/// events are written just *after* the fulfil that wakes the waiting
/// handle (and losing fulfil racers roll their speculative increments
/// back asynchronously), so the state must also hold for several
/// consecutive polls before it counts as settled.
fn await_quiescence(server: &RenderServer, inst: &str, submitted: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut stable = 0;
    loop {
        let snap = server.telemetry_snapshot();
        let sub: &[(&str, &str)] = &[("instance", inst)];
        let settled = snap.counter_with("serve_frames_rendered_total", sub)
            + snap.counter_with("serve_frames_failed_total", sub)
            + snap.counter_with("serve_frames_timed_out_total", sub)
            + snap.counter_with("serve_frames_shed_total", sub);
        if settled == submitted && server.supervisor_stats().in_flight == 0 {
            stable += 1;
            if stable >= 5 {
                return;
            }
        } else {
            stable = 0;
        }
        assert!(
            Instant::now() < deadline,
            "counters never quiesced: {settled}/{submitted} frames accounted for"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn chaos_schedule_traces_are_complete_and_reconcile_with_ground_truth() {
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    let budget = Duration::from_millis(1200);
    // One shard, tight queue: overload sheds and degrades occur
    // naturally alongside the injected faults.
    let server = RenderServer::new(
        ServerConfig::default()
            .with_max_shards(1)
            .with_admission(AdmissionConfig::with_capacity(2))
            .with_supervision(
                SupervisorConfig::default()
                    .with_interactive_budget(budget)
                    .with_best_effort_budget(budget),
            ),
    );
    let sessions = [
        server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(intrinsics(), strategy),
        ),
        server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(intrinsics(), strategy),
        ),
    ];

    // A fixed schedule cycling through every fault kind, submitted
    // without waiting so queue pressure is real.
    let mut handles = Vec::new();
    for k in 0..24 {
        let fault = match k % 8 {
            1 => Some(Fault::PanicOnce),
            3 => Some(Fault::Stall(Duration::from_secs(30))),
            5 => Some(Fault::Panic),
            6 => Some(Fault::Stall(Duration::from_millis(25))),
            _ => None,
        };
        let class = if k % 3 == 0 {
            DeadlineClass::BestEffort
        } else {
            DeadlineClass::Interactive
        };
        let mut req = FrameRequest::new(walk_pose(k % 2, k)).with_deadline(class);
        if let Some(f) = fault {
            req = req.with_fault(f);
        }
        handles.push(server.submit(sessions[k % 2], req));
    }
    let submitted = handles.len() as u64;

    // Tally ground truth from the handles — the client-visible record
    // of what actually happened to each frame.
    let mut truth = GroundTruth::default();
    for (k, handle) in handles.into_iter().enumerate() {
        match handle
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|| panic!("frame {k} never resolved"))
        {
            Ok(frame) => {
                truth.rendered += 1;
                if frame.serve.degraded {
                    truth.degraded += 1;
                }
            }
            Err(ServeError::Failed(_)) => truth.failed += 1,
            Err(ServeError::TimedOut { .. }) => truth.timed_out += 1,
            Err(ServeError::Shed { .. }) => truth.shed += 1,
            Err(ServeError::CircuitOpen) => truth.circuit += 1,
            // No shard-level faults and no drain in this schedule.
            Err(e @ (ServeError::Draining | ServeError::ShardDown)) => {
                panic!("frame {k}: unexpected lifecycle error {e}")
            }
        }
    }
    let inst = server.instance().to_string();
    await_quiescence(&server, &inst, submitted);

    // --- Trace completeness -------------------------------------------------
    assert_eq!(server.trace_drops(), 0, "trace ring dropped events");
    let events = server.drain_traces();
    let by_frame = group_traces(&events);
    assert_eq!(
        by_frame.len() as u64,
        submitted,
        "trace frame count != submissions"
    );
    for (frame, t) in &by_frame {
        assert_eq!(t.submits, 1, "frame {frame}: expected exactly one Submit");
        assert_eq!(
            t.first_kind,
            Some(EventKind::Submit),
            "frame {frame}: trace does not start with Submit"
        );
        let terminals = t.resolves.len() as u64 + t.terminal_admits;
        assert_eq!(
            terminals, 1,
            "frame {frame}: expected exactly one terminal event, got {} resolves + {} terminal admits",
            t.resolves.len(),
            t.terminal_admits
        );
    }

    // Trace-level outcome counts equal ground truth.
    let count_resolve = |o: ResolveOutcome| -> u64 {
        by_frame
            .values()
            .filter(|t| t.resolves.first() == Some(&o))
            .count() as u64
    };
    assert_eq!(count_resolve(ResolveOutcome::Ok), truth.rendered);
    assert_eq!(count_resolve(ResolveOutcome::TimedOut), truth.timed_out);
    assert_eq!(count_resolve(ResolveOutcome::Failed), truth.failed);
    let terminal_admits: u64 = by_frame.values().map(|t| t.terminal_admits).sum();
    assert_eq!(terminal_admits, truth.shed + truth.circuit);

    // --- Counter reconciliation --------------------------------------------
    let snap = server.telemetry_snapshot();
    let sub: &[(&str, &str)] = &[("instance", &inst)];
    assert_eq!(
        snap.counter_with("serve_frames_rendered_total", sub),
        truth.rendered
    );
    assert_eq!(
        snap.counter_with("serve_frames_failed_total", sub),
        truth.failed
    );
    assert_eq!(
        snap.counter_with("serve_frames_timed_out_total", sub),
        truth.timed_out
    );
    assert_eq!(
        snap.counter_with("serve_frames_shed_total", sub),
        truth.shed + truth.circuit
    );
    // Degrades are counted at the admission decision; a degraded frame
    // can still time out or fail later, so the counter must equal the
    // Admit(Degrade) trace events and bound the delivered-degraded
    // count from below.
    let degrade_admits: u64 = by_frame.values().map(|t| t.degrade_admits).sum();
    assert_eq!(
        snap.counter_with("serve_frames_degraded_total", sub),
        degrade_admits
    );
    assert!(truth.degraded <= degrade_admits);
    // The admission-stats view is itself a snapshot fold — it must
    // agree with the same truth.
    let adm = server.admission_stats();
    assert_eq!(adm.shed_total(), truth.shed + truth.circuit);
    assert_eq!(adm.degraded, degrade_admits);
    // Retries: the counter and the Retry trace events count the same
    // thing.
    let trace_retries: u64 = by_frame.values().map(|t| t.retries).sum();
    assert_eq!(snap.counter_with("serve_retries_total", sub), trace_retries);
    // Delivered-latency histogram: one observation per rendered frame.
    assert_eq!(
        snap.histogram_merged("serve_latency_ns", sub).count,
        truth.rendered
    );
    // Queue depth and in-flight gauges are back to zero at rest.
    assert_eq!(snap.gauge_with("serve_queue_depth", sub), 0);
    assert_eq!(snap.gauge_with("serve_frames_in_flight", sub), 0);
}

#[test]
fn latency_percentiles_are_exact_to_one_bucket_of_the_trace_latencies() {
    let scene = scene();
    let server = RenderServer::new(ServerConfig::default().with_max_shards(1));
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), SamplingStrategy::Uniform { n: 6 }),
    );
    let n = 40;
    for k in 0..n {
        server
            .submit(session, FrameRequest::new(walk_pose(0, k)))
            .wait();
    }
    assert_eq!(server.trace_drops(), 0);

    // The histogram observation and Resolve event land just after the
    // fulfil that wakes `wait()` — give the last frame's bookkeeping a
    // beat to settle.
    let inst = server.instance().to_string();
    let deadline = Instant::now() + Duration::from_secs(10);
    while (server
        .telemetry_snapshot()
        .histogram_merged("serve_latency_ns", &[("instance", &inst)])
        .count as usize)
        < n
    {
        assert!(
            Instant::now() < deadline,
            "latency histogram never reached {n} observations"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // The Resolve events carry the exact submit→resolve nanosecond
    // latencies — the *same* values the histogram observed.
    let mut exact: Vec<u64> = server
        .drain_traces()
        .into_iter()
        .filter(|e| e.kind == EventKind::Resolve && e.a == ResolveOutcome::Ok as u64)
        .map(|e| e.b)
        .collect();
    assert_eq!(exact.len(), n);
    exact.sort_unstable();

    let hist = server
        .telemetry_snapshot()
        .histogram_merged("serve_latency_ns", &[("instance", &inst)]);
    assert_eq!(hist.count, n as u64);
    for q in [0.5, 0.9, 0.99, 0.999] {
        // Same rank selection the histogram uses: the percentile must
        // be the bucket upper bound of the exact rank-th latency.
        let rank = ((hist.count as f64 * q).ceil() as u64).clamp(1, hist.count);
        let exact_q = exact[(rank - 1) as usize];
        let approx = hist.percentile(q);
        assert_eq!(
            approx,
            bucket_upper_bound(bucket_index(exact_q)),
            "q={q}: exact latency {exact_q}ns not within one bucket of {approx}ns"
        );
        assert!(approx >= exact_q, "q={q}: percentile under-reports");
        assert!(
            exact_q == 0 || approx < exact_q.saturating_mul(2),
            "q={q}: percentile {approx} more than one bucket above exact {exact_q}"
        );
    }
}

#[test]
fn traces_reconcile_across_a_shard_restart_boundary() {
    // A seeded shard kill mid-schedule tears one incarnation down and
    // respawns another. The trace ring must stitch the boundary
    // seamlessly: every frame still carries exactly one Submit and
    // exactly one terminal event, requeued frames are marked with
    // Requeue events that agree with the counter, the lifecycle
    // events are present, and the ring dropped nothing.
    let scene = scene();
    let strategy = SamplingStrategy::coarse_then_focus(6, 6);
    // A fast sweep and a short restart backoff keep the test quick.
    // The heartbeat budget stays at its default: a kill is detected
    // as Dead (finished worker thread), not by heartbeat age, and a
    // tight budget would let a legitimately slow batch render on a
    // loaded test host be misread as Wedged.
    let server = RenderServer::new(
        ServerConfig::default().with_max_shards(1).with_health(
            HealthConfig::default()
                .with_sweep_interval(Duration::from_millis(10))
                .with_restart_backoff(Duration::from_millis(10), Duration::from_millis(100)),
        ),
    );
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intrinsics(), strategy),
    );
    let mut handles = Vec::new();
    for k in 0..12 {
        let mut req = FrameRequest::new(walk_pose(0, k));
        if k == 3 {
            req = req.with_fault(Fault::KillShard);
        }
        handles.push(server.submit(session, req));
    }
    let submitted = handles.len() as u64;
    for (k, handle) in handles.into_iter().enumerate() {
        handle
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|| panic!("frame {k} never resolved across the restart"))
            .unwrap_or_else(|e| panic!("frame {k} failed across the restart: {e}"));
    }
    let inst = server.instance().to_string();
    await_quiescence(&server, &inst, submitted);

    assert_eq!(
        server.trace_drops(),
        0,
        "trace ring dropped events across the restart"
    );
    let events = server.drain_traces();
    let condemns = events
        .iter()
        .filter(|e| e.kind == EventKind::Condemn)
        .count();
    let restarts = events
        .iter()
        .filter(|e| e.kind == EventKind::Restart)
        .count();
    assert!(condemns >= 1, "no Condemn event for the killed shard");
    assert!(restarts >= 1, "no Restart event for the respawned shard");

    let by_frame = group_traces(&events);
    assert_eq!(
        by_frame.len() as u64,
        submitted,
        "trace frame count != submissions (phantom or orphaned frames at the boundary)"
    );
    let mut requeued_frames = 0u64;
    for (frame, t) in &by_frame {
        assert_eq!(t.submits, 1, "frame {frame}: expected exactly one Submit");
        assert_eq!(
            t.first_kind,
            Some(EventKind::Submit),
            "frame {frame}: trace does not start with Submit"
        );
        let terminals = t.resolves.len() as u64 + t.terminal_admits;
        assert_eq!(
            terminals,
            1,
            "frame {frame}: expected exactly one terminal event across the incarnation \
             boundary, got {} resolves + {} terminal admits",
            t.resolves.len(),
            t.terminal_admits
        );
        assert_eq!(
            t.resolves.first(),
            Some(&ResolveOutcome::Ok),
            "frame {frame}: not rendered"
        );
        if t.requeues > 0 {
            requeued_frames += 1;
        }
    }
    assert!(
        requeued_frames >= 1,
        "kill produced no Requeue trace events"
    );

    let snap = server.telemetry_snapshot();
    let sub: &[(&str, &str)] = &[("instance", &inst)];
    let trace_requeues: u64 = by_frame.values().map(|t| t.requeues).sum();
    assert_eq!(
        snap.counter_with("serve_requeued_frames_total", sub),
        trace_requeues,
        "Requeue trace events disagree with the requeue counter"
    );
    assert!(snap.counter_with("serve_shard_condemned_total", sub) >= 1);
    assert!(snap.counter_with("serve_shard_restarts_total", sub) >= 1);
    // Every frame rendered exactly once — nothing lost, nothing
    // double-counted across the incarnation boundary.
    assert_eq!(
        snap.counter_with("serve_frames_rendered_total", sub),
        submitted
    );
    assert_eq!(
        snap.histogram_merged("serve_latency_ns", sub).count,
        submitted
    );
}
