//! Property tests of the shard scheduling policy ([`FairQueue`]):
//! over arbitrary arrival sequences, frames dequeue in
//! [`DeadlineClass`] priority order, FIFO within every
//! (class, tenant) lane, and round-robin-fair across tenants — one
//! hot session never starves its shard-mates.
//!
//! The queue is modeled against a reference: per-lane FIFOs plus
//! per-class counts. Priority and FIFO are checked on every pop;
//! fairness is checked over the final drain (no concurrent pushes),
//! where round-robin implies any two tenants' served counts differ by
//! at most one for as long as both still have frames pending.

use gen_nerf_serve::{DeadlineClass, FairQueue};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

const N_TENANTS: u64 = 4;

fn class_of(code: u8) -> DeadlineClass {
    if code == 0 {
        DeadlineClass::Interactive
    } else {
        DeadlineClass::BestEffort
    }
}

/// Reference model: per-(class, tenant) FIFO of sequence numbers.
#[derive(Default)]
struct Model {
    lanes: HashMap<(u8, u64), VecDeque<u64>>,
    per_class: [usize; 2],
}

impl Model {
    fn push(&mut self, class: u8, tenant: u64, seq: u64) {
        self.lanes
            .entry((class, tenant))
            .or_default()
            .push_back(seq);
        self.per_class[class as usize] += 1;
    }

    fn top_class(&self) -> Option<u8> {
        self.per_class.iter().position(|&n| n > 0).map(|c| c as u8)
    }

    fn pop(&mut self, class: u8, tenant: u64) -> Option<u64> {
        let seq = self.lanes.get_mut(&(class, tenant))?.pop_front()?;
        self.per_class[class as usize] -= 1;
        Some(seq)
    }
}

/// Checks one pop against the model: class priority and lane FIFO.
fn check_pop(
    model: &mut Model,
    popped: Option<&(u8, u64, u64)>,
) -> Result<(), proptest::test_runner::TestCaseError> {
    match popped {
        None => {
            prop_assert_eq!(model.top_class(), None, "queue empty while model is not");
        }
        Some(&(class, tenant, seq)) => {
            prop_assert_eq!(
                Some(class),
                model.top_class(),
                "popped class {} while a higher-priority class was pending",
                class
            );
            let expected = model.pop(class, tenant);
            prop_assert_eq!(
                expected,
                Some(seq),
                "tenant {} lane reordered (class {})",
                tenant,
                class
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of pushes and pops, then a full drain:
    /// every dequeue honors class priority and per-lane FIFO, and the
    /// drain serves tenants round-robin (counts within one of each
    /// other while both have frames pending).
    #[test]
    fn prop_fair_queue_policy(
        ops in proptest::collection::vec(
            (0u64..N_TENANTS, 0u8..2, 0u8..4),
            1..120,
        ),
    ) {
        let mut q: FairQueue<(u8, u64, u64)> = FairQueue::new();
        let mut model = Model::default();
        let mut seq = 0u64;
        for &(tenant, class, action) in &ops {
            if action < 3 {
                // Three in four ops push (keeps the drain non-trivial).
                seq += 1;
                q.push(class_of(class), tenant, (class, tenant, seq));
                model.push(class, tenant, seq);
            } else {
                let popped = q.pop();
                check_pop(&mut model, popped.as_ref())?;
            }
            prop_assert_eq!(q.len(), model.per_class.iter().sum::<usize>());
        }

        // Full drain with no concurrent pushes: record the pop order
        // for the fairness check below.
        let mut pending: HashMap<(u8, u64), usize> = model
            .lanes
            .iter()
            .filter(|(_, lane)| !lane.is_empty())
            .map(|(&key, lane)| (key, lane.len()))
            .collect();
        let mut served: HashMap<(u8, u64), usize> = HashMap::new();
        while let Some(popped) = q.pop() {
            let (class, tenant, _) = popped;
            check_pop(&mut model, Some(&popped))?;
            *served.entry((class, tenant)).or_default() += 1;
            *pending.get_mut(&(class, tenant)).expect("lane known") -= 1;
            // Round-robin balance: while two tenants of the same class
            // both still have pending frames, their drain-served
            // counts never diverge by more than one.
            for (&(ca, ta), &left_a) in &pending {
                for (&(cb, tb), &left_b) in &pending {
                    if ca == cb && ta < tb && left_a > 0 && left_b > 0 {
                        let sa = *served.get(&(ca, ta)).unwrap_or(&0) as i64;
                        let sb = *served.get(&(cb, tb)).unwrap_or(&0) as i64;
                        prop_assert!(
                            (sa - sb).abs() <= 1,
                            "class {} tenants {} and {} diverged: served {} vs {}",
                            ca, ta, tb, sa, sb
                        );
                    }
                }
            }
        }
        prop_assert!(q.is_empty());
        prop_assert_eq!(model.top_class(), None, "drain left the model non-empty");
    }

    /// `pop_next` with an eligibility filter: ineligible lane heads
    /// park their whole tenant (no intra-lane reordering), eligible
    /// tenants still drain in policy order.
    #[test]
    fn prop_filter_never_reorders_a_lane(
        pushes in proptest::collection::vec((0u64..N_TENANTS, 0u8..2), 1..60),
        blocked in 0u64..N_TENANTS,
    ) {
        let mut q: FairQueue<(u8, u64, u64)> = FairQueue::new();
        let mut model = Model::default();
        for (i, &(tenant, class)) in pushes.iter().enumerate() {
            let seq = i as u64;
            q.push(class_of(class), tenant, (class, tenant, seq));
            model.push(class, tenant, seq);
        }
        // Drain everything the filter admits.
        while let Some((class, tenant, seq)) = q.pop_next(|&(_, t, _)| t != blocked) {
            prop_assert!(tenant != blocked, "blocked tenant was served");
            prop_assert_eq!(
                model.pop(class, tenant),
                Some(seq),
                "lane reordered under filtering"
            );
        }
        // Exactly the blocked tenant's frames remain, in FIFO order.
        let left: usize = model
            .lanes
            .iter()
            .filter(|(&(_, t), _)| t == blocked)
            .map(|(_, lane)| lane.len())
            .sum();
        prop_assert_eq!(q.len(), left);
        while let Some((class, tenant, seq)) = q.pop() {
            prop_assert_eq!(tenant, blocked);
            prop_assert_eq!(model.pop(class, tenant), Some(seq));
        }
    }

    /// A shard restart snapshots its queue with `drain` and re-pushes
    /// the triples in order onto the respawned incarnation's queue.
    /// This must be scheduling-invisible: pop-for-pop, the rebuilt
    /// queue (same object or a fresh one) serves the exact sequence
    /// the undisturbed queue would have — lanes intact, class priority
    /// intact, round-robin cursor intact.
    #[test]
    fn prop_drain_and_rebuild_is_scheduling_invisible(
        pushes in proptest::collection::vec((0u64..N_TENANTS, 0u8..2), 1..80),
        pre_pops in 0usize..80,
    ) {
        let mut undisturbed: FairQueue<(u8, u64, u64)> = FairQueue::new();
        let mut restarted: FairQueue<(u8, u64, u64)> = FairQueue::new();
        for (i, &(tenant, class)) in pushes.iter().enumerate() {
            let item = (class, tenant, i as u64);
            undisturbed.push(class_of(class), tenant, item);
            restarted.push(class_of(class), tenant, item);
        }
        // Serve a prefix on both, leaving the round-robin cursors
        // mid-ring (the interesting restart point).
        for _ in 0..pre_pops.min(pushes.len()) {
            prop_assert_eq!(undisturbed.pop(), restarted.pop());
        }
        // Restart: snapshot, then rebuild both documented ways.
        let snapshot = restarted.drain();
        prop_assert!(restarted.is_empty());
        let mut fresh: FairQueue<(u8, u64, u64)> = FairQueue::new();
        for &(class, tenant, item) in &snapshot {
            restarted.push(class, tenant, item);
            fresh.push(class, tenant, item);
        }
        loop {
            let expected = undisturbed.pop();
            prop_assert_eq!(restarted.pop(), expected, "rebuilt-in-place queue diverged");
            prop_assert_eq!(fresh.pop(), expected, "rebuilt-fresh queue diverged");
            if expected.is_none() {
                break;
            }
        }
    }

    /// A condemned shard's in-flight head is `push_front`ed back
    /// before the queue snapshot. Interleaving such requeues into an
    /// arbitrary drain must never reorder a lane: every served frame
    /// is still its (class, tenant) lane's FIFO head, and nothing is
    /// lost or duplicated.
    #[test]
    fn prop_requeue_head_preserves_lane_fifo(
        pushes in proptest::collection::vec((0u64..N_TENANTS, 0u8..2), 1..60),
        requeue_every in 1usize..4,
    ) {
        let mut q: FairQueue<(u8, u64, u64)> = FairQueue::new();
        let mut model = Model::default();
        for (i, &(tenant, class)) in pushes.iter().enumerate() {
            q.push(class_of(class), tenant, (class, tenant, i as u64));
            model.push(class, tenant, i as u64);
        }
        // Drain, periodically simulating a condemn mid-frame: the
        // popped head goes back unexecuted via push_front (the model
        // never saw it leave). Budgeted so the drain terminates.
        let mut requeues_left = 5usize;
        let mut since_requeue = 0usize;
        while let Some(popped) = q.pop() {
            since_requeue += 1;
            if requeues_left > 0 && since_requeue >= requeue_every {
                since_requeue = 0;
                requeues_left -= 1;
                q.push_front(class_of(popped.0), popped.1, popped);
                continue;
            }
            check_pop(&mut model, Some(&popped))?;
        }
        prop_assert_eq!(model.top_class(), None, "requeue lost a frame");
    }
}

// ---------------------------------------------------------------------------
// Circuit-breaker state machine, modeled against an independent
// reference transcription of the spec: Closed windows outcomes and
// opens at the failure threshold (once `min_samples` are in), Open
// sheds every submission until the cooldown elapses, HalfOpen admits
// exactly `probe_quota` probes (in-flight + succeeded), closes when
// all succeed and re-opens the moment one fails. Virtual time — a
// `telemetry::Clock` advanced explicitly — makes every run
// deterministic.
// ---------------------------------------------------------------------------

mod breaker {
    use gen_nerf_serve::{BreakerAdmit, BreakerConfig, BreakerState, CircuitBreaker};
    use gen_nerf_telemetry::Clock;
    use proptest::prelude::*;
    use std::collections::VecDeque;
    use std::time::Duration;

    const WINDOW: usize = 8;
    const MIN_SAMPLES: usize = 4;
    const THRESHOLD: f64 = 0.5;
    const COOLDOWN_MS: u64 = 500;
    const PROBE_QUOTA: u32 = 2;

    fn config() -> BreakerConfig {
        BreakerConfig::default()
            .with_window(WINDOW, MIN_SAMPLES)
            .with_failure_threshold(THRESHOLD)
            .with_cooldown(Duration::from_millis(COOLDOWN_MS))
            .with_probe_quota(PROBE_QUOTA)
    }

    /// Reference model, written against the spec (not the
    /// implementation).
    enum ModelState {
        Closed { outcomes: VecDeque<bool> },
        Open { since_ms: u64 },
        HalfOpen { in_flight: u32, successes: u32 },
    }

    struct Model {
        state: ModelState,
        trips: u64,
    }

    impl Model {
        fn new() -> Self {
            Model {
                state: ModelState::Closed {
                    outcomes: VecDeque::new(),
                },
                trips: 0,
            }
        }

        fn state(&self) -> BreakerState {
            match self.state {
                ModelState::Closed { .. } => BreakerState::Closed,
                ModelState::Open { .. } => BreakerState::Open,
                ModelState::HalfOpen { .. } => BreakerState::HalfOpen,
            }
        }

        fn admit(&mut self, now_ms: u64) -> BreakerAdmit {
            match &mut self.state {
                ModelState::Closed { .. } => BreakerAdmit::Admit,
                ModelState::Open { since_ms } => {
                    if now_ms - *since_ms < COOLDOWN_MS {
                        BreakerAdmit::Shed
                    } else {
                        self.state = ModelState::HalfOpen {
                            in_flight: 1,
                            successes: 0,
                        };
                        BreakerAdmit::Probe
                    }
                }
                ModelState::HalfOpen {
                    in_flight,
                    successes,
                } => {
                    if *in_flight + *successes < PROBE_QUOTA {
                        *in_flight += 1;
                        BreakerAdmit::Probe
                    } else {
                        BreakerAdmit::Shed
                    }
                }
            }
        }

        fn record(&mut self, ok: bool, probe: bool, now_ms: u64) {
            match &mut self.state {
                ModelState::Closed { outcomes } => {
                    outcomes.push_back(ok);
                    while outcomes.len() > WINDOW {
                        outcomes.pop_front();
                    }
                    let n = outcomes.len();
                    let failures = outcomes.iter().filter(|&&o| !o).count();
                    if n >= MIN_SAMPLES && failures as f64 / n as f64 >= THRESHOLD {
                        self.state = ModelState::Open { since_ms: now_ms };
                        self.trips += 1;
                    }
                }
                ModelState::Open { .. } => {}
                ModelState::HalfOpen {
                    in_flight,
                    successes,
                } => {
                    if !probe {
                        return;
                    }
                    *in_flight = in_flight.saturating_sub(1);
                    if ok {
                        *successes += 1;
                        if *successes >= PROBE_QUOTA {
                            self.state = ModelState::Closed {
                                outcomes: VecDeque::new(),
                            };
                        }
                    } else {
                        self.state = ModelState::Open { since_ms: now_ms };
                        self.trips += 1;
                    }
                }
            }
        }

        fn abort_probe(&mut self) {
            if let ModelState::HalfOpen { in_flight, .. } = &mut self.state {
                *in_flight = in_flight.saturating_sub(1);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary submission/outcome/straggler sequences over
        /// virtual time: after every operation the breaker's state,
        /// admission verdict and trip count match the reference
        /// model — and the per-state laws hold (Open in cooldown
        /// always sheds, HalfOpen never admits past the probe quota,
        /// Closed always admits).
        #[test]
        fn prop_breaker_matches_reference_model(
            ops in proptest::collection::vec(
                (0u64..1200, 0u8..2, 0u8..4),
                1..150,
            ),
        ) {
            let clock = Clock::virtual_clock();
            let breaker = CircuitBreaker::with_clock(config(), clock.clone());
            let mut model = Model::new();
            let mut now_ms = 0u64;
            let mut probes_this_episode = 0u32;
            for &(advance, ok_bit, action) in &ops {
                let ok = ok_bit == 1;
                now_ms += advance;
                clock.advance(Duration::from_millis(advance));
                match action {
                    // A straggler outcome with no matching admission:
                    // windows while Closed, carries no signal
                    // otherwise.
                    3 => {
                        breaker.record_now(ok, false);
                        model.record(ok, false, now_ms);
                    }
                    // A submission; action 2 abandons an admitted
                    // probe (abort path) instead of rendering it.
                    _ => {
                        let was = model.state();
                        if was == BreakerState::HalfOpen {
                            // Track quota within one HalfOpen episode.
                        } else {
                            probes_this_episode = 0;
                        }
                        let verdict = breaker.admit_now();
                        let expected = model.admit(now_ms);
                        prop_assert_eq!(verdict, expected, "admit diverged at t={}ms", now_ms);
                        match was {
                            BreakerState::Closed => {
                                prop_assert_eq!(verdict, BreakerAdmit::Admit);
                            }
                            BreakerState::Open => {
                                // In cooldown: always shed. Past it:
                                // the submission is the first probe.
                                prop_assert!(verdict != BreakerAdmit::Admit);
                                if verdict == BreakerAdmit::Probe {
                                    probes_this_episode = 1;
                                }
                            }
                            BreakerState::HalfOpen => {
                                if verdict == BreakerAdmit::Probe {
                                    probes_this_episode += 1;
                                }
                                prop_assert!(
                                    probes_this_episode <= PROBE_QUOTA,
                                    "HalfOpen admitted past the probe quota"
                                );
                            }
                        }
                        match verdict {
                            BreakerAdmit::Admit => {
                                if action == 2 {
                                    // Dropped frame: no outcome.
                                } else {
                                    breaker.record_now(ok, false);
                                    model.record(ok, false, now_ms);
                                }
                            }
                            BreakerAdmit::Probe => {
                                if action == 2 {
                                    breaker.abort_probe();
                                    model.abort_probe();
                                    probes_this_episode =
                                        probes_this_episode.saturating_sub(1);
                                } else {
                                    breaker.record_now(ok, true);
                                    model.record(ok, true, now_ms);
                                }
                            }
                            BreakerAdmit::Shed => {}
                        }
                    }
                }
                prop_assert_eq!(
                    breaker.state(),
                    model.state(),
                    "state diverged at t={}ms",
                    now_ms
                );
                prop_assert_eq!(
                    breaker.trips(),
                    model.trips,
                    "trip count diverged at t={}ms",
                    now_ms
                );
            }
        }
    }
}
