//! Cross-crate invariants of the co-design, checked property-style:
//! sampling budgets, epipolar consistency between the algorithm's
//! fetches and the hardware's footprints, and monotonicity of the
//! cost models.

use gen_nerf::config::{ModelConfig, RayModuleChoice, SamplingStrategy};
use gen_nerf::hardware::workload_spec;
use gen_nerf::sampling;
use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::gpu::GpuModel;
use gen_nerf_accel::scheduler::{CameraRig, Scheduler};
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_accel::workload::{Stage, WorkloadSpec};
use gen_nerf_geometry::epipolar::EpipolarPair;
use gen_nerf_nn::init::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cross-ray focused allocation always respects its budget (up
    /// to the minimum-one guarantee) and never assigns to empty rays.
    #[test]
    fn prop_focused_allocation_budget(
        criticals in proptest::collection::vec(0usize..20, 10..200),
        budget_per_ray in 1usize..32,
    ) {
        let budget = budget_per_ray * criticals.len();
        let counts = sampling::allocate_focused(&criticals, budget, 64);
        let total: usize = counts.iter().sum();
        let rays_with_cr = criticals.iter().filter(|&&c| c > 0).count();
        prop_assert!(total <= budget + rays_with_cr);
        for (j, &c) in counts.iter().enumerate() {
            if criticals[j] == 0 {
                prop_assert_eq!(c, 0);
            }
            prop_assert!(c <= 64);
        }
    }

    /// Importance samples always fall inside the sampled support.
    #[test]
    fn prop_importance_samples_in_support(
        weights in proptest::collection::vec(0.0f32..5.0, 4..32),
        n in 1usize..64,
        seed in 0u64..500,
    ) {
        let edges = sampling::uniform_edges(1.0, 9.0, weights.len());
        let mut rng = Rng::seed_from(seed);
        let samples = sampling::importance_sample(&edges, &weights, n, &mut rng);
        prop_assert_eq!(samples.len(), n);
        prop_assert!(samples.iter().all(|&t| (1.0..=9.0).contains(&t)));
        prop_assert!(samples.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Workload MACs grow monotonically in every workload dimension.
    #[test]
    fn prop_workload_macs_monotone(
        dim in 32u32..128,
        views in 1usize..10,
        points in 8usize..96,
    ) {
        let base = WorkloadSpec::gen_nerf_default(dim, dim, views, points);
        let more_pixels = WorkloadSpec::gen_nerf_default(dim + 8, dim, views, points);
        let more_points = WorkloadSpec::gen_nerf_default(dim, dim, views, points + 8);
        prop_assert!(more_pixels.total_macs() > base.total_macs());
        prop_assert!(more_points.total_macs() > base.total_macs());
        // Gather traffic also grows with views.
        let more_views = WorkloadSpec::gen_nerf_default(dim, dim, views + 1, points);
        prop_assert!(
            more_views.nominal_gather_bytes(Stage::Focused)
                > base.nominal_gather_bytes(Stage::Focused)
        );
    }

    /// GPU latency is monotone in the workload and the ASIC wins on the
    /// canonical workload family.
    #[test]
    fn prop_gpu_monotone_asic_wins(points in 16usize..96, views in 2usize..8) {
        let spec = WorkloadSpec::gen_nerf_default(64, 64, views, points);
        let bigger = WorkloadSpec::gen_nerf_default(64, 64, views, points + 16);
        let rtx = GpuModel::rtx_2080ti();
        prop_assert!(rtx.latency_s(&bigger) > rtx.latency_s(&spec));
        let sim = Simulator::new(AcceleratorConfig::paper());
        let report = sim.simulate(&spec);
        prop_assert!(report.fps > rtx.fps(&spec));
    }
}

#[test]
fn scheduler_footprints_cover_algorithm_fetch_targets() {
    // Epipolar consistency: points sampled by the algorithm inside a
    // patch's frustum must project inside (a small dilation of) the
    // patch's per-view fetch bounding boxes — i.e., the hardware
    // prefetches what the algorithm will read.
    let (w, h, depth) = (64u32, 64u32, 16u32);
    let rig = CameraRig::orbit(w, h, 4);
    let sched = Scheduler::new(64 * 1024);
    let patches = sched.partition(&rig, w, h, depth, 12);
    let mut checked = 0;
    for patch in patches.iter().take(200) {
        // Center ray / center depth of the patch.
        let u = patch.u0 as f32 + patch.du as f32 / 2.0;
        let v = patch.v0 as f32 + patch.dv as f32 / 2.0;
        let (t_lo, t_hi) = rig.depth_slice(patch.d0, patch.dd, depth);
        let p = rig.novel.pixel_ray(u, v).at((t_lo + t_hi) / 2.0);
        for (view, source) in rig.sources.iter().enumerate() {
            let Some(uv) = source.project(p) else {
                continue;
            };
            if !source.intrinsics.contains(uv) {
                continue;
            }
            let (x0, y0, x1, y1) = patch.bbox_per_view[view];
            if (x1, y1) == (0, 0) {
                continue;
            }
            let margin = 2.0;
            assert!(
                uv.x >= x0 as f32 - margin
                    && uv.x <= x1 as f32 + margin
                    && uv.y >= y0 as f32 - margin
                    && uv.y <= y1 as f32 + margin,
                "projection {uv:?} outside footprint ({x0},{y0})-({x1},{y1})"
            );
            checked += 1;
        }
    }
    assert!(checked > 50, "too few checks executed: {checked}");
}

#[test]
fn epipolar_lines_agree_between_geometry_and_scheduler() {
    // Property-1 holds for the rig the scheduler uses: sampled points
    // along a novel ray project onto the epipolar line.
    let rig = CameraRig::orbit(64, 64, 3);
    for source in &rig.sources {
        let pair = EpipolarPair::new(&rig.novel, source);
        let ray = rig.novel.pixel_ray(32.0, 32.0);
        let Some(line) = pair.epipolar_line_for_pixel(32.0, 32.0) else {
            continue;
        };
        for t in [rig.t_near, (rig.t_near + rig.t_far) / 2.0, rig.t_far] {
            if let Some(uv) = source.project(ray.at(t)) {
                assert!(
                    line.distance_to(uv) < 0.1,
                    "epipolar violation: {}",
                    line.distance_to(uv)
                );
            }
        }
    }
}

#[test]
fn mixer_workload_cheaper_than_transformer_everywhere() {
    // The Ray-Mixer replaces attention to reduce heterogeneity *and*
    // cost; the hardware spec must reflect that at every ray length.
    let mixer_cfg = ModelConfig::fast();
    let attn_cfg = ModelConfig::fast().with_ray_module(RayModuleChoice::Transformer);
    for n in [8usize, 16, 32, 64] {
        assert!(
            mixer_cfg.ray_module_macs(n) <= attn_cfg.ray_module_macs(n),
            "mixer beats transformer at n={n}"
        );
    }
    // And on the GPU, the mixer avoids the attention penalty.
    let strategy = SamplingStrategy::Uniform { n: 64 };
    let mixer_spec = workload_spec(&mixer_cfg, &strategy, 128, 128, 6);
    let attn_spec = workload_spec(&attn_cfg, &strategy, 128, 128, 6);
    let gpu = GpuModel::rtx_2080ti();
    let mixer_bd = gpu.breakdown(&mixer_spec);
    let attn_bd = gpu.breakdown(&attn_spec);
    assert!(mixer_bd.ray_module_s < attn_bd.ray_module_s);
}

#[test]
fn simulated_asic_scales_linearly_in_rays() {
    // FPS extrapolation by pixel count (used by the harness) is valid
    // only if cycles scale ~linearly with rays; verify within 25%.
    let sim = Simulator::new(AcceleratorConfig::paper());
    let small = sim.simulate(&WorkloadSpec::gen_nerf_default(48, 48, 4, 32));
    let large = sim.simulate(&WorkloadSpec::gen_nerf_default(96, 96, 4, 32));
    let ratio = large.total_cycles as f64 / small.total_cycles as f64;
    assert!(
        (3.0..5.0).contains(&ratio),
        "4x rays gave {ratio:.2}x cycles"
    );
}
